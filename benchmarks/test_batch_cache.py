"""Warm-cache batch serving benchmark (the repro.cache/.service payoff).

Serves the same 20-request batch twice through a disk-backed
content-addressed cache: the cold run compiles everything, the warm run
(a fresh service instance over the same cache directory, as a restarted
server would be) must replay stored artifacts at least 3x faster with
byte-identical responses.  The measurement is recorded under
``benchmarks/results/batch_cache.json``.

The floor has been lowered twice -- 60x -> 5x when mapping vectorized
(PR 4), 5x -> 3x when decomposition batched (PR 7) -- because each perf
PR speeds up the *cold* denominator while warm replay stays fixed disk
I/O; the warm run being pure cache replay (zero artifact misses) is the
structural assertion, the ratio just guards against regressions.
"""

from __future__ import annotations

import json
import time

from repro.service.batch import BatchCompiler, CompileRequest


def _request_batch() -> list[CompileRequest]:
    """20 requests: a 4-compiler x 2-benchmark x 2-size grid + repeats.

    The four duplicates model the repeated traffic a service sees; they
    exercise dedupe on the cold run and are free either way.
    """
    requests = [
        CompileRequest(compiler=compiler, benchmark=benchmark,
                       n_qubits=n_qubits, device="montreal",
                       gateset="CNOT", seed=0)
        for compiler in ("2qan", "tket", "qiskit", "nomap")
        for benchmark in ("NNN_Heisenberg", "NNN_Ising")
        for n_qubits in (8, 12)
    ]
    return requests + requests[:4]


def test_warm_batch_at_least_3x_faster(results_dir, tmp_path):
    requests = _request_batch()
    cache_dir = tmp_path / "cache"

    cold_start = time.perf_counter()
    cold_responses, cold = BatchCompiler(cache_dir=cache_dir).run(requests)
    cold_seconds = time.perf_counter() - cold_start

    # a fresh service over the same directory: disk artifacts only
    warm_start = time.perf_counter()
    warm_responses, warm = BatchCompiler(cache_dir=cache_dir).run(requests)
    warm_seconds = time.perf_counter() - warm_start

    speedup = cold_seconds / warm_seconds
    record = {
        "n_requests": len(requests),
        "n_unique": cold.n_unique,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 1),
        "cold_artifact_misses": cold.artifact_misses,
        "warm_artifact_hits": warm.artifact_hits,
        "warm_artifact_misses": warm.artifact_misses,
    }
    path = results_dir / "batch_cache.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n=== batch_cache ===\n{json.dumps(record, indent=2)}")

    # responses are bit-identical, the warm run is pure cache replay
    assert [r.to_dict() for r in warm_responses] == \
        [r.to_dict() for r in cold_responses]
    assert warm.artifact_misses == 0
    assert warm.artifact_hits > 0
    assert speedup >= 3.0, (
        f"warm batch only {speedup:.1f}x faster "
        f"({cold_seconds:.2f}s -> {warm_seconds:.2f}s)"
    )
