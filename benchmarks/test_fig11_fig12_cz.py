"""Figures 11-12 and Tables IV-V: the CZ-gate-set appendix experiments.

Sycamore and Aspen also expose CZ as a native gate; the appendix repeats
the Figure 7/8 sweeps with the CZ basis.  Key claim: 2QAN has near-zero
CZ overhead for Heisenberg (dressed gates cost the same 3 CZs as circuit
gates) and ~8.7% overhead for Ising (a ZZ circuit gate costs 2 CZs but an
undressed SWAP costs 3).
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import SweepConfig, aggregate, format_rows
from repro.analysis.overhead import reduction_table, summarize_reductions
from repro.devices import aspen, sycamore

from benchmarks.conftest import (
    FULL, QAOA_INSTANCES, SIZES, engine_sweep, write_result,
)

COMPILERS = ("2qan", "tket", "qiskit", "nomap")


def _sweep(device_factory, family, sizes, instances=1):
    return engine_sweep(SweepConfig(
        benchmark=family,
        device=device_factory(),
        gateset="CZ",
        sizes=sizes,
        compilers=COMPILERS,
        instances=instances,
        seed=23,
    ))


@pytest.mark.parametrize("family", ["NNN_Heisenberg", "NNN_Ising"])
def test_fig11_sycamore_cz(benchmark, results_dir, family):
    sizes = SIZES["sycamore_ising"][:4] if not FULL else SIZES["sycamore_ising"]
    rows = benchmark.pedantic(_sweep, args=(sycamore, family, sizes),
                              rounds=1, iterations=1)
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_two_qubit_gates", "two_qubit_depth")
    )
    table = summarize_reductions(reduction_table(rows, "qiskit"))
    write_result(results_dir, f"fig11_{family}_cz",
                 text + "\n\nTable IV excerpt (vs qiskit-like):\n" + table)
    for n in sizes:
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "qiskit", n, "n_two_qubit_gates")


def test_fig11_heisenberg_no_cz_overhead(benchmark, results_dir):
    """Dressed SWAPs cost 3 CZs, same as a Heisenberg circuit gate."""
    sizes = (6, 10, 14)
    rows = benchmark.pedantic(
        _sweep, args=(sycamore, "NNN_Heisenberg", sizes),
        rounds=1, iterations=1,
    )
    lines = []
    for n in sizes:
        base = aggregate(rows, "nomap", n, "n_two_qubit_gates")
        ours = aggregate(rows, "2qan", n, "n_two_qubit_gates")
        swaps = aggregate(rows, "2qan", n, "n_swaps")
        dressed = aggregate(rows, "2qan", n, "n_dressed")
        lines.append(f"n={n}: CZ overhead {ours - base:.0f} "
                     f"(swaps {swaps:.0f}, dressed {dressed:.0f})")
        assert ours - base == 3 * (swaps - dressed)
    write_result(results_dir, "fig11_heisenberg_cz_overhead",
                 "\n".join(lines))


@pytest.mark.parametrize("family", ["NNN_Heisenberg", "NNN_Ising"])
def test_fig12_aspen_cz(benchmark, results_dir, family):
    rows = benchmark.pedantic(
        _sweep, args=(aspen, family, SIZES["aspen"]),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_two_qubit_gates", "two_qubit_depth")
    )
    table = summarize_reductions(reduction_table(rows, "tket"))
    write_result(results_dir, f"fig12_{family}_cz",
                 text + "\n\nTable V excerpt (vs tket-like):\n" + table)
    for n in SIZES["aspen"]:
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "qiskit", n, "n_two_qubit_gates")


def test_fig12_qaoa_cz(benchmark, results_dir):
    sizes = tuple(n for n in SIZES["qaoa"] if n <= 16)
    rows = benchmark.pedantic(
        _sweep, args=(aspen, "QAOA-REG-3", sizes, QAOA_INSTANCES),
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig12_QAOA_cz",
                 format_rows(rows, "n_two_qubit_gates", COMPILERS))
    for n in sizes:
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "tket", n, "n_two_qubit_gates")
