"""Section V-D: compiler runtime and scalability.

The paper reports Tabu mapping as the dominant cost (1.6 s at 10 qubits,
~330 s at 40, ~976 s at 50) while routing and scheduling scale
quadratically in the gate count and stay fast.  We reproduce the shape:
mapping time grows super-linearly and dominates; routing + scheduling
stay comfortably below it at larger sizes.

With the vectorized delta-table mapping kernel the absolute numbers are
far below the paper's (and this suite's pre-vectorization) times -- the
default grid now reaches n = 34 on sycamore where n = 22 used to be the
practical ceiling.  Alongside the text table the run emits
``benchmarks/results/runtime_scaling.json`` so the perf trajectory is
diffable across PRs.
"""

from __future__ import annotations

import json

from repro.analysis.engine import parallel_map
from repro.analysis.runtime import (
    RuntimeSpec,
    format_runtime_table,
    measure_runtime_spec,
    runtime_records_from_payload,
    runtime_records_payload,
)
from repro.devices import montreal, sycamore

from benchmarks.conftest import FULL, JOBS, write_result

MODEL_SIZES = (10, 20, 30, 40, 50) if FULL else (10, 16, 22, 28, 34)


def _measure_all():
    specs = [
        RuntimeSpec(f"NNN_Heisenberg-{n}", "NNN_Heisenberg", n, sycamore(),
                    gateset="SYC", mapping_trials=1)
        for n in MODEL_SIZES
    ]
    specs.append(RuntimeSpec("QAOA-REG-3-20", "QAOA-REG-3", 20, montreal(),
                             mapping_trials=1))
    # Each worker process times its own compilation.  Concurrent workers
    # contend for cores, which inflates absolute wall times roughly
    # uniformly; the shape assertions below (mapping dominates and grows
    # with size) are contention-invariant.  Set REPRO_JOBS=1 when the
    # absolute numbers need to be comparable to the paper's serial runs.
    return parallel_map(measure_runtime_spec, specs, jobs=JOBS)


def test_runtime_scaling(benchmark, results_dir):
    records = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    write_result(results_dir, "runtime_scaling",
                 format_runtime_table(records))
    payload = runtime_records_payload(records)
    (results_dir / "runtime_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    # every row carries the unify column (total_s includes it) and
    # round-trips through the tolerant reader
    assert all("unify_s" in row for row in payload)
    assert len(runtime_records_from_payload(payload)) == len(records)
    model_records = records[:-1]
    # mapping dominates at the largest size (paper's observation)
    largest = model_records[-1]
    assert largest.mapping_s >= largest.routing_s
    assert largest.mapping_s >= largest.scheduling_s
    # mapping time grows with problem size
    assert model_records[-1].mapping_s > model_records[0].mapping_s
