"""Section V-D: compiler runtime and scalability.

The paper reports Tabu mapping as the dominant cost (1.6 s at 10 qubits,
~330 s at 40, ~976 s at 50) while routing and scheduling scale
quadratically in the gate count and stay fast.  We reproduce the shape:
mapping time grows super-linearly and dominates; routing + scheduling
stay comfortably below it at larger sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis.runtime import format_runtime_table, measure_runtime
from repro.devices import montreal, sycamore
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph
from repro.hamiltonians.trotter import trotter_step

from benchmarks.conftest import FULL, write_result

MODEL_SIZES = (10, 20, 30, 40) if FULL else (10, 16, 22)


def _measure_all():
    records = []
    for n in MODEL_SIZES:
        step = trotter_step(nnn_heisenberg(n, seed=0))
        records.append(measure_runtime(
            f"NNN_Heisenberg-{n}", step, sycamore(), gateset="SYC",
            mapping_trials=1,
        ))
    graph = random_regular_graph(3, 20, seed=0)
    qaoa = QAOAProblem(graph, (0.35,), (-0.39,)).layer_step(0)
    records.append(measure_runtime("QAOA-REG-3-20", qaoa, montreal(),
                                   mapping_trials=1))
    return records


def test_runtime_scaling(benchmark, results_dir):
    records = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    write_result(results_dir, "runtime_scaling",
                 format_runtime_table(records))
    model_records = records[:-1]
    # mapping dominates at the largest size (paper's observation)
    largest = model_records[-1]
    assert largest.mapping_s >= largest.routing_s
    assert largest.mapping_s >= largest.scheduling_s
    # mapping time grows with problem size
    assert model_records[-1].mapping_s > model_records[0].mapping_s
