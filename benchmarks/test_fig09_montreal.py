"""Figure 9: compilation onto IBMQ Montreal (CNOT gate set).

The QAOA panels additionally include the IC-QAOA application-specific
baseline (panels j-l of the paper's figure).
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import SweepConfig, aggregate, format_rows
from repro.devices import montreal

from benchmarks.conftest import QAOA_INSTANCES, SIZES, engine_sweep, write_result

COMPILERS = ("2qan", "tket", "qiskit", "nomap")
QAOA_COMPILERS = ("2qan", "ic_qaoa", "tket", "qiskit", "nomap")


def _sweep(benchmark_name: str, sizes, compilers=COMPILERS, instances=1):
    return engine_sweep(SweepConfig(
        benchmark=benchmark_name,
        device=montreal(),
        gateset="CNOT",
        sizes=sizes,
        compilers=compilers,
        instances=instances,
        seed=17,
    ))


@pytest.mark.parametrize("family", [
    "NNN_Heisenberg", "NNN_XY", "NNN_Ising",
])
def test_fig09_models(benchmark, results_dir, family):
    rows = benchmark.pedantic(
        _sweep, args=(family, SIZES["montreal"]), rounds=1, iterations=1
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_dressed", "n_two_qubit_gates",
                       "two_qubit_depth")
    )
    write_result(results_dir, f"fig09_{family}", text)
    for n in SIZES["montreal"]:
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "tket", n, "n_two_qubit_gates")
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "qiskit", n, "n_two_qubit_gates")


def test_fig09_qaoa_with_ic(benchmark, results_dir):
    rows = benchmark.pedantic(
        _sweep,
        args=("QAOA-REG-3", SIZES["qaoa_montreal"], QAOA_COMPILERS,
              QAOA_INSTANCES),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, QAOA_COMPILERS)
        for metric in ("n_swaps", "n_dressed", "n_two_qubit_gates",
                       "two_qubit_depth")
    )
    write_result(results_dir, "fig09_QAOA-REG-3", text)
    for n in SIZES["qaoa_montreal"]:
        ours = aggregate(rows, "2qan", n, "n_two_qubit_gates")
        assert ours <= aggregate(rows, "ic_qaoa", n, "n_two_qubit_gates")
        assert ours <= aggregate(rows, "tket", n, "n_two_qubit_gates")
        assert ours <= aggregate(rows, "qiskit", n, "n_two_qubit_gates")
