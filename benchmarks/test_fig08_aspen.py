"""Figure 8: compilation onto Rigetti Aspen (iSWAP gate set), n <= 16."""

from __future__ import annotations

import pytest

from repro.analysis.harness import SweepConfig, aggregate, format_rows
from repro.devices import aspen

from benchmarks.conftest import QAOA_INSTANCES, SIZES, engine_sweep, write_result

COMPILERS = ("2qan", "tket", "qiskit", "nomap")


def _sweep(benchmark_name: str, sizes, instances=1):
    return engine_sweep(SweepConfig(
        benchmark=benchmark_name,
        device=aspen(),
        gateset="ISWAP",
        sizes=sizes,
        compilers=COMPILERS,
        instances=instances,
        seed=13,
    ))


@pytest.mark.parametrize("family", [
    "NNN_Heisenberg", "NNN_XY", "NNN_Ising",
])
def test_fig08_models(benchmark, results_dir, family):
    rows = benchmark.pedantic(
        _sweep, args=(family, SIZES["aspen"]), rounds=1, iterations=1
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_dressed", "n_two_qubit_gates",
                       "two_qubit_depth")
    )
    write_result(results_dir, f"fig08_{family}", text)
    for n in SIZES["aspen"]:
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "qiskit", n, "n_two_qubit_gates")
        assert aggregate(rows, "2qan", n, "two_qubit_depth") <= \
            aggregate(rows, "qiskit", n, "two_qubit_depth")


def test_fig08_qaoa(benchmark, results_dir):
    sizes = tuple(n for n in SIZES["qaoa"] if n <= 16)
    rows = benchmark.pedantic(
        _sweep, args=("QAOA-REG-3", sizes, QAOA_INSTANCES),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_two_qubit_gates", "two_qubit_depth")
    )
    write_result(results_dir, "fig08_QAOA-REG-3", text)
    for n in sizes:
        assert aggregate(rows, "2qan", n, "n_swaps") <= \
            aggregate(rows, "qiskit", n, "n_swaps")
