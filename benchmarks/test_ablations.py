"""Ablations of 2QAN's design choices (DESIGN.md section 5).

The paper motivates four distinct mechanisms; each ablation removes one
and measures the damage:

* SWAP-selection criteria order (Section III-B priority list),
* SWAP unitary unifying / dressing (Section III-C),
* hybrid vs generic ALAP scheduling (Section III-D, Figure 6),
* Tabu-search mapping vs simulated annealing vs random placement.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import TwoQANCompiler
from repro.core.routing import route
from repro.core.unify import unify_circuit_operators
from repro.devices import montreal
from repro.hamiltonians.models import nnn_heisenberg
from repro.hamiltonians.trotter import trotter_step
from repro.mapping.annealing import simulated_annealing
from repro.mapping.placement import best_of_k_mapping, random_mapping
from repro.mapping.qap import qap_from_problem

from benchmarks.conftest import FULL, write_result

SIZES = (8, 12, 16, 20) if FULL else (8, 12, 16)


def _compile_variants():
    device = montreal()
    table = {}
    for n in SIZES:
        step = trotter_step(nnn_heisenberg(n, seed=0))
        variants = {
            "full": TwoQANCompiler(device, "CNOT", seed=1),
            "no_dress": TwoQANCompiler(device, "CNOT", seed=1, dress=False),
            "no_hybrid": TwoQANCompiler(device, "CNOT", seed=1,
                                        hybrid_schedule=False),
            "no_unify": TwoQANCompiler(device, "CNOT", seed=1, unify=False),
            "count_only": TwoQANCompiler(device, "CNOT", seed=1,
                                         swap_criteria=("count",)),
        }
        table[n] = {
            name: compiler.compile(step).metrics
            for name, compiler in variants.items()
        }
    return table


def test_ablation_passes(benchmark, results_dir):
    table = benchmark.pedantic(_compile_variants, rounds=1, iterations=1)
    names = ("full", "no_dress", "no_hybrid", "no_unify", "count_only")
    lines = ["  n  metric      " + "".join(f"{v:>11s}" for v in names)]
    for n, variants in table.items():
        lines.append(f"{n:4d} cnots      " + "".join(
            f"{variants[v].n_two_qubit_gates:11d}" for v in names))
        lines.append(f"{n:4d} 2q-depth   " + "".join(
            f"{variants[v].two_qubit_depth:11d}" for v in names))
    write_result(results_dir, "ablation_passes", "\n".join(lines))

    for variants in table.values():
        full = variants["full"]
        # dressing saves gates
        assert full.n_two_qubit_gates <= variants["no_dress"].n_two_qubit_gates
        # hybrid scheduling saves depth
        assert full.two_qubit_depth <= variants["no_hybrid"].two_qubit_depth
        # circuit unifying saves a lot of gates for Heisenberg
        assert full.n_two_qubit_gates < variants["no_unify"].n_two_qubit_gates


def _mapping_variants():
    device = montreal()
    rows = {}
    for n in SIZES:
        step = unify_circuit_operators(
            trotter_step(nnn_heisenberg(n, seed=0))
        )
        instance = qap_from_problem(step, device)
        tabu = best_of_k_mapping(instance, k=3, seed=0)
        anneal = best_of_k_mapping(instance, k=3, seed=0,
                                   solver=simulated_annealing)
        random_cost = float(np.mean([
            instance.cost(random_mapping(n, device, seed=s))
            for s in range(10)
        ]))
        swaps = {}
        for name, assignment in (("tabu", tabu.assignment),
                                 ("anneal", anneal.assignment),
                                 ("random", random_mapping(n, device, 0))):
            routed = route(step, device, assignment, seed=0)
            swaps[name] = routed.n_swaps
        rows[n] = {
            "tabu_cost": tabu.cost, "anneal_cost": anneal.cost,
            "random_cost": random_cost, **{
                f"{k}_swaps": v for k, v in swaps.items()
            },
        }
    return rows


def test_ablation_mapping(benchmark, results_dir):
    rows = benchmark.pedantic(_mapping_variants, rounds=1, iterations=1)
    lines = []
    for n, row in rows.items():
        lines.append(
            f"n={n}: QAP cost tabu={row['tabu_cost']:.0f} "
            f"anneal={row['anneal_cost']:.0f} random~{row['random_cost']:.0f}"
            f" | swaps tabu={row['tabu_swaps']} anneal={row['anneal_swaps']}"
            f" random={row['random_swaps']}"
        )
    write_result(results_dir, "ablation_mapping", "\n".join(lines))
    for row in rows.values():
        assert row["tabu_cost"] <= row["random_cost"]
        assert row["tabu_swaps"] <= row["random_swaps"]


def _noise_aware_variants():
    from repro.noise.device_noise import (
        edge_aware_success,
        with_noise_weighted_distance,
        with_random_edge_errors,
    )
    rows = {}
    for n in SIZES:
        noisy = with_random_edge_errors(montreal(), spread=0.8, seed=5)
        step = trotter_step(nnn_heisenberg(n, seed=0))
        blind = TwoQANCompiler(noisy, "CNOT", seed=1).compile(step)
        aware = TwoQANCompiler(
            with_noise_weighted_distance(noisy), "CNOT", seed=1,
            swap_criteria=("count", "error", "depth", "dress"),
        ).compile(step)
        rows[n] = {
            "blind_success": edge_aware_success(blind.circuit, noisy),
            "aware_success": edge_aware_success(aware.circuit, noisy),
            "blind_cnots": blind.metrics.n_two_qubit_gates,
            "aware_cnots": aware.metrics.n_two_qubit_gates,
        }
    return rows


def test_ablation_noise_aware(benchmark, results_dir):
    """The paper's Section-VII extension: noise-aware mapping/routing."""
    rows = benchmark.pedantic(_noise_aware_variants, rounds=1, iterations=1)
    lines = []
    improved = 0
    for n, row in rows.items():
        lines.append(
            f"n={n}: success blind={row['blind_success']:.3f} "
            f"aware={row['aware_success']:.3f} | cnots "
            f"{row['blind_cnots']} vs {row['aware_cnots']}"
        )
        if row["aware_success"] >= row["blind_success"] - 1e-9:
            improved += 1
    write_result(results_dir, "ablation_noise_aware", "\n".join(lines))
    # noise-awareness should help (or at least not hurt) at most sizes
    assert improved >= len(rows) - 1
