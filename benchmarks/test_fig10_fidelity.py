"""Figure 10: QAOA application performance on (simulated) IBMQ Montreal.

The paper runs compiled QAOA-REG-3 circuits on real hardware and plots
the normalised cost <C>/C_min per compiler for p = 1, 2, 3 layers.  We
substitute the hardware with the calibrated depolarising+decoherence
fidelity proxy (see DESIGN.md): the observable claims -- 2QAN keeps the
highest fidelity at every size and layer count, all curves decay toward
zero, and noiseless performance *increases* with p while noisy
performance decreases -- are exactly reproduced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    compile_ic_qaoa,
    compile_qiskit_like,
    compile_tket_like,
)
from repro.core.compiler import TwoQANCompiler
from repro.devices import montreal
from repro.hamiltonians.qaoa import (
    FIXED_ANGLES_3REG,
    QAOAProblem,
    optimal_angles_p1,
    random_regular_graph,
)
from repro.noise.estimator import noisy_normalized_cost

from benchmarks.conftest import FULL, write_result

SIZES = (4, 8, 12, 16, 20, 22) if FULL else (4, 8, 12)
INSTANCES = 10 if FULL else 3
COMPILER_NAMES = ("2qan", "ic_qaoa", "tket", "qiskit")


def _problem(n, p, seed):
    graph = random_regular_graph(3, n, seed=seed)
    if p == 1:
        gamma, beta = optimal_angles_p1(graph, resolution=16)
        return QAOAProblem(graph, (gamma,), (beta,))
    gammas, betas = FIXED_ANGLES_3REG[p]
    return QAOAProblem(graph, gammas, betas)


def _compile_all(problem, device, seed):
    steps = [problem.layer_step(i) for i in range(problem.n_layers)]
    compiler = TwoQANCompiler(device, "CNOT", seed=seed, mapping_trials=2)
    results = {"2qan": compiler.compile_layers(steps)}
    # Baselines compile the multi-layer circuit as a whole (the paper
    # notes overhead scales ~linearly with p for every compiler); we
    # compile one layer and scale the metrics by p, which is the same
    # approximation the paper's Figure 13 demonstrates.
    single = {
        "ic_qaoa": compile_ic_qaoa(steps[0], device, "CNOT", seed=seed),
        "tket": compile_tket_like(steps[0], device, "CNOT", seed=seed),
        "qiskit": compile_qiskit_like(steps[0], device, "CNOT", seed=seed),
    }
    from repro.core.metrics import CircuitMetrics
    p = problem.n_layers
    for name, result in single.items():
        m = result.metrics
        results[name] = type(result)(
            circuit=result.circuit,
            metrics=CircuitMetrics(
                n_two_qubit_gates=m.n_two_qubit_gates * p,
                two_qubit_depth=m.two_qubit_depth * p,
                total_depth=m.total_depth * p,
                n_swaps=m.n_swaps * p,
            ),
            n_swaps=m.n_swaps * p,
            initial_map=result.initial_map,
            final_map=result.final_map,
            app_circuit=result.app_circuit,
        )
    return results


def _figure10(p_layers):
    device = montreal()
    series: dict[str, list[float]] = {name: [] for name in COMPILER_NAMES}
    series["noiseless"] = []
    for n in SIZES:
        noisy_acc = {name: [] for name in COMPILER_NAMES}
        ideal_acc = []
        for instance in range(INSTANCES):
            problem = _problem(n, p_layers, seed=instance)
            ideal = problem.normalized_cost()
            ideal_acc.append(ideal)
            compiled = _compile_all(problem, device, seed=instance)
            for name in COMPILER_NAMES:
                noisy_acc[name].append(noisy_normalized_cost(
                    ideal, compiled[name].metrics, n
                ))
        series["noiseless"].append(float(np.mean(ideal_acc)))
        for name in COMPILER_NAMES:
            series[name].append(float(np.mean(noisy_acc[name])))
    return series


@pytest.mark.parametrize("p_layers", [1, 2, 3])
def test_fig10(benchmark, results_dir, p_layers):
    series = benchmark.pedantic(_figure10, args=(p_layers,),
                                rounds=1, iterations=1)
    lines = ["  n  " + "".join(f"{name:>12s}" for name in series)]
    for i, n in enumerate(SIZES):
        lines.append(f"{n:4d} " + "".join(
            f"{series[name][i]:12.3f}" for name in series
        ))
    write_result(results_dir, f"fig10_p{p_layers}", "\n".join(lines))

    for i in range(len(SIZES)):
        values = {name: series[name][i] for name in COMPILER_NAMES}
        # 2QAN achieves the highest fidelity at every size (paper claim).
        assert values["2qan"] == max(values.values())
        # noise can only degrade the ideal value
        assert values["2qan"] <= series["noiseless"][i] + 1e-9
    # curves decay with problem size
    assert series["2qan"][-1] < series["2qan"][0]


def test_fig10_noiseless_improves_with_layers(benchmark, results_dir):
    """Without noise, more layers help (the paper's 'ideally' remark)."""
    def ratios():
        out = []
        for p in (1, 2, 3):
            problem = _problem(8, p, seed=0)
            out.append(problem.normalized_cost())
        return out
    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    write_result(results_dir, "fig10_noiseless_layers",
                 f"p=1: {values[0]:.3f}  p=2: {values[1]:.3f}  "
                 f"p=3: {values[2]:.3f}")
    assert values[1] > values[0] * 0.95
    assert values[2] > values[0]
