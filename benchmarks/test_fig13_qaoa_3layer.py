"""Figure 13: 3-layer QAOA on Montreal -- overhead is ~3x the 1-layer one.

The paper compiles only the first layer, reuses it for odd layers and
reverses the two-qubit order for even layers; every compiler's 3-layer
overhead is then ~3x its 1-layer overhead.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import TwoQANCompiler
from repro.devices import montreal
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph

from benchmarks.conftest import FULL, write_result

SIZES = (4, 8, 12, 16, 20, 22) if FULL else (4, 8, 12)
INSTANCES = 10 if FULL else 3


def _sweep():
    device = montreal()
    data = []
    for n in SIZES:
        singles, triples = [], []
        for instance in range(INSTANCES):
            graph = random_regular_graph(3, n, seed=instance)
            problem = QAOAProblem(
                graph, (0.3, 0.5, 0.7), (0.4, 0.2, 0.1)
            )
            steps = [problem.layer_step(i) for i in range(3)]
            compiler = TwoQANCompiler(device, "CNOT", seed=instance,
                                      mapping_trials=2)
            single = compiler.compile(steps[0])
            triple = compiler.compile_layers(steps)
            singles.append(single.metrics)
            triples.append(triple.metrics)
        data.append((n, singles, triples))
    return data


def test_fig13_three_layer_scaling(benchmark, results_dir):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'n':>4s} {'1-layer CNOTs':>14s} {'3-layer CNOTs':>14s} "
             f"{'ratio':>7s} {'1-layer swaps':>14s} {'3-layer swaps':>14s}"]
    for n, singles, triples in data:
        c1 = np.mean([m.n_two_qubit_gates for m in singles])
        c3 = np.mean([m.n_two_qubit_gates for m in triples])
        s1 = np.mean([m.n_swaps for m in singles])
        s3 = np.mean([m.n_swaps for m in triples])
        ratio = c3 / c1
        lines.append(f"{n:4d} {c1:14.1f} {c3:14.1f} {ratio:7.2f} "
                     f"{s1:14.1f} {s3:14.1f}")
        assert 2.8 <= ratio <= 3.2
        assert np.isclose(s3, 3 * s1)
    write_result(results_dir, "fig13_qaoa_3layer", "\n".join(lines))
