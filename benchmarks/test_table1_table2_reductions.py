"""Tables I and II: overhead reduction of 2QAN vs the generic compilers.

The paper reports, per device / benchmark family, the average and maximum
of ``overhead(generic) / overhead(2QAN)`` across problem sizes for SWAP
count, hardware two-qubit gate count and two-qubit depth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.harness import SweepConfig
from repro.analysis.overhead import reduction_table, summarize_reductions
from repro.devices import aspen, montreal, sycamore

from benchmarks.conftest import FULL, engine_sweep, write_result

DEVICES = (
    ("sycamore", sycamore, "SYC"),
    ("aspen", aspen, "ISWAP"),
    ("montreal", montreal, "CNOT"),
)
SIZES = (6, 10, 14, 18) if FULL else (6, 10, 14)
FAMILIES = ("NNN_Heisenberg", "NNN_XY", "NNN_Ising")


def _sweep_all(device_factory, gateset):
    rows = []
    for family in FAMILIES:
        rows.extend(engine_sweep(SweepConfig(
            benchmark=family,
            device=device_factory(),
            gateset=gateset,
            sizes=SIZES,
            compilers=("2qan", "tket", "qiskit", "nomap"),
            seed=19,
        )))
    return rows


@pytest.mark.parametrize("device_name,device_factory,gateset", DEVICES)
def test_tables_1_and_2(benchmark, results_dir, device_name,
                        device_factory, gateset):
    rows = benchmark.pedantic(
        _sweep_all, args=(device_factory, gateset), rounds=1, iterations=1
    )
    table1 = reduction_table(rows, "tket")
    table2 = reduction_table(rows, "qiskit")
    text = (
        f"Table I ({device_name}, vs t|ket>-like):\n"
        + summarize_reductions(table1)
        + f"\n\nTable II ({device_name}, vs Qiskit-like):\n"
        + summarize_reductions(table2)
    )
    write_result(results_dir, f"table1_table2_{device_name}", text)

    # Shape: 2QAN never does worse than either baseline on average, and
    # the qiskit-like reductions dominate the tket-like ones (the paper's
    # Table II entries exceed Table I's).
    for entry in table1 + table2:
        assert entry.average >= 0.95 or np.isinf(entry.average)
    qiskit_avgs = [e.average for e in table2 if np.isfinite(e.average)]
    tket_avgs = [e.average for e in table1 if np.isfinite(e.average)]
    if qiskit_avgs and tket_avgs:
        assert np.mean(qiskit_avgs) >= np.mean(tket_avgs)
