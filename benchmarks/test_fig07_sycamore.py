"""Figure 7: compilation onto Google Sycamore (SYC gate set).

Twelve panels: {NNN Heisenberg, NNN XY, NNN Ising, QAOA-REG-3} x
{#SWAPs (+dressed), #SYCs (+NoMap), SYC depth}.  The reproduction checks
the paper's shape: 2QAN inserts the fewest SWAPs, dresses a large
fraction, and for Heisenberg/XY has near-zero SYC overhead over NoMap.
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import SweepConfig, aggregate, format_rows
from repro.devices import sycamore

from benchmarks.conftest import QAOA_INSTANCES, SIZES, engine_sweep, write_result

COMPILERS = ("2qan", "tket", "qiskit", "nomap")


def _sweep(benchmark_name: str, sizes, instances=1):
    return engine_sweep(SweepConfig(
        benchmark=benchmark_name,
        device=sycamore(),
        gateset="SYC",
        sizes=sizes,
        compilers=COMPILERS,
        instances=instances,
        seed=11,
    ))


@pytest.mark.parametrize("family,sizes_key", [
    ("NNN_Heisenberg", "sycamore_heis"),
    ("NNN_XY", "sycamore_heis"),
    ("NNN_Ising", "sycamore_ising"),
])
def test_fig07_models(benchmark, results_dir, family, sizes_key):
    rows = benchmark.pedantic(
        _sweep, args=(family, SIZES[sizes_key]), rounds=1, iterations=1
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_dressed", "n_two_qubit_gates",
                       "two_qubit_depth")
    )
    write_result(results_dir, f"fig07_{family}", text)
    for n in SIZES[sizes_key]:
        ours = aggregate(rows, "2qan", n, "n_swaps")
        assert ours <= aggregate(rows, "tket", n, "n_swaps") + 2
        assert ours <= aggregate(rows, "qiskit", n, "n_swaps")
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "qiskit", n, "n_two_qubit_gates")


def test_fig07_heisenberg_near_zero_syc_overhead(benchmark, results_dir):
    """Paper: '2QAN almost has no SYC overhead' for the Heisenberg model."""
    sizes = SIZES["sycamore_heis"][:3]
    rows = benchmark.pedantic(
        _sweep, args=("NNN_Heisenberg", sizes), rounds=1, iterations=1
    )
    lines = []
    for n in sizes:
        base = aggregate(rows, "nomap", n, "n_two_qubit_gates")
        ours = aggregate(rows, "2qan", n, "n_two_qubit_gates")
        dressed = aggregate(rows, "2qan", n, "n_dressed")
        swaps = aggregate(rows, "2qan", n, "n_swaps")
        overhead = ours - base
        lines.append(
            f"n={n}: SYC overhead={overhead:.0f} "
            f"({swaps:.0f} swaps, {dressed:.0f} dressed)"
        )
        # every undressed SWAP costs 3 SYCs; dressed ones cost ~0 extra
        assert overhead == 3 * (swaps - dressed)
    write_result(results_dir, "fig07_heisenberg_overhead", "\n".join(lines))


def test_fig07_qaoa(benchmark, results_dir):
    rows = benchmark.pedantic(
        _sweep, args=("QAOA-REG-3", SIZES["qaoa"], QAOA_INSTANCES),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        f"[{metric}]\n" + format_rows(rows, metric, COMPILERS)
        for metric in ("n_swaps", "n_two_qubit_gates", "two_qubit_depth")
    )
    write_result(results_dir, "fig07_QAOA-REG-3", text)
    for n in SIZES["qaoa"]:
        assert aggregate(rows, "2qan", n, "n_two_qubit_gates") <= \
            aggregate(rows, "qiskit", n, "n_two_qubit_gates")
