"""Symbolic bind benchmark (the structure/parameter split payoff).

Compiles the structure of an n = 22 QAOA instance once, then binds a
grid of angle sets through the retained pipeline suffix.  The paper's
variational use case runs exactly this loop: one circuit structure,
hundreds of angle updates from the classical optimizer.  A warm bind
must be at least 10x faster than a cold compile of the same angles,
and every bound circuit bit-identical to its cold-compiled twin.  The
measurement is recorded under ``benchmarks/results/symbolic_bind.json``.
"""

from __future__ import annotations

import json
import time

from repro.analysis.harness import build_symbolic_step
from repro.core.bind import compile_structural
from repro.core.bind_perf_smoke import circuits_identical
from repro.core.registry import get_compiler
from repro.devices.library import by_name

N_QUBITS = 22
N_BINDINGS = 12
BENCHMARK = "QAOA-REG-3"


def _angle_grid() -> list[dict[str, float]]:
    return [{"gamma": 0.05 + 0.13 * i, "beta": -0.7 + 0.09 * i}
            for i in range(N_BINDINGS)]


def _compiler():
    return get_compiler("2qan", device=by_name("sycamore"),
                        gateset="CNOT", seed=0)


def test_warm_bind_at_least_10x_faster_than_cold_compile(results_dir):
    bindings = _angle_grid()
    symbolic = build_symbolic_step(BENCHMARK, N_QUBITS, 0)

    structural_start = time.perf_counter()
    structural = compile_structural(_compiler(), symbolic)
    structural_seconds = time.perf_counter() - structural_start

    warm = []
    warm_start = time.perf_counter()
    for binding in bindings:
        warm.append(structural.bind(binding))
    warm_seconds = time.perf_counter() - warm_start

    cold = []
    cold_start = time.perf_counter()
    for binding in bindings:
        cold.append(_compiler().compile(symbolic.bind(binding)))
    cold_seconds = time.perf_counter() - cold_start

    per_bind = warm_seconds / len(bindings)
    per_cold = cold_seconds / len(bindings)
    speedup = per_cold / per_bind
    record = {
        "benchmark": BENCHMARK,
        "n_qubits": N_QUBITS,
        "n_bindings": len(bindings),
        "structural_seconds": round(structural_seconds, 4),
        "warm_bind_seconds_per_angle_set": round(per_bind, 4),
        "cold_compile_seconds_per_angle_set": round(per_cold, 4),
        "speedup": round(speedup, 1),
    }
    path = results_dir / "symbolic_bind.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n=== symbolic_bind ===\n{json.dumps(record, indent=2)}")

    # the fast path is only worth having if it is *exactly* the slow one
    for w, c in zip(warm, cold):
        assert w.metrics == c.metrics
        assert circuits_identical(w.circuit, c.circuit)
    assert speedup >= 10.0, (
        f"warm bind only {speedup:.1f}x faster than a cold compile "
        f"({per_cold:.3f}s -> {per_bind:.3f}s per angle set)"
    )
