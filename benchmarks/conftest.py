"""Shared configuration for the figure/table benchmarks.

Each benchmark regenerates one paper artefact (figure panel series or
table) and prints it; run with ``pytest benchmarks/ --benchmark-only -s``
to see the output, or read the files written under ``benchmarks/results``.

By default the sweeps use reduced problem-size grids so the whole suite
finishes in minutes; set ``REPRO_FULL=1`` for the paper's full ranges
(qubit counts up to 50 and 10 QAOA instances per size -- expect a long
run, the paper itself reports Tabu times of ~15 min at n = 50).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"

RESULTS_DIR = Path(__file__).parent / "results"

# Paper ranges (Figures 7-9): Heisenberg/XY up to 50, Ising up to 40,
# QAOA 4..22.  Reduced ranges keep every family's shape visible.
SIZES = {
    "sycamore_heis": (6, 10, 14, 18, 22, 26, 32, 40, 50) if FULL
    else (6, 10, 14, 18),
    "sycamore_ising": (6, 10, 14, 18, 22, 26, 32, 40) if FULL
    else (6, 10, 14, 18),
    "aspen": (6, 8, 10, 12, 14, 16) if FULL else (6, 10, 14, 16),
    "montreal": (6, 10, 14, 18, 22, 26) if FULL else (6, 10, 14, 18),
    "qaoa": (4, 8, 12, 16, 20, 22) if FULL else (4, 8, 12),
    "qaoa_montreal": (4, 8, 12, 16, 20, 22) if FULL else (4, 8, 12),
}

QAOA_INSTANCES = 10 if FULL else 3


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
