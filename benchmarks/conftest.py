"""Shared configuration for the figure/table benchmarks.

Each benchmark regenerates one paper artefact (figure panel series or
table) and prints it; run with ``pytest benchmarks/ --benchmark-only -s``
to see the output, or read the files written under ``benchmarks/results``.

By default the sweeps use reduced problem-size grids so the whole suite
finishes in minutes; set ``REPRO_FULL=1`` for the paper's full ranges
(qubit counts up to 50 and 10 QAOA instances per size -- expect a long
run, the paper itself reports Tabu times of ~15 min at n = 50).

Sweeps run on the parallel engine: ``REPRO_JOBS`` sets the worker count
(default: all cores) and completed rows persist under
``benchmarks/results/store`` so an interrupted suite resumes instead of
recomputing; set ``REPRO_STORE=0`` to force fresh measurements.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.engine import default_jobs, open_store, run_engine
from repro.analysis.harness import BenchmarkRow, SweepConfig
from repro.analysis.store import source_digest

FULL = os.environ.get("REPRO_FULL", "0") == "1"

RESULTS_DIR = Path(__file__).parent / "results"


def _env_jobs() -> int:
    try:
        return int(os.environ.get("REPRO_JOBS", "0")) or default_jobs()
    except ValueError:
        return default_jobs()


JOBS = _env_jobs()
USE_STORE = os.environ.get("REPRO_STORE", "1") == "1"
STORE_ROOT = RESULTS_DIR / "store"


# Stored rows die with the code: sweeps persist under a subdirectory
# named by a digest of the src/repro sources, so any source edit starts
# a fresh cache and stale rows are never replayed.  Directories from
# older digests are pruned so the cache never grows without bound.
CODE_DIGEST = source_digest()


def _prune_stale_stores() -> None:
    if not STORE_ROOT.is_dir():
        return
    import re
    import shutil
    for child in STORE_ROOT.iterdir():
        if (child.is_dir() and child.name != CODE_DIGEST
                and re.fullmatch(r"[0-9a-f]{16}", child.name)):
            shutil.rmtree(child, ignore_errors=True)


_prune_stale_stores()


def engine_sweep(config: SweepConfig) -> list[BenchmarkRow]:
    """Run one sweep on the engine with the suite's jobs/store settings."""
    store = (open_store(STORE_ROOT / CODE_DIGEST, config)
             if USE_STORE else None)
    return run_engine(config, jobs=JOBS, store=store)

# Paper ranges (Figures 7-9): Heisenberg/XY up to 50, Ising up to 40,
# QAOA 4..22.  Reduced ranges keep every family's shape visible.
SIZES = {
    "sycamore_heis": (6, 10, 14, 18, 22, 26, 32, 40, 50) if FULL
    else (6, 10, 14, 18),
    "sycamore_ising": (6, 10, 14, 18, 22, 26, 32, 40) if FULL
    else (6, 10, 14, 18),
    "aspen": (6, 8, 10, 12, 14, 16) if FULL else (6, 10, 14, 16),
    "montreal": (6, 10, 14, 18, 22, 26) if FULL else (6, 10, 14, 18),
    "qaoa": (4, 8, 12, 16, 20, 22) if FULL else (4, 8, 12),
    "qaoa_montreal": (4, 8, 12, 16, 20, 22) if FULL else (4, 8, 12),
}

QAOA_INSTANCES = 10 if FULL else 3


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
