"""Table III: circuit-size comparison with Paulihedral.

Paulihedral was closed-source when the paper was written; the paper uses
the published numbers directly, and so do we (hard-coded below).  Our
side: 2QAN on 30-qubit Heisenberg 1D/2D/3D assuming all-to-all
connectivity (as the paper's Heisenberg rows do) and QAOA-REG-{4,8,12} on
a Manhattan-like 65-qubit heavy-hex device.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import TwoQANCompiler
from repro.devices import all_to_all, manhattan
from repro.hamiltonians.models import heisenberg_lattice
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph
from repro.hamiltonians.trotter import trotter_step

from benchmarks.conftest import FULL, write_result

# Published Paulihedral numbers from the paper's Table III.
PAULIHEDRAL = {
    "Heisenberg-1D": (87, 13),
    "Heisenberg-2D": (216, 43),
    "Heisenberg-3D": (305, 65),
    "QAOA-REG-4": (366, 147),
    "QAOA-REG-8": (539, 246),
    "QAOA-REG-12": (678, 319),
}

QAOA_INSTANCES = 10 if FULL else 3


def _heisenberg_rows():
    from repro.baselines.paulihedral_like import compile_paulihedral_like

    rows = {}
    for label, shape in (
        ("Heisenberg-1D", (30,)),
        ("Heisenberg-2D", (5, 6)),
        ("Heisenberg-3D", (2, 3, 5)),
    ):
        step = trotter_step(heisenberg_lattice(shape, seed=0))
        compiler = TwoQANCompiler(all_to_all(30), "CNOT", seed=0,
                                  mapping_trials=1)
        result = compiler.compile(step)
        ph_like = compile_paulihedral_like(step)
        rows[label] = (result.metrics.n_two_qubit_gates,
                       result.metrics.two_qubit_depth,
                       ph_like.metrics.n_two_qubit_gates)
    return rows


def _qaoa_rows():
    rows = {}
    device = manhattan()
    for degree in (4, 8, 12):
        cnots, depths = [], []
        for instance in range(QAOA_INSTANCES):
            graph = random_regular_graph(degree, 20, seed=instance)
            step = QAOAProblem(graph, (0.35,), (-0.39,)).layer_step(0)
            compiler = TwoQANCompiler(device, "CNOT", seed=instance,
                                      mapping_trials=2)
            result = compiler.compile(step)
            cnots.append(result.metrics.n_two_qubit_gates)
            depths.append(result.metrics.two_qubit_depth)
        rows[f"QAOA-REG-{degree}"] = (float(np.mean(cnots)),
                                      float(np.mean(depths)))
    return rows


def test_table3_heisenberg(benchmark, results_dir):
    rows = benchmark.pedantic(_heisenberg_rows, rounds=1, iterations=1)
    lines = [f"{'benchmark':16s} {'PH(publ)':>9s} {'PH depth':>9s} "
             f"{'PH-like':>8s} {'2QAN CNOTs':>11s} {'2QAN depth':>11s}"]
    for label, (cnots, depth, ph_like) in rows.items():
        ph_cnots, ph_depth = PAULIHEDRAL[label]
        lines.append(f"{label:16s} {ph_cnots:9d} {ph_depth:9d} "
                     f"{ph_like:8d} {cnots:11d} {depth:11d}")
    write_result(results_dir, "table3_heisenberg", "\n".join(lines))
    # Shape checks.  1D all-to-all: both compile to 29 pairs x 3 CNOTs = 87,
    # matching Paulihedral exactly (the paper's row is also 87 / 13).
    assert rows["Heisenberg-1D"][0] == 87
    assert rows["Heisenberg-1D"][2] == 87    # PH-like reproduces published 1D
    # 2D/3D: unifying keeps 2QAN at 3 CNOTs/pair; Paulihedral needs more.
    assert rows["Heisenberg-2D"][0] < PAULIHEDRAL["Heisenberg-2D"][0]
    assert rows["Heisenberg-3D"][0] < PAULIHEDRAL["Heisenberg-3D"][0]
    # 2QAN never exceeds even the idealised Paulihedral bound
    for cnots, _, ph_like in rows.values():
        assert cnots <= ph_like


def test_table3_qaoa(benchmark, results_dir):
    rows = benchmark.pedantic(_qaoa_rows, rounds=1, iterations=1)
    lines = []
    for label, (cnots, depth) in rows.items():
        ph_cnots, ph_depth = PAULIHEDRAL[label]
        lines.append(f"{label:16s} PH=({ph_cnots},{ph_depth}) "
                     f"2QAN=({cnots:.0f},{depth:.0f})")
    write_result(results_dir, "table3_qaoa", "\n".join(lines))
    # The paper reports Paulihedral needing ~1.6x the CNOTs of 2QAN.
    for label, (cnots, _) in rows.items():
        assert cnots < PAULIHEDRAL[label][0]
