"""Batched KAK synthesis benchmark (the repro.synthesis.batch payoff).

Times the batched decomposition engine against the retained scalar
reference at two granularities: a raw synthesis batch (Haar-random U(4)
blocks through ``GateSet.decompose_batch`` vs a per-matrix loop) and an
end-to-end circuit lowering (``decompose_circuit`` two-phase walk vs
``decompose_circuit_reference``, both cache-cold).  The batched path
must be at least 3x faster on the raw batch and bit-identical in both
settings.  The measurement is recorded under
``benchmarks/results/decompose_batch.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.decompose import (
    DecomposeCache,
    decompose_circuit,
    decompose_circuit_reference,
)
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.unitaries import random_unitary
from repro.synthesis.gateset import get_gateset
from repro.synthesis.perf_smoke import blocks_identical

N_MATRICES = 128
MIN_SPEEDUP = 3.0
ROUNDS = 3


def _haar_batch() -> list[np.ndarray]:
    rng = np.random.default_rng(42)
    return [random_unitary(4, rng) for _ in range(N_MATRICES)]


def _app_circuit(n_qubits: int = 12, layers: int = 4) -> Circuit:
    """A brickwork of unique Haar blocks: worst case for the dedupe
    phase (no repeats), so the timing isolates raw synthesis."""
    rng = np.random.default_rng(7)
    circuit = Circuit(n_qubits)
    for layer in range(layers):
        for a in range(layer % 2, n_qubits - 1, 2):
            circuit.append(Gate("APP2Q", (a, a + 1),
                                matrix=random_unitary(4, rng)))
    return circuit


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_synthesis_at_least_3x_faster(results_dir):
    gateset = get_gateset("CNOT")
    matrices = _haar_batch()

    batched_blocks = gateset.decompose_batch(matrices)       # warm-up
    scalar_blocks = [gateset.decompose(m) for m in matrices]
    batch_seconds = _best_of(lambda: gateset.decompose_batch(matrices))
    scalar_seconds = _best_of(
        lambda: [gateset.decompose(m) for m in matrices])
    speedup = scalar_seconds / batch_seconds

    circuit = _app_circuit()
    lowered = decompose_circuit(circuit, gateset,
                                cache=DecomposeCache(maxsize=0))
    reference = decompose_circuit_reference(circuit, gateset,
                                            cache=DecomposeCache(maxsize=0))
    circuit_batch_seconds = _best_of(lambda: decompose_circuit(
        circuit, gateset, cache=DecomposeCache(maxsize=0)))
    circuit_scalar_seconds = _best_of(lambda: decompose_circuit_reference(
        circuit, gateset, cache=DecomposeCache(maxsize=0)))

    record = {
        "n_matrices": N_MATRICES,
        "batch_seconds": round(batch_seconds, 4),
        "scalar_seconds": round(scalar_seconds, 4),
        "speedup": round(speedup, 1),
        "circuit_gates": len(circuit.gates),
        "circuit_batch_seconds": round(circuit_batch_seconds, 4),
        "circuit_scalar_seconds": round(circuit_scalar_seconds, 4),
        "circuit_speedup": round(
            circuit_scalar_seconds / circuit_batch_seconds, 1),
    }
    path = results_dir / "decompose_batch.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n=== decompose_batch ===\n{json.dumps(record, indent=2)}")

    # the batched path is a pure perf rewrite: outputs stay bit-identical
    assert blocks_identical(batched_blocks, scalar_blocks)
    assert len(lowered.gates) == len(reference.gates)
    assert all(
        ga.name == gb.name and ga.qubits == gb.qubits
        and ga.params == gb.params
        and ((ga.matrix is None and gb.matrix is None)
             or ga.matrix.tobytes() == gb.matrix.tobytes())
        for ga, gb in zip(lowered.gates, reference.gates))
    assert speedup >= MIN_SPEEDUP, (
        f"batched synthesis only {speedup:.1f}x faster "
        f"({scalar_seconds:.3f}s -> {batch_seconds:.3f}s)"
    )
