"""Parameter sweep: compile a QAOA structure once, bind many angle sets.

A variational optimizer changes only the angles between iterations --
the interaction graph, the qubit mapping, the SWAP schedule all stay
fixed.  This example compiles the *structure* of a weighted MaxCut
QAOA layer once and then binds a grid of (gamma, beta) settings at a
tiny fraction of the cost of recompiling, with every bound circuit
bit-identical to a from-scratch compile of the same angles.

Run with ``python examples/parameter_sweep.py``.
"""

import time

from repro.core.bind import compile_structural
from repro.core.registry import get_compiler
from repro.devices import montreal
from repro.hamiltonians.randomized import weighted_maxcut_problem
from repro.quantum.params import Param


def main() -> None:
    # A weighted MaxCut instance (random 3-regular graph, dyadic edge
    # weights) with symbolic angles: the step's circuit has gamma/beta
    # placeholders instead of numbers.
    problem = weighted_maxcut_problem(
        12, kind="regular", seed=0,
        gammas=(Param("gamma"),), betas=(Param("beta"),),
    )
    step = problem.layer_step(0)
    print(f"problem: {problem.label}")
    print(f"unbound parameters: {sorted(step.parameters())}")

    # Compile the structure once: unify -> mapping -> routing ->
    # scheduling run here; binding + decomposition are retained as a
    # replayable suffix.
    compiler = get_compiler("2qan", device=montreal(), gateset="CNOT",
                            seed=0)
    start = time.perf_counter()
    structural = compile_structural(compiler, step)
    structural_ms = (time.perf_counter() - start) * 1000
    print(f"structural compile ({'+'.join(structural.prefix_names)}): "
          f"{structural_ms:.0f}ms")

    # Bind a small optimizer-style angle grid through the suffix.
    print("\n gamma   beta   2q-gates  2q-depth  bind-ms")
    for i in range(6):
        gamma, beta = 0.1 + 0.15 * i, -0.5 + 0.12 * i
        start = time.perf_counter()
        result = structural.bind({"gamma": gamma, "beta": beta})
        bind_ms = (time.perf_counter() - start) * 1000
        m = result.metrics
        print(f"  {gamma:4.2f}  {beta:5.2f}   {m.n_two_qubit_gates:7d} "
              f"{m.two_qubit_depth:9d}  {bind_ms:6.1f}")

    # The guarantee behind the speed: binding after the structural
    # compile equals compiling the concrete circuit, bit for bit.
    binding = {"gamma": 0.4, "beta": 1.1}
    warm = structural.bind(binding)
    cold = compiler.compile(step.bind(binding))
    identical = all(
        ga.unitary().tobytes() == gb.unitary().tobytes()
        for ga, gb in zip(warm.circuit.gates, cold.circuit.gates)
    )
    print(f"\nbind({binding}) bit-identical to cold compile: "
          f"{identical and warm.metrics == cold.metrics}")


if __name__ == "__main__":
    main()
