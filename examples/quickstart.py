"""Quickstart: compile a Heisenberg-model Trotter step onto IBMQ Montreal.

Run with ``python examples/quickstart.py``.
"""

from repro import TwoQANCompiler, nnn_heisenberg, trotter_step
from repro.baselines import compile_nomap, compile_tket_like
from repro.devices import montreal


def main() -> None:
    # One Trotter step of the 10-qubit NNN Heisenberg model (17 qubit
    # pairs x 3 Pauli terms each, coefficients sampled in (0, pi)).
    hamiltonian = nnn_heisenberg(10, seed=0)
    step = trotter_step(hamiltonian)
    print(f"Hamiltonian: {hamiltonian}")
    print(f"Two-qubit operators before unifying: {len(step.two_qubit_ops)}")

    device = montreal()
    print(f"Target device: {device}")

    compiler = TwoQANCompiler(device=device, gateset="CNOT", seed=1)
    result = compiler.compile(step)

    print("\n--- 2QAN result ---")
    print(f"inserted SWAPs:     {result.n_swaps} "
          f"({result.n_dressed} dressed into circuit gates)")
    print(f"hardware CNOTs:     {result.metrics.n_two_qubit_gates}")
    print(f"two-qubit depth:    {result.metrics.two_qubit_depth}")
    print(f"total depth:        {result.metrics.total_depth}")
    print(f"QAP mapping cost:   {result.qap_cost:.0f}")
    print("pass timings:       " + ", ".join(
        f"{k}={v * 1000:.0f}ms" for k, v in result.timings.items()))

    # Context: the connectivity-free lower bound and a generic compiler.
    nomap = compile_nomap(step, "CNOT")
    tket = compile_tket_like(step, device, "CNOT", seed=1)
    print("\n--- context ---")
    print(f"NoMap (all-to-all) CNOTs:  {nomap.metrics.n_two_qubit_gates}")
    print(f"t|ket>-like CNOTs:         {tket.metrics.n_two_qubit_gates} "
          f"({tket.n_swaps} swaps, none dressed)")
    overhead_ours = (result.metrics.n_two_qubit_gates
                     - nomap.metrics.n_two_qubit_gates)
    overhead_generic = (tket.metrics.n_two_qubit_gates
                        - nomap.metrics.n_two_qubit_gates)
    print(f"CNOT overhead: 2QAN +{overhead_ours}, generic +{overhead_generic}")


if __name__ == "__main__":
    main()
