"""Quickstart: compile a Heisenberg-model Trotter step onto IBMQ Montreal.

Also shows the pass-pipeline API: every compiler here is a
``PassPipeline`` of small stages (unify -> mapping -> routing ->
scheduling -> decomposition, the paper's Figure 2), and an experiment
that would once have needed a fork is now a pass swap.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro import TwoQANCompiler, nnn_heisenberg, trotter_step
from repro.baselines import compile_nomap, compile_tket_like
from repro.core.pipeline import run_pipeline
from repro.devices import montreal
from repro.mapping.qap import qap_from_problem


class TrivialMapPass:
    """A custom mapping stage: logical qubit i on physical qubit i.

    Any object with a ``name`` and ``run(ctx) -> ctx`` is a pass; this
    one replaces 2QAN's Tabu search to show how much the placement
    stage matters.
    """

    name = "mapping"

    def run(self, ctx):
        instance = qap_from_problem(ctx.working, ctx.device)
        ctx.assignment = np.arange(ctx.working.n_qubits)
        ctx.qap_cost = float(instance.cost(ctx.assignment))
        return ctx


def main() -> None:
    # One Trotter step of the 10-qubit NNN Heisenberg model (17 qubit
    # pairs x 3 Pauli terms each, coefficients sampled in (0, pi)).
    hamiltonian = nnn_heisenberg(10, seed=0)
    step = trotter_step(hamiltonian)
    print(f"Hamiltonian: {hamiltonian}")
    print(f"Two-qubit operators before unifying: {len(step.two_qubit_ops)}")

    device = montreal()
    print(f"Target device: {device}")

    compiler = TwoQANCompiler(device=device, gateset="CNOT", seed=1)
    result = compiler.compile(step)

    print("\n--- 2QAN result ---")
    print(f"inserted SWAPs:     {result.n_swaps} "
          f"({result.n_dressed} dressed into circuit gates)")
    print(f"hardware CNOTs:     {result.metrics.n_two_qubit_gates}")
    print(f"two-qubit depth:    {result.metrics.two_qubit_depth}")
    print(f"total depth:        {result.metrics.total_depth}")
    print(f"QAP mapping cost:   {result.qap_cost:.0f}")
    print("pass timings:       " + ", ".join(
        f"{k}={v * 1000:.0f}ms" for k, v in result.timings.items()))

    # Context: the connectivity-free lower bound and a generic compiler.
    nomap = compile_nomap(step, "CNOT")
    tket = compile_tket_like(step, device, "CNOT", seed=1)
    print("\n--- context ---")
    print(f"NoMap (all-to-all) CNOTs:  {nomap.metrics.n_two_qubit_gates}")
    print(f"t|ket>-like CNOTs:         {tket.metrics.n_two_qubit_gates} "
          f"({tket.n_swaps} swaps, none dressed)")
    overhead_ours = (result.metrics.n_two_qubit_gates
                     - nomap.metrics.n_two_qubit_gates)
    overhead_generic = (tket.metrics.n_two_qubit_gates
                        - nomap.metrics.n_two_qubit_gates)
    print(f"CNOT overhead: 2QAN +{overhead_ours}, generic +{overhead_generic}")

    # --- pass-pipeline surgery -------------------------------------
    # Swap the Tabu-search mapping stage for the trivial identity
    # placement defined above; every other stage stays the paper's.
    custom = compiler.build_pipeline().replaced("mapping", TrivialMapPass())
    swapped = run_pipeline(custom, step, gateset="CNOT", device=device,
                           seed=1)
    print("\n--- custom pipeline (trivial placement) ---")
    print(f"pipeline stages:    {' -> '.join(custom.names())}")
    print(f"inserted SWAPs:     {swapped.n_swaps} "
          f"(vs {result.n_swaps} with Tabu placement)")
    print(f"hardware CNOTs:     {swapped.metrics.n_two_qubit_gates} "
          f"(vs {result.metrics.n_two_qubit_gates})")

    # --- batch serving through the compilation cache ---------------
    # A BatchCompiler serves CompileRequest lists: duplicate requests
    # compile once, and all requests share one content-addressed
    # artifact cache, so e.g. tket reuses 2qan's Unify artifact and a
    # repeated batch replays entirely from the store.  (On the command
    # line: python -m repro batch --requests FILE.json --cache DIR.)
    from repro.service import BatchCompiler, CompileRequest

    service = BatchCompiler()            # in-memory cache; pass
    requests = [                         # cache_dir=... to persist
        CompileRequest(compiler="2qan", benchmark="NNN_Heisenberg",
                       n_qubits=10, device="montreal", seed=1),
        CompileRequest(compiler="tket", benchmark="NNN_Heisenberg",
                       n_qubits=10, device="montreal", seed=1),
        CompileRequest(compiler="2qan", benchmark="NNN_Heisenberg",
                       n_qubits=10, device="montreal", seed=1),  # repeat
    ]
    responses, summary = service.run(requests)
    print("\n--- batch compilation service ---")
    print(summary.line())
    for response in responses:
        note = " (deduplicated)" if response.deduplicated else ""
        print(f"{response.request.compiler}: "
              f"2q-gates={response.n_two_qubit_gates}{note}")
    # serving the same batch again is pure cache replay
    _, again = service.run(requests)
    print(f"served again: {again.artifact_hits} artifact hits, "
          f"{again.artifact_misses} misses")

    # When a custom pass graduates into the tree, declare its context
    # reads/writes (see the built-in passes) and run ``python -m repro
    # lint``: five static checkers verify the declarations against the
    # run() body, fingerprint coverage, the metrics schema, compile-path
    # determinism and async hygiene -- the contracts the cache and the
    # golden tests rely on.


if __name__ == "__main__":
    main()
