"""QAOA for MaxCut on IBMQ Montreal: compile, estimate fidelity, compare.

Reproduces the Figure-10 workflow on one instance: build a 3-regular
MaxCut problem, pick good angles, compile with 2QAN and the baseline
compilers, and estimate each circuit's noisy performance with the
calibrated Montreal noise model.

Run with ``python examples/qaoa_maxcut_montreal.py``.
"""

from repro import TwoQANCompiler
from repro.baselines import (
    compile_ic_qaoa,
    compile_qiskit_like,
    compile_tket_like,
)
from repro.devices import montreal
from repro.hamiltonians.qaoa import (
    QAOAProblem,
    minimum_cost,
    optimal_angles_p1,
    random_regular_graph,
)
from repro.noise.estimator import circuit_fidelity_proxy, noisy_normalized_cost


def main() -> None:
    n = 12
    graph = random_regular_graph(3, n, seed=7)
    gamma, beta = optimal_angles_p1(graph, resolution=24)
    problem = QAOAProblem(graph, (gamma,), (beta,))
    ideal = problem.normalized_cost()
    print(f"QAOA-REG-3, n={n}, |E|={graph.number_of_edges()}, "
          f"C_min={minimum_cost(graph, n):.0f}")
    print(f"optimal p=1 angles: gamma={gamma:.3f}, beta={beta:.3f}")
    print(f"noiseless <C>/C_min = {ideal:.3f}\n")

    device = montreal()
    step = problem.layer_step(0)
    compiled = {
        "2QAN": TwoQANCompiler(device, "CNOT", seed=1).compile(step),
        "IC-QAOA": compile_ic_qaoa(step, device, "CNOT", seed=1),
        "tket-like": compile_tket_like(step, device, "CNOT", seed=1),
        "qiskit-like": compile_qiskit_like(step, device, "CNOT", seed=1),
    }
    print(f"{'compiler':12s} {'swaps':>6s} {'CNOTs':>6s} {'depth':>6s} "
          f"{'est. fidelity':>14s} {'<C>/C_min':>10s}")
    for name, result in compiled.items():
        metrics = result.metrics
        fidelity = circuit_fidelity_proxy(metrics, n)
        noisy = noisy_normalized_cost(ideal, metrics, n)
        print(f"{name:12s} {metrics.n_swaps:6d} "
              f"{metrics.n_two_qubit_gates:6d} "
              f"{metrics.two_qubit_depth:6d} {fidelity:14.3f} "
              f"{noisy:10.3f}")
    print("\nThe compiler that produces the smallest circuit keeps the "
          "highest fraction of the noiseless score -- the paper's "
          "Figure 10 in one row.")


if __name__ == "__main__":
    main()
