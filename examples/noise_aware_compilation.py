"""Noise-aware compilation and readout mitigation (paper Section VII).

The paper's future-work section points at noise-adaptive compilation and
error mitigation as the natural extensions of 2QAN.  This example
demonstrates both, implemented in this repository:

1. attach a synthetic per-edge calibration to Montreal (log-normal
   spread around the paper's mean CNOT error, like real backends);
2. compile with and without the ``"error"`` SWAP-selection criterion and
   compare the edge-aware success probability of the results;
3. run the compiled circuit through the Monte-Carlo noise simulator with
   readout errors and recover most of the readout loss with tensored
   mitigation.

Run with ``python examples/noise_aware_compilation.py``.
"""

import numpy as np

from repro import TwoQANCompiler, nnn_ising, trotter_step
from repro.devices import montreal
from repro.noise import (
    edge_aware_success,
    mitigate_distribution,
    with_random_edge_errors,
)
from repro.noise.device_noise import with_noise_weighted_distance
from repro.quantum import to_qasm


def main() -> None:
    noisy_device = with_random_edge_errors(montreal(), mean=0.0124,
                                           spread=0.8, seed=5)
    rates = sorted(noisy_device.edge_errors.values())
    print(f"device calibration: best edge {rates[0]:.4f}, "
          f"median {rates[len(rates) // 2]:.4f}, worst {rates[-1]:.4f}")

    step = trotter_step(nnn_ising(10, seed=0))
    default = TwoQANCompiler(noisy_device, "CNOT", seed=1).compile(step)
    weighted_device = with_noise_weighted_distance(noisy_device)
    aware = TwoQANCompiler(
        weighted_device, "CNOT", seed=1,
        swap_criteria=("count", "error", "depth", "dress"),
    ).compile(step)

    print("\n--- noise-aware mapping + routing ---")
    for name, result in (("noise-blind", default),
                         ("noise-aware", aware)):
        success = edge_aware_success(result.circuit, noisy_device)
        print(f"{name:24s}: {result.metrics.n_two_qubit_gates} CNOTs, "
              f"edge-aware success {success:.3f}")

    # Readout mitigation on a small sampled distribution.
    print("\n--- readout mitigation ---")
    rng = np.random.default_rng(0)
    ideal = rng.dirichlet(np.ones(16) * 0.3)       # a peaked distribution
    from repro.noise import confusion_matrix
    a = confusion_matrix(0.05, 0.05)
    noisy = ideal.reshape((2,) * 4)
    for axis in range(4):
        noisy = np.moveaxis(np.tensordot(a, noisy, axes=(1, axis)), 0, axis)
    noisy = noisy.reshape(-1)
    recovered = mitigate_distribution(noisy, 4, 0.05)
    print(f"L1 distance to ideal: raw={np.abs(noisy - ideal).sum():.4f} "
          f"mitigated={np.abs(recovered - ideal).sum():.4f}")

    # Export the compiled circuit for a real backend.
    qasm = to_qasm(aware.circuit, include_measure=True)
    print(f"\nOpenQASM export: {len(qasm.splitlines())} lines "
          f"(first three shown)")
    for line in qasm.splitlines()[:3]:
        print("  " + line)


if __name__ == "__main__":
    main()
