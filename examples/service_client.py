"""Compilation as a service: spawn a compile server, drive it end to end.

This example exercises the full serving stack exactly the way the CI
smoke job does:

1. start ``python -m repro serve`` as a subprocess on an ephemeral port
   with a disk artifact cache;
2. fire a mixed batch through the :class:`CompileClient` SDK --
   duplicates (served from one compile), an alias spelling (dedupes with
   its canonical name), and two parameterised QAOA variants (sharing one
   structural compile, bound per angle set);
3. assert the coalescing counters on ``/metrics`` and re-fire the same
   batch to show the warm cache: identical responses, no new misses;
4. shut the server down gracefully and check it drained cleanly.

Run with ``python examples/service_client.py``.
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import CompileClient  # noqa: E402

BATCH = [
    {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": 0},
    {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": 0},    # duplicate
    {"compiler": "order", "benchmark": "NNN_Ising", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": 0},    # alias of tket
    {"compiler": "tket", "benchmark": "NNN_Ising", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": 0},    # dedupes with it
    {"compiler": "2qan", "benchmark": "QAOA-REG-3", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": 1,
     "parameters": {"gamma": 0.4, "beta": 1.1}},
    {"compiler": "2qan", "benchmark": "QAOA-REG-3", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": 1,
     "parameters": {"gamma": 0.7, "beta": 0.2}},          # same structure
]


def start_server(cache_dir: str) -> tuple[subprocess.Popen, int]:
    """Spawn ``repro serve`` on an ephemeral port; returns the port it
    announces on stderr."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--cache", cache_dir],
        stderr=subprocess.PIPE, env=env, text=True)
    line = process.stderr.readline().strip()    # "serving on host:port"
    if not line.startswith("serving on "):
        process.kill()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    # keep draining stderr so the server never blocks on a full pipe
    threading.Thread(target=process.stderr.read, daemon=True).start()
    return process, port


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        process, port = start_server(cache_dir)
        try:
            client = CompileClient(port=port)
            print(f"server up on port {port}: {client.healthz()['status']}")

            cold = client.compile_batch(BATCH)
            keys = [response["request_key"] for response in cold]
            assert keys[0] == keys[1], "duplicates must share request_key"
            assert keys[2] == keys[3], "alias must dedupe with canonical"
            metrics = client.metrics()
            counters = metrics["requests"]
            assert counters["deduplicated"] == 2
            assert counters["structural_compiles"] == 1
            assert counters["structural_binds"] == 2
            cold_misses = metrics["cache"]["default"]["misses"]
            print(f"cold batch: {len(BATCH)} requests -> "
                  f"{counters['compiled']} compiles "
                  f"({counters['deduplicated']} deduplicated, "
                  f"{counters['structural_binds']} bound onto "
                  f"{counters['structural_compiles']} structural compile)")

            warm = client.compile_batch(BATCH)
            assert json.dumps(warm) == json.dumps(cold), \
                "warm responses must be bit-identical to cold"
            stats = client.metrics()["cache"]["default"]
            assert stats["misses"] == cold_misses, \
                "a warm re-run must add no cache misses"
            print(f"warm batch: identical responses, "
                  f"{stats['hits']} cache hits, no new misses")

            for response in cold:
                label = (f"{response['compiler']} {response['benchmark']}"
                         + (" (bound)" if "parameters" in response else ""))
                print(f"  {label}: swaps={response['n_swaps']} "
                      f"2q-depth={response['two_qubit_depth']}")

            print(f"shutdown: {client.shutdown()['status']}")
            code = process.wait(timeout=60)
            assert code == 0, f"server exited with {code}"
            print("server drained and exited cleanly")
        finally:
            if process.poll() is None:
                process.kill()


if __name__ == "__main__":
    main()
