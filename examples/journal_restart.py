"""Fault tolerance end to end: kill a serving process, replay its journal.

The durability guarantee behind ``repro serve --journal``: an accepted
job is never silently lost.  This example proves it the hard way,
exactly like the CI chaos smoke job:

1. run a batch against an uninterrupted server -- the reference output;
2. start a fresh server with ``--journal`` armed and a fault plan that
   stalls every compile at the routing pass, fire the same batch, and
   ``SIGKILL`` the server once the journal shows the accepted jobs --
   mid-compile, nothing answered;
3. restart a server on the same journal (faults cleared): startup
   replay re-executes the orphaned jobs until the journal drains;
4. re-fire the batch and assert the responses are byte-identical to the
   uninterrupted run -- a crash plus a replay changes nothing the
   client can observe.

Run with ``python examples/journal_restart.py``.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import CompileClient  # noqa: E402
from repro.service.faults import ENV_VAR, FaultPlan  # noqa: E402
from repro.service.journal import JobJournal  # noqa: E402

BATCH = [
    {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
     "device": "aspen", "gateset": "CNOT", "seed": seed}
    for seed in range(4)
]


def start_server(journal: Path, cache_dir: str,
                 fault_env: str | None = None,
                 ) -> tuple[subprocess.Popen, int]:
    """Spawn ``repro serve --journal`` on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    if fault_env is not None:
        env[ENV_VAR] = fault_env
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--cache", cache_dir, "--journal", str(journal)],
        stderr=subprocess.PIPE, env=env, text=True)
    line = process.stderr.readline().strip()    # "serving on host:port"
    if not line.startswith("serving on "):
        process.kill()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    # keep draining stderr so the server never blocks on a full pipe
    threading.Thread(target=process.stderr.read, daemon=True).start()
    return process, port


def wait_until(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise RuntimeError(f"timed out waiting for {what}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "journal.jsonl"
        cache_dir = str(Path(tmp) / "cache")

        # -- 1. the uninterrupted reference run ------------------------
        process, port = start_server(journal, cache_dir)
        try:
            client = CompileClient(port=port)
            reference = client.compile_batch(BATCH)
            assert all(r.get("error") is None for r in reference)
            client.shutdown()
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        print(f"reference run: {len(reference)} responses")
        assert JobJournal(journal).pending() == [], \
            "a cleanly drained server leaves no pending journal records"

        # -- 2. accept the batch, then die mid-compile -----------------
        stall = FaultPlan(slow_pass="routing", slow_seconds=30.0).to_env()
        process, port = start_server(journal, cache_dir, fault_env=stall)
        try:
            # the batch call never returns (its server dies); fire and
            # forget from a background thread
            def doomed_call():
                try:
                    CompileClient(port=port, retries=0,
                                  timeout_s=120).compile_batch(BATCH)
                except Exception:
                    pass        # expected: the server is about to die

            threading.Thread(target=doomed_call, daemon=True).start()
            wait_until(lambda: len(JobJournal(journal).pending())
                       == len(BATCH),
                       timeout=60, what="journal to show accepted jobs")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        orphaned = len(JobJournal(journal).pending())
        print(f"killed mid-compile with {orphaned} accepted, "
              f"unanswered jobs journalled")
        assert orphaned == len(BATCH)

        # -- 3. restart on the same journal: replay drains it ----------
        process, port = start_server(journal, cache_dir)
        try:
            wait_until(lambda: JobJournal(journal).pending() == [],
                       timeout=300, what="startup replay to drain")
            print("restarted server replayed every orphaned job")

            # -- 4. the crash was invisible to the next client ---------
            client = CompileClient(port=port)
            replayed = client.compile_batch(BATCH)
            counters = client.metrics()["requests"]
            assert counters["journal_replayed"] == len(BATCH)
            client.shutdown()
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert json.dumps(replayed) == json.dumps(reference), \
            "post-replay responses must be byte-identical to the " \
            "uninterrupted run"
        print(f"post-replay batch is byte-identical to the reference "
              f"({len(replayed)} responses)")


if __name__ == "__main__":
    main()
