"""End-to-end verified Hamiltonian simulation on a 2x3 grid device.

Compiles an XY-model Trotter step with exact gate synthesis, verifies the
hardware circuit implements a legal operator permutation (the compiled
unitary equals the executed-order product up to the mapping
permutations), then simulates multiple Trotter steps and compares with
the exact evolution -- the full workflow a physicist would run.

Run with ``python examples/verified_simulation.py``.
"""

import scipy.linalg as sla

from repro import TwoQANCompiler, trotter_step
from repro.core.unify import unify_circuit_operators
from repro.devices import grid
from repro.hamiltonians.models import nnn_xy
from repro.quantum.statevector import Statevector
from repro.verification import (
    executed_order_circuit,
    verify_compilation,
    verify_operator_conservation,
)


def main() -> None:
    n = 6
    hamiltonian = nnn_xy(n, seed=3)
    device = grid(2, 3)

    # Compile one Trotter step with exact (unitary-solving) decomposition.
    step = unify_circuit_operators(trotter_step(hamiltonian, t=0.1))
    compiler = TwoQANCompiler(device, "CNOT", seed=2, solve_angles=True)
    result = compiler.compile(step)
    print(f"compiled: {result.metrics.n_two_qubit_gates} CNOTs, "
          f"{result.n_swaps} swaps ({result.n_dressed} dressed)")

    print("operator conservation:", verify_operator_conservation(result, step))
    print("unitary verification: ", verify_compilation(result, step))

    # Fidelity of the r-step Trotterized evolution vs exact dynamics.
    # The compiled circuit implements *some* operator ordering; any
    # ordering is a first-order Trotter approximant, so fidelity must
    # approach 1 as the step count r grows (total time fixed).
    total_time = 0.4
    exact = sla.expm(1j * total_time * hamiltonian.to_matrix())
    reference = Statevector.zero(n)
    reference.amplitudes = exact @ reference.amplitudes

    print(f"\n{'r':>4s} {'|<exact|trotter>|^2':>20s}")
    for r in (1, 2, 4, 8):
        step_r = unify_circuit_operators(
            trotter_step(hamiltonian, t=total_time / r)
        )
        compiled_r = compiler.compile(step_r)
        logical = executed_order_circuit(compiled_r.scheduled, n)
        state = Statevector.zero(n)
        for _ in range(r):
            state.apply_circuit(logical)
        print(f"{r:4d} {state.fidelity(reference):20.6f}")


if __name__ == "__main__":
    main()
