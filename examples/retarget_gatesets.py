"""Retargeting one routed circuit to all four hardware gate sets.

2QAN performs every permutation-aware pass *before* decomposition, so the
same schedule lowers to CNOT (IBM), CZ, SYC (Google) and iSWAP (Rigetti)
hardware.  This example also demonstrates the headline dressing effect:
a dressed SWAP costs no more basis gates than the Heisenberg circuit gate
it replaces, so Heisenberg simulations route essentially for free.

Run with ``python examples/retarget_gatesets.py``.
"""

import numpy as np

from repro import TwoQANCompiler, nnn_heisenberg, trotter_step
from repro.baselines import compile_nomap
from repro.devices import grid
from repro.quantum.gates import standard_gate_unitary
from repro.synthesis import get_gateset, weyl_coordinates


def show_gate_costs() -> None:
    """Per-gate decomposition costs that explain the figure shapes."""
    import scipy.linalg as sla

    z = np.diag([1.0, -1.0]).astype(complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]])
    zz_rotation = sla.expm(0.8j * np.kron(z, z))
    heisenberg = sla.expm(1j * (
        0.5 * np.kron(x, x) + 0.3 * np.kron(y, y) + 0.2 * np.kron(z, z)
    ))
    swap = standard_gate_unitary("SWAP")
    dressed = swap @ heisenberg

    gates = {
        "exp(i 0.8 ZZ)  (Ising term)": zz_rotation,
        "Heisenberg term (unified)": heisenberg,
        "bare SWAP": swap,
        "dressed SWAP (SWAP * term)": dressed,
    }
    bases = ("CNOT", "CZ", "SYC", "ISWAP")
    print(f"{'gate':32s}" + "".join(f"{b:>7s}" for b in bases)
          + "   Weyl coordinates")
    for name, unitary in gates.items():
        costs = [get_gateset(b).gates_needed(unitary) for b in bases]
        coords = ", ".join(f"{c:+.3f}" for c in weyl_coordinates(unitary))
        print(f"{name:32s}" + "".join(f"{c:7d}" for c in costs)
              + f"   ({coords})")
    print("\nNote: the dressed SWAP row equals the bare-term row -- this is"
          "\nwhy 2QAN's SWAPs are (almost) free for Heisenberg circuits.\n")


def compile_everywhere() -> None:
    step = trotter_step(nnn_heisenberg(6, seed=0))
    device = grid(2, 3)   # the paper's Figure 3 topology
    print(f"{'basis':>7s} {'2q gates':>9s} {'2q depth':>9s} "
          f"{'swaps':>6s} {'dressed':>8s} {'NoMap 2q':>9s}")
    for basis in ("CNOT", "CZ", "SYC", "ISWAP"):
        result = TwoQANCompiler(device, basis, seed=1).compile(step)
        nomap = compile_nomap(step, basis)
        print(f"{basis:>7s} {result.metrics.n_two_qubit_gates:9d} "
              f"{result.metrics.two_qubit_depth:9d} "
              f"{result.n_swaps:6d} {result.n_dressed:8d} "
              f"{nomap.metrics.n_two_qubit_gates:9d}")


if __name__ == "__main__":
    show_gate_costs()
    compile_everywhere()
