"""Tests for the generic (order-respecting) baseline compilers."""

import pytest

from repro.baselines.order_respecting import (
    _DagState,
    compile_qiskit_like,
    compile_tket_like,
)
from repro.core.unify import unify_circuit_operators
from repro.devices import all_to_all
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.trotter import trotter_step


class TestDag:
    def test_dependencies_by_shared_qubit(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(4, seed=0)))
        dag = _DagState.from_operators(step.two_qubit_ops)
        # first gate has no predecessors
        assert not dag.predecessors[0]
        # gates sharing qubits are ordered
        for i, preds in enumerate(dag.predecessors):
            for p in preds:
                assert p < i
                assert set(dag.operators[p].pair) & set(
                    dag.operators[i].pair
                )

    def test_frontier_initial(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(6, seed=0)))
        dag = _DagState.from_operators(step.two_qubit_ops)
        frontier = dag.frontier()
        assert 0 in frontier
        used = set()
        for i in frontier:
            pair = set(dag.operators[i].pair)
            assert not (pair & used) or True  # frontier gates may share? no:
        # frontier gates must be pairwise independent on qubits
        qubits = [q for i in frontier for q in dag.operators[i].pair]
        assert len(qubits) == len(set(qubits))

    def test_lookahead_window(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(8, seed=0)))
        dag = _DagState.from_operators(step.two_qubit_ops)
        frontier = dag.frontier()
        ahead = dag.lookahead(frontier, 3)
        assert len(ahead) == 3
        assert not set(ahead) & set(frontier)


@pytest.mark.parametrize("compiler", [compile_tket_like, compile_qiskit_like],
                         ids=["tket", "qiskit"])
class TestBaselines:
    def test_all_gates_emitted(self, compiler, montreal_device):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compiler(step, montreal_device, "CNOT", seed=1)
        unified = unify_circuit_operators(step)
        app2q = sum(1 for g in result.app_circuit if g.name == "APP2Q")
        assert app2q == len(unified.two_qubit_ops)

    def test_no_dressing(self, compiler, montreal_device):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compiler(step, montreal_device, "CNOT", seed=1)
        assert result.n_dressed == 0

    def test_swaps_on_hardware_edges(self, compiler, montreal_device):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compiler(step, montreal_device, "CNOT", seed=1)
        for gate in result.app_circuit:
            if gate.n_qubits == 2:
                assert montreal_device.are_neighbors(*gate.qubits)

    def test_all_to_all_no_swaps(self, compiler):
        step = trotter_step(nnn_ising(6, seed=0))
        result = compiler(step, all_to_all(6), "CNOT", seed=0)
        assert result.n_swaps == 0

    def test_order_respected(self, compiler, line5):
        """Gates sharing qubits must appear in input order."""
        step = trotter_step(nnn_ising(5, seed=0))
        unified = unify_circuit_operators(step)
        result = compiler(step, line5, "CNOT", seed=0)
        input_order = {op.label: i for i, op in
                       enumerate(unified.two_qubit_ops)}
        # reconstruct logical order of executed gates
        executed = [g.meta["label"] for g in result.app_circuit
                    if g.name == "APP2Q"]
        for a_pos, a in enumerate(executed):
            for b in executed[a_pos + 1:]:
                ia, ib = input_order[a], input_order[b]
                qa = set(unified.two_qubit_ops[ia].pair)
                qb = set(unified.two_qubit_ops[ib].pair)
                if qa & qb:
                    assert ia < ib


class TestRelativeQuality:
    def test_2qan_beats_baselines_on_swaps(self, montreal_device):
        from repro.core.compiler import TwoQANCompiler
        step = trotter_step(nnn_heisenberg(12, seed=0))
        ours = TwoQANCompiler(montreal_device, "CNOT", seed=1).compile(step)
        tket = compile_tket_like(step, montreal_device, "CNOT", seed=1)
        qiskit = compile_qiskit_like(step, montreal_device, "CNOT", seed=1)
        assert ours.metrics.n_two_qubit_gates <= \
            tket.metrics.n_two_qubit_gates
        assert tket.metrics.n_two_qubit_gates < \
            qiskit.metrics.n_two_qubit_gates

    def test_lookahead_helps(self, montreal_device):
        step = trotter_step(nnn_heisenberg(12, seed=0))
        tket = compile_tket_like(step, montreal_device, "CNOT", seed=1)
        qiskit = compile_qiskit_like(step, montreal_device, "CNOT", seed=1)
        assert tket.n_swaps < qiskit.n_swaps
