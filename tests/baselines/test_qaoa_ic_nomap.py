"""Tests for the IC-QAOA-like compiler and the NoMap baseline."""

import pytest

from repro.baselines.nomap import compile_nomap
from repro.baselines.qaoa_ic import compile_ic_qaoa
from repro.core.compiler import TwoQANCompiler
from repro.devices import all_to_all
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph
from repro.hamiltonians.trotter import trotter_step


def qaoa_step(n=10, seed=0):
    g = random_regular_graph(3, n, seed=seed)
    return QAOAProblem(g, (0.35,), (-0.39,)).layer_step(0)


class TestICQAOA:
    def test_compiles_qaoa(self, montreal_device):
        result = compile_ic_qaoa(qaoa_step(), montreal_device, "CNOT", seed=0)
        assert result.metrics.n_two_qubit_gates > 0

    def test_all_operators_executed(self, montreal_device):
        step = qaoa_step()
        result = compile_ic_qaoa(step, montreal_device, "CNOT", seed=0)
        app2q = sum(1 for g in result.app_circuit if g.name == "APP2Q")
        assert app2q == len(step.two_qubit_ops)

    def test_accepts_ising(self, montreal_device):
        step = trotter_step(nnn_ising(8, seed=0))
        result = compile_ic_qaoa(step, montreal_device, "CNOT", seed=0)
        assert result.n_swaps >= 0

    def test_rejects_noncommuting(self, montreal_device):
        step = trotter_step(nnn_heisenberg(6, seed=0))
        with pytest.raises(ValueError):
            compile_ic_qaoa(step, montreal_device, "CNOT", seed=0)

    def test_worse_than_2qan_better_than_generic(self, montreal_device):
        from repro.baselines.order_respecting import compile_qiskit_like
        step = qaoa_step(12, seed=1)
        ours = TwoQANCompiler(montreal_device, "CNOT", seed=1).compile(step)
        ic = compile_ic_qaoa(step, montreal_device, "CNOT", seed=1)
        qiskit = compile_qiskit_like(step, montreal_device, "CNOT", seed=1)
        assert ours.metrics.n_two_qubit_gates <= \
            ic.metrics.n_two_qubit_gates
        assert ic.metrics.n_two_qubit_gates <= \
            qiskit.metrics.n_two_qubit_gates

    def test_no_dressing(self, montreal_device):
        result = compile_ic_qaoa(qaoa_step(), montreal_device, "CNOT")
        assert result.n_dressed == 0
        # every swap costs full 3 CNOTs: gates = 2*ops + 3*swaps
        step = qaoa_step()
        expected = 2 * len(step.two_qubit_ops) + 3 * result.n_swaps
        assert result.metrics.n_two_qubit_gates == expected


class TestNoMap:
    def test_zero_swaps(self):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compile_nomap(step, "CNOT")
        assert result.n_swaps == 0

    def test_heisenberg_gate_count(self):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compile_nomap(step, "CNOT")
        assert result.metrics.n_two_qubit_gates == (2 * 8 - 3) * 3

    def test_ising_gate_count(self):
        step = trotter_step(nnn_ising(8, seed=0))
        result = compile_nomap(step, "CNOT")
        assert result.metrics.n_two_qubit_gates == (2 * 8 - 3) * 2

    def test_unify_flag(self):
        step = trotter_step(nnn_heisenberg(6, seed=0))
        unified = compile_nomap(step, "CNOT", unify=True)
        raw = compile_nomap(step, "CNOT", unify=False)
        assert unified.metrics.n_two_qubit_gates < \
            raw.metrics.n_two_qubit_gates

    def test_depth_lower_bound(self):
        """Chain NN+NNN needs at least 4 two-qubit layers."""
        step = trotter_step(nnn_ising(12, seed=0))
        result = compile_nomap(step, "CNOT")
        assert result.metrics.two_qubit_depth >= 2 * 4


class TestPaulihedralLike:
    def test_1d_heisenberg_matches_published(self):
        """The idealised model reproduces the published 1-D number (87)."""
        from repro.baselines.paulihedral_like import compile_paulihedral_like
        from repro.hamiltonians.models import heisenberg_lattice
        step = trotter_step(heisenberg_lattice((30,), seed=0))
        result = compile_paulihedral_like(step)
        assert result.metrics.n_two_qubit_gates == 87

    def test_no_unifying_no_dressing(self):
        from repro.baselines.paulihedral_like import compile_paulihedral_like
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compile_paulihedral_like(step)
        assert result.n_swaps == 0
        # exponentials appear one per TERM, not one per pair
        app2q = sum(1 for g in result.app_circuit if g.name == "APP2Q")
        assert app2q == len(step.two_qubit_ops)

    def test_isolated_terms_cost_two(self):
        from repro.baselines.paulihedral_like import compile_paulihedral_like
        step = trotter_step(nnn_ising(8, seed=0))   # one ZZ per pair
        result = compile_paulihedral_like(step)
        assert result.metrics.n_two_qubit_gates == 2 * (2 * 8 - 3)

    def test_2qan_at_most_paulihedral_like(self):
        """2QAN with unifying matches the idealised bound on all-to-all."""
        from repro.baselines.paulihedral_like import compile_paulihedral_like
        from repro.core.compiler import TwoQANCompiler
        from repro.devices import all_to_all
        from repro.hamiltonians.models import heisenberg_lattice
        step = trotter_step(heisenberg_lattice((5, 6), seed=0))
        ours = TwoQANCompiler(all_to_all(30), "CNOT", seed=0,
                              mapping_trials=1).compile(step)
        ph = compile_paulihedral_like(step)
        assert ours.metrics.n_two_qubit_gates <= ph.metrics.n_two_qubit_gates
