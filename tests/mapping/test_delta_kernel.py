"""Equivalence tests for the vectorized QAP neighbourhood kernel.

Every vectorized entry point (`swap_delta_matrix`,
`relocate_delta_matrix`, `swap_delta_row`, the O(n^2) incremental
updates, and the vectorized single-move `swap_delta`) is pinned
*bit-for-bit* (`==`, not `isclose`) against the retained scalar
reference implementations on randomized integer-valued instances: the
flows and distances are integers, so every float64 sum is exact and the
vectorized evaluation order cannot change a single bit.  Covered
shapes: square instances (no spare locations), spare-qubit devices,
and zero-flow rows (isolated qubits).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.qap import QAPInstance


def random_instance(seed: int) -> tuple[QAPInstance, np.ndarray, np.ndarray]:
    """A random integer-valued instance, its assignment and free list.

    Every third seed makes the instance square (``m == n``, no free
    locations); every fifth zeroes one flow row/column (an isolated
    qubit).  Distances are symmetric positive integers with a zero
    diagonal -- the kernel needs no triangle inequality.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 9))
    m = n if seed % 3 == 0 else n + int(rng.integers(1, 6))
    flow = rng.integers(0, 7, size=(n, n)).astype(float)
    flow = flow + flow.T
    np.fill_diagonal(flow, 0.0)
    if seed % 5 == 0:
        isolated = int(rng.integers(n))
        flow[isolated, :] = 0.0
        flow[:, isolated] = 0.0
    distance = rng.integers(1, 10, size=(m, m)).astype(float)
    distance = distance + distance.T
    np.fill_diagonal(distance, 0.0)
    instance = QAPInstance(flow, distance)
    assignment = np.array(rng.permutation(m)[:n])
    free = np.array(sorted(set(range(m)) - set(assignment.tolist())),
                    dtype=int)
    return instance, assignment, free


class TestSwapDeltas:
    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_matrix_matches_scalar_reference(self, seed):
        instance, assignment, _ = random_instance(seed)
        n = instance.n_logical
        matrix = instance.swap_delta_matrix(assignment)
        for i in range(n):
            assert matrix[i, i] == 0.0
            for j in range(n):
                if i == j:
                    continue
                reference = instance.swap_delta_reference(assignment, i, j)
                assert matrix[i, j] == reference      # bit-for-bit

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_single_probe_matches_scalar_reference(self, seed):
        instance, assignment, _ = random_instance(seed)
        n = instance.n_logical
        rng = np.random.default_rng(seed + 1)
        i, j = (int(q) for q in rng.choice(n, size=2, replace=False))
        assert instance.swap_delta(assignment, i, j) == \
            instance.swap_delta_reference(assignment, i, j)

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_row_matches_matrix(self, seed):
        instance, assignment, _ = random_instance(seed)
        matrix = instance.swap_delta_matrix(assignment)
        for i in range(instance.n_logical):
            assert np.array_equal(instance.swap_delta_row(assignment, i),
                                  matrix[i])


class TestRelocateDeltas:
    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_matrix_matches_scalar_reference(self, seed):
        instance, assignment, free = random_instance(seed)
        matrix = instance.relocate_delta_matrix(assignment, free)
        assert matrix.shape == (instance.n_logical, len(free))
        for i in range(instance.n_logical):
            for idx, loc in enumerate(free):
                reference = instance.relocate_delta_reference(
                    assignment, i, int(loc))
                assert matrix[i, idx] == reference    # bit-for-bit


class TestIncrementalUpdates:
    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_swap_update_walk_matches_fresh_matrix(self, seed):
        """A table maintained across a random swap walk never drifts."""
        instance, assignment, _ = random_instance(seed)
        n = instance.n_logical
        rng = np.random.default_rng(seed + 2)
        table = instance.swap_delta_matrix(assignment)
        for _ in range(6):
            i, j = (int(q) for q in rng.choice(n, size=2, replace=False))
            assignment[i], assignment[j] = assignment[j], assignment[i]
            instance.update_deltas_after_swap(table, assignment, i, j)
            assert np.array_equal(table,
                                  instance.swap_delta_matrix(assignment))

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_relocate_update_walk_matches_fresh_matrix(self, seed):
        instance, assignment, free = random_instance(seed)
        if len(free) == 0:
            return                         # square instance: no relocations
        n = instance.n_logical
        rng = np.random.default_rng(seed + 3)
        free = list(free)
        table = instance.swap_delta_matrix(assignment)
        for _ in range(6):
            i = int(rng.integers(n))
            loc_idx = int(rng.integers(len(free)))
            old = int(assignment[i])
            assignment[i] = free[loc_idx]
            free[loc_idx] = old
            instance.update_deltas_after_relocate(table, assignment, i, old)
            assert np.array_equal(table,
                                  instance.swap_delta_matrix(assignment))

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_cost_agrees_with_applied_deltas(self, seed):
        """Accumulating table deltas reproduces the recomputed cost."""
        instance, assignment, _ = random_instance(seed)
        n = instance.n_logical
        rng = np.random.default_rng(seed + 4)
        cost = instance.cost(assignment)
        table = instance.swap_delta_matrix(assignment)
        for _ in range(5):
            i, j = (int(q) for q in rng.choice(n, size=2, replace=False))
            cost += float(table[i, j])
            assignment[i], assignment[j] = assignment[j], assignment[i]
            instance.update_deltas_after_swap(table, assignment, i, j)
            assert cost == instance.cost(assignment)  # exact, integers


class TestGraspLocalSearchEquivalence:
    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_descent_path_matches_scalar_first_improvement(self, seed):
        """The vectorized first-improvement descent replays the old
        scalar scan exactly: same probe order, same applied swaps, same
        final assignment."""
        from repro.mapping.grasp import _local_search

        instance, assignment, _ = random_instance(seed)
        n = instance.n_logical

        reference = assignment.copy()
        ref_cost = instance.cost(reference)
        improved = True
        while improved:                      # the pre-vectorization loop
            improved = False
            for i in range(n):
                for j in range(i + 1, n):
                    delta = instance.swap_delta_reference(reference, i, j)
                    if delta < -1e-12:
                        reference[i], reference[j] = (
                            reference[j], reference[i]
                        )
                        ref_cost += delta
                        improved = True

        result, cost = _local_search(instance, assignment.copy())
        assert np.array_equal(result, reference)
        assert cost == float(ref_cost)
