"""Tests for the Tabu-search and annealing QAP solvers and placements."""

import numpy as np
import pytest

from repro.devices import grid, line, montreal
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.trotter import trotter_step
from repro.mapping.annealing import simulated_annealing
from repro.mapping.placement import (
    best_of_k_mapping,
    identity_mapping,
    line_placement,
    random_mapping,
)
from repro.mapping.qap import qap_from_problem
from repro.mapping.tabu import tabu_search


@pytest.fixture
def chain_instance():
    """A chain problem on a line device: identity is optimal."""
    step = trotter_step(nnn_ising(8, seed=0))
    return qap_from_problem(step, line(8))


@pytest.fixture
def montreal_instance():
    step = trotter_step(nnn_heisenberg(10, seed=0))
    return qap_from_problem(step, montreal())


class TestTabu:
    def test_finds_line_optimum(self, chain_instance):
        result = tabu_search(chain_instance, seed=0)
        identity_cost = chain_instance.cost(np.arange(8))
        assert result.cost <= identity_cost + 1e-9

    def test_beats_random(self, montreal_instance):
        result = tabu_search(montreal_instance, seed=0)
        rng = np.random.default_rng(0)
        random_costs = [
            montreal_instance.cost(
                np.array(rng.permutation(27)[:10])
            )
            for _ in range(20)
        ]
        assert result.cost < np.mean(random_costs)

    def test_assignment_injective(self, montreal_instance):
        result = tabu_search(montreal_instance, seed=1)
        assert len(set(result.assignment.tolist())) == 10

    def test_uses_spare_qubits(self, montreal_instance):
        """Relocation moves may leave some physical qubits unused."""
        result = tabu_search(montreal_instance, seed=2)
        assert result.assignment.max() <= 26

    def test_reported_cost_matches(self, montreal_instance):
        result = tabu_search(montreal_instance, seed=3)
        assert np.isclose(
            result.cost, montreal_instance.cost(result.assignment)
        )

    def test_initial_assignment_respected(self, chain_instance):
        initial = np.arange(8)
        result = tabu_search(chain_instance, seed=0, initial=initial)
        assert result.cost <= chain_instance.cost(initial)

    def test_bad_initial_rejected(self, chain_instance):
        with pytest.raises(ValueError):
            tabu_search(chain_instance, initial=np.zeros(8, dtype=int))

    def test_deterministic_given_seed(self, montreal_instance):
        a = tabu_search(montreal_instance, seed=9)
        b = tabu_search(montreal_instance, seed=9)
        assert np.array_equal(a.assignment, b.assignment)

    def test_full_run_reports_max_iterations(self, montreal_instance):
        result = tabu_search(montreal_instance, seed=0, max_iterations=37)
        assert result.iterations == 37

    def test_early_break_reports_actual_iterations(self):
        """Regression: an exhausted neighbourhood (every move tabu, no
        aspiration) used to report ``max_iterations`` even though the
        search stopped after a couple of iterations."""
        from repro.mapping.qap import QAPInstance

        instance = QAPInstance(np.zeros((2, 2)),
                               np.array([[0.0, 1.0], [1.0, 0.0]]))
        result = tabu_search(instance, seed=0, max_iterations=500)
        # one zero-delta swap, then the only move is tabu and cannot
        # aspire: the search stops on the second iteration
        assert result.iterations == 2


class TestAnnealing:
    def test_beats_random(self, montreal_instance):
        result = simulated_annealing(montreal_instance, seed=0)
        rng = np.random.default_rng(1)
        random_costs = [
            montreal_instance.cost(np.array(rng.permutation(27)[:10]))
            for _ in range(20)
        ]
        assert result.cost < np.mean(random_costs)

    def test_cost_consistent(self, chain_instance):
        result = simulated_annealing(chain_instance, seed=0)
        assert np.isclose(
            result.cost, chain_instance.cost(result.assignment)
        )


class TestPlacements:
    def test_identity(self):
        assert np.array_equal(identity_mapping(4, line(6)), np.arange(4))

    def test_identity_too_big(self):
        with pytest.raises(ValueError):
            identity_mapping(7, line(6))

    def test_random_injective(self):
        mapping = random_mapping(10, montreal(), seed=4)
        assert len(set(mapping.tolist())) == 10

    def test_line_placement_path(self):
        device = montreal()
        placement = line_placement(10, device)
        assert len(set(placement.tolist())) == 10
        # consecutive placements should mostly be adjacent
        adjacent = sum(
            device.are_neighbors(int(placement[i]), int(placement[i + 1]))
            for i in range(9)
        )
        assert adjacent >= 7

    def test_line_placement_full_device(self):
        placement = line_placement(6, grid(2, 3))
        assert len(set(placement.tolist())) == 6

    def test_best_of_k_improves(self, montreal_instance):
        single = tabu_search(montreal_instance, seed=0)
        best = best_of_k_mapping(montreal_instance, k=5, seed=0)
        assert best.cost <= single.cost


class TestPlacementEdgeCases:
    def test_line_placement_on_star_device(self):
        """A star graph defeats path extension; the fallback must fill in."""
        from repro.devices.topology import Device
        star = Device("star", 6, tuple((0, i) for i in range(1, 6)))
        placement = line_placement(6, star)
        assert len(set(placement.tolist())) == 6

    def test_line_placement_partial(self):
        device = montreal()
        placement = line_placement(3, device)
        assert len(placement) == 3

    def test_best_of_k_with_alternate_solver(self):
        from repro.mapping.grasp import grasp_search
        step = trotter_step(nnn_ising(6, seed=0))
        instance = qap_from_problem(step, montreal())
        result = best_of_k_mapping(instance, k=2, seed=0,
                                   solver=grasp_search, iterations=3)
        assert len(set(result.assignment.tolist())) == 6
