"""The CI mapping perf smoke stays runnable and honest.

The strict >= 3x timing assertion lives in the dedicated CI job
(`python -m repro.mapping.perf_smoke`); here we only pin what must
never flake: the smoke runs, the two paths agree bit-for-bit, and both
timings are real measurements.
"""

from repro.mapping import perf_smoke


def test_measure_paths_agree_bit_for_bit():
    vectorized_s, scalar_s, identical = perf_smoke.measure(rounds=1)
    assert identical
    assert vectorized_s > 0
    assert scalar_s > 0


def test_main_runs_end_to_end(capsys, monkeypatch):
    """main() exercised with the timing bar lowered to zero: the strict
    >= 3x assertion belongs to the dedicated CI job, not to tier-1,
    where a contended runner could flake it."""
    monkeypatch.setattr(perf_smoke, "MIN_RATIO", 0.0)
    assert perf_smoke.main() == 0
    assert "ratio" in capsys.readouterr().out
