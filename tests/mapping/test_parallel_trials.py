"""Parallel best-of-k mapping must be bit-identical to the serial path."""

import numpy as np
import pytest

from repro.analysis.harness import build_step
from repro.core.registry import get_compiler
from repro.core.unify import unify_circuit_operators
from repro.devices.library import montreal
from repro.mapping.placement import best_of_k_mapping
from repro.mapping.qap import qap_from_problem


@pytest.fixture(scope="module")
def instance():
    step = unify_circuit_operators(build_step("NNN_Heisenberg", 10, 2))
    return qap_from_problem(step, montreal())


class TestParallelTrials:
    def test_bit_identical_to_serial(self, instance):
        serial = best_of_k_mapping(instance, k=5, seed=3)
        parallel = best_of_k_mapping(instance, k=5, seed=3, jobs=2)
        assert serial.cost == parallel.cost
        assert np.array_equal(serial.assignment, parallel.assignment)

    def test_jobs_exceeding_trials(self, instance):
        serial = best_of_k_mapping(instance, k=2, seed=0)
        parallel = best_of_k_mapping(instance, k=2, seed=0, jobs=8)
        assert serial.cost == parallel.cost
        assert np.array_equal(serial.assignment, parallel.assignment)

    def test_single_trial_stays_serial(self, instance):
        # k=1 must not pay pool startup; result identical either way
        serial = best_of_k_mapping(instance, k=1, seed=7)
        parallel = best_of_k_mapping(instance, k=1, seed=7, jobs=4)
        assert np.array_equal(serial.assignment, parallel.assignment)


class TestMappingJobsKnob:
    def test_compiler_metrics_unchanged_by_jobs(self):
        step = build_step("NNN_Ising", 8, 1)
        serial = get_compiler("2qan", device=montreal(), gateset="CNOT",
                              seed=1).compile(step)
        fanned = get_compiler("2qan", device=montreal(), gateset="CNOT",
                              seed=1, mapping_jobs=2).compile(step)
        assert fanned.metrics == serial.metrics
        assert fanned.qap_cost == serial.qap_cost
