"""Tests for the QAP formulation of qubit mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import grid, line, montreal
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.trotter import trotter_step
from repro.mapping.qap import QAPInstance, qap_cost, qap_from_problem


def small_instance():
    flow = np.array([[0.0, 2.0, 0.0], [2.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
    distance = line(3).distance
    return QAPInstance(flow, distance)


class TestInstance:
    def test_validation_square(self):
        with pytest.raises(ValueError):
            QAPInstance(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_validation_symmetric(self):
        flow = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            QAPInstance(flow, np.zeros((2, 2)))

    def test_too_many_logical(self):
        with pytest.raises(ValueError):
            QAPInstance(np.zeros((4, 4)), np.zeros((3, 3)))

    def test_cost_identity(self):
        inst = small_instance()
        # identity: pairs (0,1) at distance 1 flow 2, (1,2) dist 1 flow 1
        assert inst.cost(np.array([0, 1, 2])) == 2 * (2 + 1)

    def test_cost_bad_assignment(self):
        inst = small_instance()
        # put interacting qubits far apart
        assert inst.cost(np.array([0, 2, 1])) > inst.cost(
            np.array([0, 1, 2])
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_swap_delta_matches_recomputation(self, seed):
        rng = np.random.default_rng(seed)
        step = trotter_step(nnn_heisenberg(6, seed=0))
        inst = qap_from_problem(step, grid(2, 3))
        assignment = rng.permutation(6)
        i, j = rng.choice(6, size=2, replace=False)
        delta = inst.swap_delta(assignment, int(i), int(j))
        swapped = assignment.copy()
        swapped[i], swapped[j] = swapped[j], swapped[i]
        assert np.isclose(delta, inst.cost(swapped) - inst.cost(assignment))


class TestFromProblem:
    def test_flow_counts_interactions(self):
        step = trotter_step(nnn_heisenberg(4, seed=0))
        inst = qap_from_problem(step, montreal())
        # three Pauli terms per pair
        assert inst.flow[0, 1] == 3
        assert inst.flow[1, 0] == 3

    def test_too_large_problem(self):
        step = trotter_step(nnn_ising(7, seed=0))
        with pytest.raises(ValueError):
            qap_from_problem(step, grid(2, 3))

    def test_qap_cost_convenience(self):
        step = trotter_step(nnn_ising(4, seed=0))
        cost = qap_cost(step, line(4), np.arange(4))
        assert cost > 0
