"""REPRO_CACHE_STRICT: the dynamic twin of ``repro lint`` RPR001.

With the env var set (the whole suite runs with it -- see the autouse
fixture in ``tests/conftest.py``), ``CachedPass`` wraps the context in
a read-auditing proxy on the miss path, so an undeclared context read
(an under-scoped cache key) raises at the offending access instead of
silently serving stale artifacts on some later warm run.
"""

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.analysis.harness import build_step
from repro.cache.cached import (
    CachedPass,
    UndeclaredContextReadError,
    compile_cached,
    strict_reads_enabled,
)
from repro.cache.store import ArtifactCache
from repro.core.pipeline import CompilationContext
from repro.core.registry import get_compiler
from repro.devices.library import aspen
from repro.synthesis.gateset import get_gateset


@dataclass(frozen=True)
class SneakyPass:
    """Reads ``seed`` without declaring it -- the cache-unsoundness bug."""

    name: str = "sneaky"
    reads: ClassVar[tuple[str, ...]] = ("step",)
    writes: ClassVar[tuple[str, ...]] = ("working",)

    def run(self, ctx):
        ctx.working = (ctx.step, ctx.seed)
        return ctx


@dataclass(frozen=True)
class HonestPass:
    name: str = "honest"
    reads: ClassVar[tuple[str, ...]] = ("step", "seed")
    writes: ClassVar[tuple[str, ...]] = ("working",)

    def run(self, ctx):
        ctx.working = (ctx.step, ctx.seed)
        ctx.timings["honest_extra"] = 0.0  # infra: always allowed
        return ctx


def _context(seed=3):
    return CompilationContext(step=build_step("NNN_Ising", 4, 0),
                              gateset=get_gateset("CNOT"),
                              device=aspen(), seed=seed)


class TestStrictProxy:
    def test_env_fixture_is_active(self):
        assert strict_reads_enabled()

    def test_undeclared_read_raises_at_the_access(self):
        cached = CachedPass(SneakyPass(), ArtifactCache())
        with pytest.raises(UndeclaredContextReadError, match="'seed'"):
            cached.run(_context())

    def test_declared_reads_run_clean_and_cache(self):
        cached = CachedPass(HonestPass(), ArtifactCache())
        ctx = cached.run(_context())
        assert ctx.working == (ctx.step, 3)
        assert ctx.cache_events == {"honest": "miss"}

    def test_getattr_with_default_cannot_swallow_the_violation(self):
        """The error is deliberately not an AttributeError: a pass
        probing with getattr(ctx, name, default) must still fail."""

        @dataclass(frozen=True)
        class ProbingPass:
            name: str = "probing"
            reads: ClassVar[tuple[str, ...]] = ("step",)
            writes: ClassVar[tuple[str, ...]] = ("working",)

            def run(self, ctx):
                ctx.working = getattr(ctx, "seed", None)
                return ctx

        cached = CachedPass(ProbingPass(), ArtifactCache())
        with pytest.raises(UndeclaredContextReadError):
            cached.run(_context())

    def test_require_is_audited_too(self):
        @dataclass(frozen=True)
        class RequirePass:
            name: str = "requiring"
            reads: ClassVar[tuple[str, ...]] = ("step",)
            writes: ClassVar[tuple[str, ...]] = ("working",)

            def run(self, ctx):
                ctx.working = ctx.require("device")
                return ctx

        cached = CachedPass(RequirePass(), ArtifactCache())
        with pytest.raises(UndeclaredContextReadError, match="'device'"):
            cached.run(_context())

    def test_disabled_env_skips_the_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_STRICT", "0")
        assert not strict_reads_enabled()
        cached = CachedPass(SneakyPass(), ArtifactCache())
        ctx = cached.run(_context())
        assert ctx.working[1] == 3

    def test_hit_path_never_wraps(self):
        """A warm hit applies the snapshot without running the pass, so
        even a sneaky pass is safe once its (wrongly-keyed) artifact is
        stored; the guard exists to stop that artifact being stored."""
        cache = ArtifactCache()
        cached = CachedPass(HonestPass(), cache)
        cached.run(_context())
        warm = cached.run(_context())
        assert warm.cache_events == {"honest": "hit"}


class TestWholePipelineUnderStrict:
    def test_full_2qan_compile_is_strict_clean(self):
        """Every built-in pass declaration survives a real compile with
        the read guard on (the suite-wide autouse fixture makes this
        the default, but pin it explicitly here)."""
        cache = ArtifactCache()
        compiler = get_compiler("2qan", device=aspen(), gateset="CNOT",
                                seed=1)
        step = build_step("NNN_Ising", 6, 3)
        cold = compile_cached(compiler, step, cache)
        warm = compile_cached(compiler, step, cache)
        assert cold.metrics == warm.metrics
