"""Tests for canonical compilation-value fingerprints."""

import numpy as np
import pytest

from repro.analysis.harness import build_step
from repro.cache.fingerprint import (
    fingerprint,
    fingerprint_circuit,
    fingerprint_device,
    fingerprint_gateset,
    fingerprint_pass,
    fingerprint_step,
)
from repro.core.pipeline import MapPass, RoutePass, UnifyPass
from repro.devices.library import aspen, montreal
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.synthesis.gateset import get_gateset


class TestScalars:
    def test_stable(self):
        assert fingerprint(1, "a", 2.5) == fingerprint(1, "a", 2.5)

    def test_type_distinguished(self):
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint(None) != fingerprint(0)

    def test_float_rounding(self):
        assert fingerprint(0.1 + 0.2) == fingerprint(0.3)

    def test_dict_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_unknown_type_fails_loudly(self):
        class Mystery:
            pass

        with pytest.raises(TypeError, match="Mystery"):
            fingerprint(Mystery())


class TestArrays:
    def test_content_addressed(self):
        a = np.arange(6.0).reshape(2, 3)
        assert fingerprint(a) == fingerprint(a.copy())

    def test_shape_matters(self):
        a = np.arange(6.0)
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))

    def test_numerical_noise_ignored(self):
        a = np.array([1.0, 2.0])
        assert fingerprint(a) == fingerprint(a + 1e-14)

    def test_real_difference_detected(self):
        assert fingerprint(np.array([1.0])) != fingerprint(np.array([1.1]))


class TestCompilationValues:
    def test_step_deterministic_across_builds(self):
        a = build_step("NNN_Ising", 6, 3)
        b = build_step("NNN_Ising", 6, 3)
        assert fingerprint_step(a) == fingerprint_step(b)

    def test_step_distinguishes_seed(self):
        assert fingerprint_step(build_step("NNN_Ising", 6, 3)) != \
            fingerprint_step(build_step("NNN_Ising", 6, 4))

    def test_device(self):
        assert fingerprint_device(montreal()) == fingerprint_device(montreal())
        assert fingerprint_device(montreal()) != fingerprint_device(aspen())

    def test_device_skips_derived_caches(self):
        warmed = montreal()
        warmed.distance                  # populate the Floyd-Warshall cache
        assert fingerprint_device(warmed) == fingerprint_device(montreal())

    def test_gateset(self):
        assert fingerprint_gateset(get_gateset("CNOT")) == \
            fingerprint_gateset(get_gateset("CNOT"))
        assert fingerprint_gateset(get_gateset("CNOT")) != \
            fingerprint_gateset(get_gateset("CZ"))

    def test_circuit_gate_order_matters(self):
        a = Circuit(2, [Gate("H", (0,)), Gate("CNOT", (0, 1))])
        b = Circuit(2, [Gate("CNOT", (0, 1)), Gate("H", (0,))])
        assert fingerprint_circuit(a) != fingerprint_circuit(b)

    def test_circuit_meta_ignored(self):
        a = Circuit(1, [Gate("H", (0,))])
        b = Circuit(1, [Gate("H", (0,), meta={"label": "x"})])
        assert fingerprint_circuit(a) == fingerprint_circuit(b)


class TestPassFingerprints:
    def test_configuration_matters(self):
        assert fingerprint_pass(UnifyPass()) != \
            fingerprint_pass(UnifyPass(enabled=False))
        assert fingerprint_pass(MapPass(trials=5)) != \
            fingerprint_pass(MapPass(trials=1))

    def test_class_matters(self):
        assert fingerprint_pass(UnifyPass()) != fingerprint_pass(RoutePass())

    def test_execution_knobs_excluded(self):
        """jobs cannot change MapPass output, so it must not fragment
        the cache."""
        assert fingerprint_pass(MapPass(jobs=1)) == \
            fingerprint_pass(MapPass(jobs=8))

    def test_non_dataclass_pass(self):
        class Custom:
            name = "custom"

            def run(self, ctx):
                return ctx

        assert fingerprint_pass(Custom()) == fingerprint_pass(Custom())


class TestSymbolicFingerprints:
    def test_symbolic_step_hashes_parameter_names_not_values(self):
        """All bindings of one structure share the structural cache
        prefix: the symbolic step's fingerprint must be independent of
        any angle values (there are none) but sensitive to names."""
        from repro.analysis.harness import build_symbolic_step

        a = build_symbolic_step("QAOA-REG-3", 6, 0)
        b = build_symbolic_step("QAOA-REG-3", 6, 0)
        assert fingerprint_step(a) == fingerprint_step(b)

    def test_param_names_distinguished(self):
        from repro.hamiltonians.models import nnn_ising
        from repro.hamiltonians.trotter import trotter_step
        from repro.quantum.params import Param

        a = trotter_step(nnn_ising(6, seed=0), t=Param("t"))
        b = trotter_step(nnn_ising(6, seed=0), t=Param("tau"))
        assert fingerprint_step(a) != fingerprint_step(b)

    def test_param_affine_coefficients_distinguished(self):
        from repro.hamiltonians.models import nnn_ising
        from repro.hamiltonians.trotter import trotter_step
        from repro.quantum.params import Param

        a = trotter_step(nnn_ising(6, seed=0), t=Param("t"))
        b = trotter_step(nnn_ising(6, seed=0), t=2 * Param("t"))
        assert fingerprint_step(a) != fingerprint_step(b)

    def test_symbolic_differs_from_concrete(self):
        from repro.hamiltonians.models import nnn_ising
        from repro.hamiltonians.trotter import trotter_step
        from repro.quantum.params import Param

        symbolic = trotter_step(nnn_ising(6, seed=0), t=Param("t"))
        concrete = trotter_step(nnn_ising(6, seed=0), t=1.0)
        assert fingerprint_step(symbolic) != fingerprint_step(concrete)
        assert fingerprint_step(symbolic.bind({"t": 1.0})) == \
            fingerprint_step(concrete)

    def test_symbolic_circuit_fingerprints(self):
        from repro.quantum.params import Param, PauliExponential, \
            SymbolicUnitary

        def circuit(name):
            factors = (PauliExponential("zz", "", -Param(name)),)
            c = Circuit(2)
            c.append(Gate("UNIFIED", (0, 1),
                          symbolic=SymbolicUnitary(factors)))
            return c

        assert fingerprint_circuit(circuit("gamma")) == \
            fingerprint_circuit(circuit("gamma"))
        assert fingerprint_circuit(circuit("gamma")) != \
            fingerprint_circuit(circuit("beta"))
