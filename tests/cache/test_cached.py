"""Tests for CachedPass / CachedPipeline: skip-on-hit, bit-identical."""

import numpy as np
import pytest

from repro.analysis.harness import build_step
from repro.cache.cached import CachedPipeline, compile_cached, context_key
from repro.cache.store import ArtifactCache
from repro.core.pipeline import (
    CompilationContext,
    MapPass,
    UnifyPass,
    run_pipeline,
)
from repro.core.registry import get_compiler
from repro.devices.library import aspen, montreal
from repro.synthesis.gateset import get_gateset


@pytest.fixture()
def step():
    return build_step("NNN_Ising", 6, 3)


@pytest.fixture()
def device():
    return aspen()


def _context(step, device, gateset="CNOT", seed=1):
    return CompilationContext(step=step, gateset=get_gateset(gateset),
                              device=device, seed=seed)


class TestContextKey:
    def test_deterministic(self, step, device):
        a = context_key(UnifyPass(), _context(step, device))
        b = context_key(UnifyPass(), _context(step, device))
        assert a == b

    def test_input_sensitivity(self, step, device):
        other = build_step("NNN_Ising", 6, 4)
        assert context_key(UnifyPass(), _context(step, device)) != \
            context_key(UnifyPass(), _context(other, device))

    def test_reads_scoping_shares_across_gatesets(self, step, device):
        """Passes that never look at the gate set share artifacts
        across bases -- the cross-gateset prefix-sharing property."""
        cnot = _context(step, device, gateset="CNOT")
        cz = _context(step, device, gateset="CZ")
        assert context_key(UnifyPass(), cnot) == context_key(UnifyPass(), cz)

    def test_undeclared_pass_keys_on_everything(self, step, device):
        class Opaque:
            name = "opaque"

            def run(self, ctx):
                return ctx

        cnot = _context(step, device, gateset="CNOT")
        cz = _context(step, device, gateset="CZ")
        assert context_key(Opaque(), cnot) != context_key(Opaque(), cz)

    def test_mapping_jobs_do_not_change_key(self, step, device):
        ctx = _context(step, device)
        ctx.working = ctx.step
        assert context_key(MapPass(jobs=1), ctx) == \
            context_key(MapPass(jobs=4), ctx)


class TestCachedPipeline:
    def test_cold_then_warm_bit_identical(self, step, device):
        cache = ArtifactCache()
        compiler = get_compiler("2qan", device=device, gateset="CNOT",
                                seed=1)
        plain = compiler.compile(step)
        cold = compile_cached(compiler, step, cache)
        warm = compile_cached(compiler, step, cache)
        assert set(cold.cache_events.values()) == {"miss"}
        assert set(warm.cache_events.values()) == {"hit"}
        for result in (cold, warm):
            assert result.metrics == plain.metrics
            assert result.qap_cost == plain.qap_cost
            assert result.n_swaps == plain.n_swaps
            assert np.array_equal(
                result.final_map.logical_to_physical,
                plain.final_map.logical_to_physical,
            )

    def test_one_timing_entry_per_pass_even_on_hits(self, step, device):
        cache = ArtifactCache()
        compiler = get_compiler("2qan", device=device, gateset="CNOT",
                                seed=1)
        compile_cached(compiler, step, cache)
        warm = compile_cached(compiler, step, cache)
        assert set(warm.timings) == set(compiler.build_pipeline().names())

    def test_prefix_shared_across_compilers(self, step, device):
        """2qan and tket share the Unify artifact of the same problem."""
        cache = ArtifactCache()
        twoqan = get_compiler("2qan", device=device, gateset="CNOT", seed=1)
        tket = get_compiler("tket", device=device, gateset="CNOT", seed=1)
        compile_cached(twoqan, step, cache)
        second = compile_cached(tket, step, cache)
        assert second.cache_events["unify"] == "hit"
        assert second.cache_events["routing"] == "miss"

    def test_prefix_shared_across_gatesets(self, step, device):
        """Same compiler, different basis: everything up to decomposition
        replays from the cache."""
        cache = ArtifactCache()
        cnot = get_compiler("2qan", device=device, gateset="CNOT", seed=1)
        cz = get_compiler("2qan", device=device, gateset="CZ", seed=1)
        compile_cached(cnot, step, cache)
        second = compile_cached(cz, step, cache)
        assert second.cache_events == {
            "unify": "hit", "mapping": "hit", "routing": "hit",
            "scheduling": "hit", "binding": "hit",
            "decomposition": "miss",
        }

    def test_config_change_invalidates(self, step, device):
        cache = ArtifactCache()
        default = get_compiler("2qan", device=device, gateset="CNOT", seed=1)
        one_trial = get_compiler("2qan", device=device, gateset="CNOT",
                                 seed=1, mapping_trials=1)
        compile_cached(default, step, cache)
        second = compile_cached(one_trial, step, cache)
        assert second.cache_events["unify"] == "hit"
        assert second.cache_events["mapping"] == "miss"

    def test_seed_change_invalidates(self, step, device):
        cache = ArtifactCache()
        compile_cached(get_compiler("2qan", device=device, gateset="CNOT",
                                    seed=1), step, cache)
        second = compile_cached(
            get_compiler("2qan", device=device, gateset="CNOT", seed=2),
            step, cache)
        assert second.cache_events["unify"] == "hit"   # unify ignores seed
        assert second.cache_events["mapping"] == "miss"

    def test_disk_cache_shared_across_instances(self, step, device,
                                                tmp_path):
        compiler = get_compiler("2qan", device=device, gateset="CNOT",
                                seed=1)
        cold = compile_cached(compiler, step, ArtifactCache(tmp_path))
        warm = compile_cached(compiler, step, ArtifactCache(tmp_path))
        assert set(warm.cache_events.values()) == {"hit"}
        assert warm.metrics == cold.metrics

    def test_hit_result_is_isolated_from_later_mutation(self, step, device):
        """Mutating a served circuit must not corrupt the cache."""
        cache = ArtifactCache()
        compiler = get_compiler("2qan", device=device, gateset="CNOT",
                                seed=1)
        cold = compile_cached(compiler, step, cache)
        served = compile_cached(compiler, step, cache)
        served.circuit.gates.clear()
        again = compile_cached(compiler, step, cache)
        assert len(again.circuit.gates) == len(cold.circuit.gates)

    def test_works_as_plain_pipeline(self, step, device):
        """CachedPipeline is a PassPipeline: run_pipeline accepts it."""
        cache = ArtifactCache()
        compiler = get_compiler("2qan", device=device, gateset="CNOT",
                                seed=1)
        pipeline = CachedPipeline(compiler.build_pipeline(), cache)
        result = run_pipeline(pipeline, step, gateset="CNOT",
                              device=device, seed=1)
        assert result.metrics == compiler.compile(step).metrics

    def test_undeclared_write_fails_loudly(self, step, device):
        """A wrong writes declaration would make warm hits serve
        partial snapshots; the miss path must reject it instead."""
        import numpy as np

        from repro.core.pipeline import PassPipeline

        class Sneaky:
            name = "sneaky"
            writes = ("working",)        # lies: also writes assignment

            def run(self, ctx):
                ctx.working = ctx.step
                ctx.assignment = np.arange(ctx.step.n_qubits)
                return ctx

        pipeline = CachedPipeline(PassPipeline([Sneaky()]), ArtifactCache())
        with pytest.raises(ValueError, match="assignment"):
            pipeline.run(_context(step, device))

    def test_unwritable_cache_directory_degrades_gracefully(self, step,
                                                            device,
                                                            tmp_path):
        """The cache is an optimization: a broken disk layer must not
        abort compilations that succeed."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the cache dir should go")
        cache = ArtifactCache(blocker / "cache")
        compiler = get_compiler("2qan", device=device, gateset="CNOT",
                                seed=1)
        result = compile_cached(compiler, step, cache)
        warm = compile_cached(compiler, step, cache)   # memory layer
        assert warm.metrics == result.metrics
        assert set(warm.cache_events.values()) == {"hit"}

    def test_custom_pass_returning_none_fails_loudly(self, step, device):
        class Broken:
            name = "broken"

            def run(self, ctx):
                return None

        from repro.core.pipeline import PassPipeline

        pipeline = CachedPipeline(PassPipeline([Broken()]), ArtifactCache())
        with pytest.raises(TypeError, match="broken"):
            pipeline.run(_context(step, device))


class TestCachedMultiDevice:
    def test_device_change_invalidates_mapping(self, step):
        cache = ArtifactCache()
        compile_cached(get_compiler("2qan", device=aspen(), gateset="CNOT",
                                    seed=1), step, cache)
        second = compile_cached(
            get_compiler("2qan", device=montreal(), gateset="CNOT", seed=1),
            step, cache)
        assert second.cache_events["unify"] == "hit"
        assert second.cache_events["mapping"] == "miss"
