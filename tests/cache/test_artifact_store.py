"""Tests for the artifact stores (memory LRU, disk, tiered cache)."""

import pickle

from repro.cache.store import (
    ArtifactCache,
    DiskArtifactStore,
    MemoryArtifactStore,
    process_cache,
    salted_directory,
)


class TestMemoryStore:
    def test_roundtrip(self):
        store = MemoryArtifactStore()
        store.put("k", b"payload")
        assert store.get("k") == b"payload"
        assert store.get("missing") is None

    def test_lru_eviction(self):
        store = MemoryArtifactStore(limit=2)
        store.put("a", b"1")
        store.put("b", b"2")
        store.get("a")                   # refresh a
        store.put("c", b"3")             # evicts b, the LRU entry
        assert "a" in store and "c" in store
        assert "b" not in store

    def test_zero_limit_stores_nothing(self):
        store = MemoryArtifactStore(limit=0)
        store.put("a", b"1")
        assert len(store) == 0


class TestDiskStore:
    def test_roundtrip(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("abcd1234", b"payload")
        assert store.get("abcd1234") == b"payload"
        assert store.get("ffff0000") is None
        assert len(store) == 1

    def test_sharded_layout(self, tmp_path):
        DiskArtifactStore(tmp_path).put("abcd1234", b"x")
        assert (tmp_path / "ab" / "abcd1234.pkl").is_file()

    def test_append_only(self, tmp_path):
        """An existing key is never rewritten: same key, same content."""
        store = DiskArtifactStore(tmp_path)
        store.put("abcd1234", b"first")
        store.put("abcd1234", b"second")
        assert store.get("abcd1234") == b"first"

    def test_no_temp_files_left(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("abcd1234", b"x")
        assert not list(tmp_path.glob("**/*.tmp.*"))

    def test_empty_file_reads_as_miss_and_is_evicted(self, tmp_path):
        """A torn zero-byte file must not block the key forever: the
        miss evicts it, so the next put repairs the entry."""
        store = DiskArtifactStore(tmp_path)
        path = tmp_path / "ab" / "abcd1234.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"")
        assert store.get("abcd1234") is None
        assert not path.exists()
        store.put("abcd1234", b"repaired")
        assert store.get("abcd1234") == b"repaired"


class TestArtifactCache:
    def test_memory_only_roundtrip(self):
        cache = ArtifactCache()
        assert cache.get("k") is None
        cache.put("k", {"circuit": [1, 2, 3]})
        assert cache.get("k") == {"circuit": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1

    def test_returned_value_never_aliases_stored_value(self):
        cache = ArtifactCache()
        value = {"data": [1, 2]}
        cache.put("k", value)
        first = cache.get("k")
        first["data"].append(3)
        assert cache.get("k") == {"data": [1, 2]}

    def test_disk_persistence_across_instances(self, tmp_path):
        ArtifactCache(tmp_path).put("k", {"n": 7})
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("k") == {"n": 7}
        assert fresh.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("abcd", {"n": 7})
        (tmp_path / "ab" / "abcd.pkl").write_bytes(b"not a pickle")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("abcd") is None
        assert fresh.misses == 1

    def test_empty_snapshot_is_a_hit(self):
        """A pass that writes no artifacts still caches (e.g. a
        validation pass): {} must be distinguishable from a miss."""
        cache = ArtifactCache()
        cache.put("k", {})
        assert cache.get("k") == {}
        assert cache.hits == 1

    def test_per_pass_counters(self):
        cache = ArtifactCache()
        cache.record_event("mapping", hit=True)
        cache.record_event("mapping", hit=False)
        cache.record_event("routing", hit=True)
        assert cache.stats()["per_pass"] == {
            "mapping": {"hits": 1, "misses": 1},
            "routing": {"hits": 1, "misses": 0},
        }

    def test_values_are_pickled_snapshots(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("abcd", {"n": 1})
        payload = (tmp_path / "ab" / "abcd.pkl").read_bytes()
        assert pickle.loads(payload) == {"n": 1}


class TestProcessCache:
    def test_none_directory(self):
        assert process_cache(None) is None

    def test_same_directory_same_instance(self, tmp_path):
        a = process_cache(tmp_path / "c")
        b = process_cache(str(tmp_path / "c"))
        assert a is b

    def test_different_directories_different_instances(self, tmp_path):
        assert process_cache(tmp_path / "a") is not \
            process_cache(tmp_path / "b")


class TestSaltedDirectory:
    def test_nested_under_source_digest(self, tmp_path):
        from repro.analysis.store import source_digest

        assert salted_directory(tmp_path) == tmp_path / source_digest()

    def test_idempotent(self, tmp_path):
        """Several enforcing layers (BatchCompiler, run_engine, CLI)
        compose without nesting digest under digest."""
        once = salted_directory(tmp_path)
        assert salted_directory(once) == once
        assert salted_directory(str(once)) == once


class TestCounterSnapshots:
    """stats()/reset_stats()/stats_delta: the one counter read path
    shared by 'sweep --pass-timings', BatchCompiler summaries and the
    compile server's /metrics endpoint."""

    def test_reset_stats_zeroes_counters(self):
        cache = ArtifactCache()
        cache.put("k", {})
        cache.get("k")
        cache.get("missing")
        cache.record_event("mapping", hit=True)
        cache.reset_stats()
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["per_pass"] == {}
        # entries survive a counter reset: only accounting is cleared
        assert cache.get("k") == {}

    def test_stats_delta_subtracts_counters(self):
        from repro.cache.store import stats_delta

        cache = ArtifactCache()
        cache.put("k", {})
        cache.get("k")
        before = cache.stats()
        cache.get("k")
        cache.get("missing")
        cache.record_event("routing", hit=False)
        delta = stats_delta(before, cache.stats())
        assert delta["hits"] == 1
        assert delta["misses"] == 1
        assert delta["per_pass"] == {"routing": {"hits": 0, "misses": 1}}
        # memory_entries is a gauge, not a counter: reported absolute
        assert delta["memory_entries"] == cache.stats()["memory_entries"]


class TestLockingArtifactCache:
    def test_behaves_like_plain_cache(self, tmp_path):
        from repro.cache.store import LockingArtifactCache

        cache = LockingArtifactCache(tmp_path)
        cache.put("abcd", {"n": 1})
        assert cache.get("abcd") == {"n": 1}
        assert cache.stats()["hits"] == 1
        cache.reset_stats()
        assert cache.stats()["hits"] == 0

    def test_concurrent_access_keeps_counters_consistent(self):
        import threading

        from repro.cache.store import LockingArtifactCache

        cache = LockingArtifactCache()
        cache.put("k", {})
        rounds = 200

        def worker():
            for _ in range(rounds):
                cache.get("k")
                cache.get("missing")
                cache.record_event("mapping", hit=True)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        assert stats["hits"] == 4 * rounds
        assert stats["misses"] == 4 * rounds
        assert stats["per_pass"]["mapping"]["hits"] == 4 * rounds
