"""Tests for the compile server's priority job queue."""

import threading
import time

import pytest

from repro.service.batch import CompileRequest
from repro.service.queue import (
    Job,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)


def make_job(priority=0, timeout_s=None, key="k"):
    return Job(request=CompileRequest(), key=key, priority=priority,
               timeout_s=timeout_s)


class TestJob:
    def test_no_timeout_never_expires(self):
        job = make_job()
        assert job.deadline is None
        assert not job.expired

    def test_expired_after_deadline(self):
        job = make_job(timeout_s=0.001)
        time.sleep(0.01)
        assert job.expired

    def test_cancel_marks_without_resolving(self):
        job = make_job()
        job.cancel()
        assert job.cancelled
        assert not job.future.done()

    def test_resolve_is_first_writer_wins(self):
        job = make_job()
        job.resolve("first")
        job.resolve("second")
        assert job.future.result() == "first"


class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        jobs = [make_job(key=str(i)) for i in range(3)]
        for job in jobs:
            queue.put(job)
        assert [queue.get() for _ in range(3)] == jobs

    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        low, high = make_job(priority=0), make_job(priority=5)
        queue.put(low)
        queue.put(high)
        assert queue.get() is high
        assert queue.get() is low

    def test_full_queue_raises_not_blocks(self):
        queue = JobQueue(maxsize=2)
        queue.put(make_job())
        queue.put(make_job())
        with pytest.raises(QueueFullError, match="full"):
            queue.put(make_job())
        assert len(queue) == 2

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            JobQueue(maxsize=0)

    def test_put_after_close_raises(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(make_job())

    def test_get_returns_sentinel_after_close_drains(self):
        """Workers run the pending backlog, then see the None sentinel."""
        queue = JobQueue()
        job = make_job()
        queue.put(job)
        queue.close()
        assert queue.get() is job
        assert queue.get() is None
        assert queue.get() is None    # every worker gets one

    def test_close_reports_pending_and_is_idempotent(self):
        queue = JobQueue()
        queue.put(make_job())
        assert len(queue.close()) == 1
        assert len(queue.close()) == 1

    def test_get_timeout(self):
        queue = JobQueue()
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.01)

    def test_get_blocks_until_put(self):
        queue = JobQueue()
        job = make_job()
        results = []
        waiter = threading.Thread(target=lambda: results.append(queue.get()))
        waiter.start()
        time.sleep(0.02)
        queue.put(job)
        waiter.join(2.0)
        assert results == [job]

    def test_pause_holds_jobs_resume_releases(self):
        queue = JobQueue()
        queue.pause()
        job = make_job()
        queue.put(job)
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.01)
        queue.resume()
        assert queue.get() is job

    def test_close_overrides_pause(self):
        """Shutdown must drain even a queue a test left paused."""
        queue = JobQueue()
        queue.pause()
        job = make_job()
        queue.put(job)
        queue.close()
        assert queue.get() is job
        assert queue.get() is None

    def test_drain_empties_in_priority_order(self):
        queue = JobQueue()
        low, high = make_job(priority=0), make_job(priority=9)
        queue.put(low)
        queue.put(high)
        assert queue.drain() == [high, low]
        assert len(queue) == 0
