"""Chaos tests: the serving stack under injected failures.

Every failure mode the fault harness (:mod:`repro.service.faults`) can
inject is exercised against the real service:

* a process worker dying mid-compile (supervised restart, bounded
  retries, poison quarantine),
* a thread worker raising the injected crash (typed error response,
  server survives),
* a client vanishing while its job is queued or running (the last
  waiter's departure cancels the compile at a pass boundary),
* the journal disk failing (durability degrades, serving does not),
* a server "crash" between acceptance and response (journal replay on
  a fresh service: no accepted job lost, duplicate records collapse).

Each path must also be *visible*: the assertions pin the metrics
counters so no failure is ever silent.
"""

import socket
import time

import pytest

from repro.service import faults
from repro.service.batch import request_from_dict
from repro.service.client import CompileClient
from repro.service.faults import FaultPlan
from repro.service.journal import JobJournal
from repro.service.server import CompileService, ServerThread, ServiceConfig

BASE = {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
        "device": "aspen", "gateset": "CNOT", "seed": 0}


@pytest.fixture(autouse=True)
def clear_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.install(None)
    yield
    faults.install(None)


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def running_service(config):
    service = CompileService(config)
    service.start()
    return service


class TestProcessWorkerCrash:
    def test_crashed_job_is_requeued_and_recovers(self, tmp_path,
                                                  monkeypatch):
        plan = FaultPlan(marker_dir=str(tmp_path / "m"), crash_times=1)
        # the env route: pool children (forked) see the same plan
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        service = running_service(ServiceConfig(
            jobs=1, worker_mode="process", max_retries=2))
        try:
            request = request_from_dict(BASE)
            job, _ = service.submit(request, request.key())
            response = job.future.result(timeout=180)
            assert response.error is None
            counters = service.metrics.counters
            assert counters["worker_crashes"] == 1
            assert counters["pool_restarts"] == 1
            assert counters["requeued"] == 1
            assert counters["compiled"] == 1
            assert counters["poisoned"] == 0
        finally:
            service.shutdown()
            service.join(30.0)

    def test_repeat_offender_is_quarantined_as_poison(self, tmp_path,
                                                      monkeypatch):
        # exactly the poison job's two allowed runs crash; later jobs
        # find every marker claimed and run clean
        plan = FaultPlan(marker_dir=str(tmp_path / "m"), crash_times=2)
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        service = running_service(ServiceConfig(
            jobs=1, worker_mode="process", max_retries=1))
        try:
            request = request_from_dict(BASE)
            key = request.key()
            job, _ = service.submit(request, key)
            response = job.future.result(timeout=180)
            assert "quarantined" in response.error
            counters = service.metrics.counters
            assert counters["worker_crashes"] == 2   # max_retries=1 -> 2 runs
            assert counters["poisoned"] == 1
            # the quarantine fast-fails resubmissions without burning
            # another worker
            retry_job, coalesced = service.submit(request, key)
            assert not coalesced
            retry_response = retry_job.future.result(timeout=10)
            assert "quarantined" in retry_response.error
            assert counters["poison_rejected"] == 1
            assert counters["worker_crashes"] == 2   # unchanged
            # unrelated work still compiles
            other = request_from_dict({**BASE, "seed": 1})
            other_job, _ = service.submit(other, other.key())
            assert other_job.future.result(timeout=180).error is None
        finally:
            service.shutdown()
            service.join(30.0)


class TestThreadWorkerCrash:
    def test_injected_crash_becomes_typed_error_response(self, tmp_path):
        faults.install(FaultPlan(marker_dir=str(tmp_path / "m"),
                                 crash_times=1))
        service = running_service(ServiceConfig(jobs=1))
        try:
            request = request_from_dict(BASE)
            job, _ = service.submit(request, request.key())
            response = job.future.result(timeout=180)
            assert "injected worker crash" in response.error
            # the worker thread survived: the next job compiles
            other = request_from_dict({**BASE, "seed": 1})
            other_job, _ = service.submit(other, other.key())
            assert other_job.future.result(timeout=180).error is None
        finally:
            service.shutdown()
            service.join(30.0)


class TestDisconnect:
    def test_queued_job_of_a_vanished_client_never_compiles(self):
        config = ServiceConfig(jobs=1)
        with ServerThread(CompileService(config)) as handle:
            service = handle.service
            service.queue.pause()
            faults.drop_connection("127.0.0.1", handle.port, BASE)
            # the monitor sees EOF while the job is still queued; the
            # sole waiter's departure cancels it dead-on-arrival
            assert wait_until(
                lambda: service.metrics.counters["disconnected"] == 1)
            service.queue.resume()
            assert wait_until(lambda: len(service.queue) == 0
                              and service._running == 0)
            assert service.metrics.counters["compiled"] == 0

    def test_running_compile_cancels_at_pass_boundary(self, tmp_path):
        """The acceptance gate: a disconnected request frees its worker
        *before* pipeline completion, visibly (cancelled_running)."""
        faults.install(FaultPlan(marker_dir=str(tmp_path / "m"),
                                 slow_pass="routing", slow_seconds=1.5))
        config = ServiceConfig(jobs=1)
        with ServerThread(CompileService(config)) as handle:
            service = handle.service
            import json as _json
            body = _json.dumps(BASE).encode()
            head = (f"POST /compile HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n").encode()
            sock = socket.create_connection(("127.0.0.1", handle.port),
                                            timeout=10)
            sock.sendall(head + body)
            # wait for the worker to pick the job up (it then stalls at
            # the routing boundary), *then* vanish
            assert wait_until(lambda: service._running == 1)
            time.sleep(0.2)
            sock.close()
            assert wait_until(
                lambda: service.metrics.counters["disconnected"] == 1)
            assert wait_until(
                lambda: service.metrics.counters["cancelled_running"] == 1)
            # the worker is free again: a live client gets served
            client = CompileClient(port=handle.port)
            assert client.compile({**BASE, "seed": 1}).get("error") is None
            client.close()


class TestJournalDurability:
    def test_accepted_jobs_survive_a_server_crash(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        crashed = running_service(ServiceConfig(
            jobs=1, journal_path=journal_path))
        # freeze the worker, accept three jobs, then "crash": the
        # service object is abandoned without shutdown, exactly as if
        # the process had died with the queue full
        crashed.queue.pause()
        requests = [request_from_dict({**BASE, "seed": seed})
                    for seed in range(3)]
        for request in requests:
            crashed.submit(request, request.key())
        assert len(JobJournal(journal_path).pending()) == 3

        revived = running_service(ServiceConfig(
            jobs=1, journal_path=journal_path))
        try:
            assert revived.metrics.counters["journal_replayed"] == 3
            assert wait_until(
                lambda: revived.metrics.counters["compiled"] == 3, 180)
            # every replayed job completed -> the journal drains
            assert wait_until(
                lambda: JobJournal(journal_path).pending() == [])
        finally:
            revived.shutdown()
            revived.join(30.0)

    def test_duplicate_journal_records_replay_once(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = JobJournal(journal_path)
        request = request_from_dict(BASE)
        key = request.key()
        # a journal replayed twice before compaction, or a client retry
        # racing the crash: the same acceptance recorded twice
        journal.record_accepted(key, request.to_dict())
        journal.record_accepted(key, request.to_dict())
        service = running_service(ServiceConfig(
            jobs=1, journal_path=journal_path))
        try:
            assert service.metrics.counters["journal_replayed"] == 1
            assert wait_until(
                lambda: service.metrics.counters["compiled"] == 1, 180)
            time.sleep(0.2)     # would-be second execution window
            assert service.metrics.counters["compiled"] == 1
            assert service.metrics.counters["submitted"] == 1
        finally:
            service.shutdown()
            service.join(30.0)

    def test_journal_write_failure_degrades_not_refuses(self, tmp_path):
        faults.install(FaultPlan(marker_dir=str(tmp_path / "m"),
                                 journal_fail_times=1))
        service = running_service(ServiceConfig(
            jobs=1, journal_path=tmp_path / "journal.jsonl"))
        try:
            request = request_from_dict(BASE)
            job, _ = service.submit(request, request.key())
            response = job.future.result(timeout=180)
            # the append failed, the compile did not
            assert response.error is None
            assert service.metrics.counters["journal_write_errors"] >= 1
        finally:
            service.shutdown()
            service.join(30.0)
