"""Tests for the batch compilation service."""

import json

import pytest

from repro.service.batch import (
    BatchCompiler,
    CompileRequest,
    execute_request,
    load_requests,
    request_from_dict,
)

REQS = [
    CompileRequest(compiler="2qan", benchmark="NNN_Ising", n_qubits=6,
                   device="aspen", gateset="CNOT", seed=0),
    CompileRequest(compiler="tket", benchmark="NNN_Ising", n_qubits=6,
                   device="aspen", gateset="CNOT", seed=0),
]


class TestRequest:
    def test_from_dict_defaults(self):
        request = request_from_dict({"compiler": "tket"})
        assert request.benchmark == "NNN_Heisenberg"
        assert request.n_qubits == 8

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="qubits"):
            request_from_dict({"qubits": 6})

    def test_from_dict_rejects_wrong_types(self):
        """Bad values fail at parse time with a clear message, not as a
        traceback from deep inside a worker."""
        with pytest.raises(ValueError, match="n_qubits"):
            request_from_dict({"n_qubits": "6"})
        with pytest.raises(ValueError, match="compiler"):
            request_from_dict({"compiler": 7})
        with pytest.raises(ValueError, match="seed"):
            request_from_dict({"seed": True})

    def test_alias_dedupes_to_canonical(self):
        assert CompileRequest(compiler="tket").key() == \
            CompileRequest(compiler="order").key()

    def test_device_free_compiler_ignores_device_in_key(self):
        assert CompileRequest(compiler="nomap", device="aspen").key() == \
            CompileRequest(compiler="nomap", device="montreal").key()

    def test_gateset_free_compiler_ignores_gateset_in_key(self):
        a = CompileRequest(compiler="paulihedral", gateset="CNOT")
        b = CompileRequest(compiler="paulihedral", gateset="SYC")
        assert a.key() == b.key()

    def test_distinct_requests_distinct_keys(self):
        assert CompileRequest(seed=0).key() != CompileRequest(seed=1).key()

    def test_device_name_case_folded_in_key(self):
        """by_name folds case, so 'Montreal' and 'montreal' are one
        compile."""
        assert CompileRequest(device="Montreal").key() == \
            CompileRequest(device="montreal").key()

    def test_gateset_name_case_folded_in_key(self):
        """get_gateset folds case, so 'cnot' and 'CNOT' are one
        compile."""
        assert CompileRequest(gateset="cnot").key() == \
            CompileRequest(gateset="CNOT").key()

    def test_qaoa_degree_ignored_for_non_qaoa_benchmarks(self):
        a = CompileRequest(benchmark="NNN_Ising", qaoa_degree=3)
        b = CompileRequest(benchmark="NNN_Ising", qaoa_degree=4)
        assert a.key() == b.key()
        qa = CompileRequest(benchmark="QAOA-REG-3", qaoa_degree=3)
        qb = CompileRequest(benchmark="QAOA-REG-3", qaoa_degree=4)
        assert qa.key() != qb.key()

    def test_load_requests(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"compiler": "2qan", "n_qubits": 6}]))
        requests = load_requests(path)
        assert requests == [CompileRequest(compiler="2qan", n_qubits=6)]

    def test_load_requests_rejects_non_list(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({"compiler": "2qan"}))
        with pytest.raises(ValueError, match="list"):
            load_requests(path)

    def test_load_requests_rejects_non_object_item(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"compiler": "2qan"}, "tket"]))
        with pytest.raises(ValueError, match="request #1"):
            load_requests(path)


class TestExecuteRequest:
    def test_matches_direct_compilation(self):
        from repro.analysis.harness import build_step
        from repro.core.registry import get_compiler
        from repro.devices.library import aspen

        request = REQS[0]
        response = execute_request(request)
        step = build_step("NNN_Ising", 6, 0)
        direct = get_compiler("2qan", device=aspen(), gateset="CNOT",
                              seed=0).compile(step)
        assert response.n_two_qubit_gates == direct.metrics.n_two_qubit_gates
        assert response.n_swaps == direct.metrics.n_swaps

    def test_oversized_request_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            execute_request(CompileRequest(n_qubits=99, device="aspen"))

    def test_device_free_compiler_any_size(self):
        response = execute_request(CompileRequest(
            compiler="nomap", benchmark="NNN_Ising", n_qubits=40))
        assert response.n_swaps == 0

    def test_all_to_all_device_accepted(self):
        """'all-to-all' resolves like the compile CLI: sized to the
        problem, any compiler, zero SWAPs needed."""
        response = execute_request(CompileRequest(
            compiler="2qan", benchmark="NNN_Ising", n_qubits=20,
            device="all-to-all"))
        assert response.n_swaps == 0

    def test_all_to_all_case_insensitive(self):
        """Execution folds case exactly as key() does, so dedupe-equal
        requests never execute differently."""
        response = execute_request(CompileRequest(
            compiler="2qan", benchmark="NNN_Ising", n_qubits=6,
            device="All-To-All"))
        assert response.n_swaps == 0

    def test_to_dict_deterministic_fields_only(self):
        payload = execute_request(REQS[0]).to_dict()
        assert "seconds" not in payload
        assert "timings" not in payload
        assert payload["n_qubits"] == 6

    def test_to_dict_carries_request_key(self):
        """Clients correlate responses on request_key instead of
        recomputing key() themselves."""
        payload = execute_request(REQS[0]).to_dict()
        assert payload["request_key"] == REQS[0].key()

    def test_request_key_threaded_through_is_not_recomputed(self):
        response = execute_request(REQS[0], request_key="precomputed")
        assert response.to_dict()["request_key"] == "precomputed"

    def test_batch_duplicates_share_request_key(self):
        responses, _ = BatchCompiler().run([REQS[0], REQS[0]])
        first, second = [r.to_dict() for r in responses]
        assert first["request_key"] == second["request_key"]
        assert responses[1].deduplicated

    def test_uncomputable_key_serialises_as_none(self):
        from repro.service.batch import error_response

        bogus = CompileRequest(compiler="bogus")
        responses, summary = BatchCompiler().run([bogus])
        assert summary.n_failed == 1
        assert responses[0].to_dict()["request_key"] is None
        assert error_response(bogus, ValueError("x")).to_dict()[
            "request_key"] is None


class TestBatchCompiler:
    def test_responses_in_request_order(self):
        responses, summary = BatchCompiler().run(REQS)
        assert [r.request for r in responses] == REQS
        assert summary.n_requests == 2 and summary.n_unique == 2

    def test_duplicates_compiled_once(self):
        doubled = REQS + [REQS[0]]
        responses, summary = BatchCompiler().run(doubled)
        assert summary.n_unique == 2
        assert not responses[0].deduplicated
        assert responses[2].deduplicated
        assert responses[2].n_swaps == responses[0].n_swaps

    def test_alias_duplicate_detected(self):
        aliased = [REQS[1],
                   CompileRequest(compiler="order", benchmark="NNN_Ising",
                                  n_qubits=6, device="aspen",
                                  gateset="CNOT", seed=0)]
        responses, summary = BatchCompiler().run(aliased)
        assert summary.n_unique == 1
        # the served response still echoes the request as written
        assert responses[1].request.compiler == "order"

    def test_warm_batch_hits_cache(self, tmp_path):
        service = BatchCompiler(cache_dir=tmp_path)
        _, cold = service.run(REQS)
        warm_responses, warm = service.run(REQS)
        assert cold.artifact_misses > 0
        assert warm.artifact_misses == 0
        assert warm.artifact_hits > 0
        assert all(set(r.cache_events.values()) == {"hit"}
                   for r in warm_responses)

    def test_cache_persists_across_service_instances(self, tmp_path):
        BatchCompiler(cache_dir=tmp_path).run(REQS)
        _, warm = BatchCompiler(cache_dir=tmp_path).run(REQS)
        assert warm.artifact_misses == 0

    def test_cache_dir_salted_with_source_digest(self, tmp_path):
        """The documented invalidation rule is enforced at construction:
        persistent artifacts never outlive the code that made them."""
        from repro.analysis.store import source_digest

        service = BatchCompiler(cache_dir=tmp_path)
        assert service.cache_dir == tmp_path / source_digest()
        service.run(REQS[:1])
        assert any((tmp_path / source_digest()).rglob("*.pkl"))

    def test_reconstruction_does_not_double_salt(self, tmp_path):
        """A service built from another's cache_dir (or
        dataclasses.replace) must keep serving the same warm cache."""
        import dataclasses

        first = BatchCompiler(cache_dir=tmp_path)
        first.run(REQS)
        rebuilt = dataclasses.replace(BatchCompiler(cache_dir=tmp_path),
                                      jobs=1)
        assert rebuilt.cache_dir == first.cache_dir
        _, warm = BatchCompiler(cache_dir=first.cache_dir).run(REQS)
        assert warm.artifact_misses == 0

    def test_memory_only_cache_still_shared_within_batch(self):
        _, summary = BatchCompiler().run(REQS)
        assert summary.artifact_hits > 0   # tket reuses 2qan's unify

    def test_metrics_identical_cold_and_warm(self, tmp_path):
        service = BatchCompiler(cache_dir=tmp_path)
        cold_responses, _ = service.run(REQS)
        warm_responses, _ = service.run(REQS)
        assert [r.to_dict() for r in cold_responses] == \
            [r.to_dict() for r in warm_responses]

    def test_parallel_jobs_match_serial(self, tmp_path):
        serial, _ = BatchCompiler().run(REQS)
        parallel, summary = BatchCompiler(jobs=2,
                                          cache_dir=tmp_path).run(REQS)
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in parallel]

    def test_parallel_without_cache_dir_still_caches(self):
        """Workers without a disk layer keep a private memory cache:
        every response carries cache events, not silent no-caching."""
        responses, _ = BatchCompiler(jobs=2).run(REQS)
        assert all(r.cache_events for r in responses)

class TestFailureIsolation:
    BAD = CompileRequest(n_qubits=99, device="aspen")

    def test_bad_request_yields_error_response(self):
        responses, summary = BatchCompiler().run([self.BAD])
        assert responses[0].failed
        assert "exceed" in responses[0].error
        assert summary.n_failed == 1
        assert "1 failed" in summary.line()

    def test_failure_does_not_abort_the_batch(self):
        """Completed responses are drained around the failing one."""
        responses, summary = BatchCompiler().run(
            [REQS[0], self.BAD, REQS[1]])
        assert [r.failed for r in responses] == [False, True, False]
        assert responses[0].n_two_qubit_gates > 0
        assert responses[2].n_two_qubit_gates > 0
        assert summary.n_failed == 1

    def test_parallel_failure_isolated(self, tmp_path):
        serial, _ = BatchCompiler().run([REQS[0], self.BAD, REQS[1]])
        parallel, summary = BatchCompiler(jobs=2, cache_dir=tmp_path).run(
            [REQS[0], self.BAD, REQS[1]])
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in parallel]
        assert summary.n_failed == 1

    def test_failed_duplicates_share_the_error(self):
        responses, summary = BatchCompiler().run([self.BAD, self.BAD])
        assert responses[1].deduplicated
        assert responses[1].failed
        assert summary.n_failed == 2
        assert summary.n_unique == 1

    def test_unknown_compiler_isolated_not_traceback(self):
        """A request whose dedupe key cannot even be computed (unknown
        compiler name) is a per-request failure, not a batch abort."""
        responses, summary = BatchCompiler().run(
            [REQS[0], CompileRequest(compiler="bogus")])
        assert not responses[0].failed
        assert responses[1].failed
        assert "bogus" in responses[1].error
        assert summary.n_failed == 1
        assert summary.n_unique == 1     # the bogus request never dedupes

    def test_error_in_to_dict_only_when_failed(self):
        responses, _ = BatchCompiler().run([REQS[0], self.BAD])
        assert "error" not in responses[0].to_dict()
        assert "exceed" in responses[1].to_dict()["error"]

    def test_success_summary_line_unchanged(self):
        _, summary = BatchCompiler().run(REQS[:1])
        assert "failed" not in summary.line()


class TestParameterisedRequests:
    BASE = {"compiler": "2qan", "benchmark": "QAOA-REG-3", "n_qubits": 6,
            "device": "montreal", "gateset": "CNOT", "seed": 0}

    def test_from_dict_parses_parameters(self):
        request = request_from_dict(
            {**self.BASE, "parameters": {"gamma": 0.4, "beta": 1}})
        assert request.parameters == (("beta", 1.0), ("gamma", 0.4))
        assert request.binding() == {"gamma": 0.4, "beta": 1.0}

    def test_from_dict_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="parameters"):
            request_from_dict({**self.BASE, "parameters": [0.4]})
        with pytest.raises(ValueError, match="gamma"):
            request_from_dict({**self.BASE, "parameters": {"gamma": "x"}})
        with pytest.raises(ValueError, match="gamma"):
            request_from_dict({**self.BASE, "parameters": {"gamma": True}})
        with pytest.raises(ValueError, match="names"):
            request_from_dict({**self.BASE, "parameters": {"": 1.0}})

    def test_concrete_key_unchanged_by_field_addition(self):
        # concrete requests must keep their historical dedupe keys, so a
        # parameters-free request hashes without the field entirely
        concrete = request_from_dict(self.BASE)
        bound = request_from_dict(
            {**self.BASE, "parameters": {"gamma": 0.4, "beta": 1.1}})
        assert concrete.key() != bound.key()
        assert "parameters" not in concrete.to_dict()
        assert bound.to_dict()["parameters"] == {"gamma": 0.4, "beta": 1.1}

    def test_structural_key_collapses_angle_values(self):
        a = request_from_dict(
            {**self.BASE, "parameters": {"gamma": 0.4, "beta": 1.1}})
        b = request_from_dict(
            {**self.BASE, "parameters": {"gamma": -2.0, "beta": 0.0}})
        assert a.key() != b.key()
        assert a.structural_key() == b.structural_key()
        # ...but not across different structures
        other = request_from_dict(
            {**self.BASE, "n_qubits": 8,
             "parameters": {"gamma": 0.4, "beta": 1.1}})
        assert other.structural_key() != a.structural_key()

    def test_qaoa_degree_consumed_by_weighted_regular_family(self):
        base = {**self.BASE, "benchmark": "QAOA-WR-3"}
        a = request_from_dict({**base, "qaoa_degree": 3})
        b = request_from_dict({**base, "qaoa_degree": 4})
        assert a.key() != b.key()
        er = {**self.BASE, "benchmark": "QAOA-ER"}
        assert request_from_dict({**er, "qaoa_degree": 3}).key() == \
            request_from_dict({**er, "qaoa_degree": 4}).key()

    def test_bound_request_matches_concrete_compile(self):
        # the default sweep angles bound late must reproduce the
        # concrete benchmark's metrics exactly
        concrete = execute_request(request_from_dict(self.BASE))
        bound = execute_request(request_from_dict(
            {**self.BASE, "parameters": {"gamma": 0.35, "beta": -0.39}}))
        assert (bound.n_swaps, bound.n_dressed, bound.n_two_qubit_gates,
                bound.two_qubit_depth, bound.total_depth, bound.qap_cost) \
            == (concrete.n_swaps, concrete.n_dressed,
                concrete.n_two_qubit_gates, concrete.two_qubit_depth,
                concrete.total_depth, concrete.qap_cost)

    def test_batch_coalesces_structural_compiles(self):
        requests = [
            request_from_dict(
                {**self.BASE, "parameters": {"gamma": g, "beta": b}})
            for g, b in [(0.35, -0.39), (0.7, 0.1), (1.2, 0.4)]
        ]
        structurals: dict = {}
        responses = [execute_request(r, None, structurals)
                     for r in requests]
        # three bindings, one structural compile
        assert len(structurals) == 1
        assert len({r.n_swaps for r in responses}) == 1
        # and the structural fast path agrees with the plain path
        plain = execute_request(requests[0])
        assert responses[0].n_swaps == plain.n_swaps
        assert responses[0].n_two_qubit_gates == plain.n_two_qubit_gates

    def test_batch_run_serves_mixed_batches(self):
        requests = [
            request_from_dict(self.BASE),
            request_from_dict(
                {**self.BASE, "parameters": {"gamma": 0.35, "beta": -0.39}}),
            request_from_dict(
                {**self.BASE, "parameters": {"gamma": 0.7, "beta": 0.2}}),
        ]
        responses, summary = BatchCompiler().run(requests)
        assert summary.n_failed == 0
        assert summary.n_unique == 3
        assert [r.failed for r in responses] == [False, False, False]
        assert responses[0].n_swaps == responses[1].n_swaps

    def test_missing_parameter_is_isolated_failure(self):
        responses, summary = BatchCompiler().run([
            request_from_dict(self.BASE),
            request_from_dict({**self.BASE, "parameters": {"gamma": 0.4}}),
        ])
        assert summary.n_failed == 1
        assert not responses[0].failed
        assert responses[1].failed
        assert "beta" in responses[1].error
