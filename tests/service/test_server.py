"""Tests for the compile server: routing, coalescing, backpressure,
timeouts, tenant isolation, and graceful shutdown.

Concurrency is made deterministic by pausing the job queue: with
workers held back, tests control exactly which jobs are pending when
requests arrive, then resume to let the backlog drain.
"""

import json
import threading
import time

import pytest

from repro.service.batch import BatchCompiler, request_from_dict
from repro.service.client import CompileClient, ServiceError
from repro.service.server import (
    CompileService,
    Envelope,
    ServerThread,
    ServiceConfig,
    split_envelope,
)

BASE = {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
        "device": "aspen", "gateset": "CNOT", "seed": 0}


def serving(config=None):
    return ServerThread(CompileService(config or ServiceConfig(jobs=2)))


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestEnvelope:
    def test_split_pops_envelope_fields(self):
        payload, envelope = split_envelope(
            {**BASE, "tenant": "team-a", "priority": 2, "timeout_s": 1.5})
        assert payload == BASE
        assert envelope == Envelope("team-a", 2, 1.5)

    def test_defaults_inherited(self):
        _, envelope = split_envelope({}, Envelope("t", 1, 2.0))
        assert envelope == Envelope("t", 1, 2.0)

    @pytest.mark.parametrize("tenant", ["a/b", "a b", "x" * 65, 7, None])
    def test_bad_tenant_rejected(self, tenant):
        with pytest.raises(ValueError, match="tenant"):
            split_envelope({"tenant": tenant})

    @pytest.mark.parametrize("priority", ["3", 1.5, True])
    def test_bad_priority_rejected(self, priority):
        with pytest.raises(ValueError, match="priority"):
            split_envelope({"priority": priority})

    @pytest.mark.parametrize("timeout_s", ["1", 0, -2, True])
    def test_bad_timeout_rejected(self, timeout_s):
        with pytest.raises(ValueError, match="timeout_s"):
            split_envelope({"timeout_s": timeout_s})


class TestRoutes:
    def test_round_trip_matches_local_execution(self):
        from repro.service.batch import execute_request

        with serving() as handle:
            client = CompileClient(port=handle.port)
            served = client.compile(BASE)
        local = execute_request(request_from_dict(BASE)).to_dict()
        assert served == local

    def test_batch_bit_identical_to_batch_cli_path(self):
        """The live server must serve exactly what ``repro batch --json``
        prints for the same request list -- duplicates, aliases,
        parameterised variants and failures included."""
        payloads = [
            BASE,
            dict(BASE),                              # duplicate
            {**BASE, "compiler": "order"},           # alias of tket
            {**BASE, "compiler": "tket"},            # dedupes with alias
            {**BASE, "benchmark": "QAOA-REG-3", "seed": 1,
             "parameters": {"gamma": 0.4, "beta": 1.1}},
            {**BASE, "benchmark": "QAOA-REG-3", "seed": 1,
             "parameters": {"gamma": 0.7, "beta": 0.2}},
            {**BASE, "benchmark": "QAOA-REG-3", "seed": 1,
             "parameters": {"gamma": 0.4}},          # missing beta: fails
        ]
        requests = [request_from_dict(p) for p in payloads]
        with serving() as handle:
            client = CompileClient(port=handle.port)
            served = client.compile_batch(payloads)
        local, _ = BatchCompiler().run(requests)
        assert json.dumps(served, indent=2) == \
            json.dumps([r.to_dict() for r in local], indent=2)

    def test_batch_accepts_wrapped_object_with_envelope(self):
        with serving() as handle:
            client = CompileClient(port=handle.port)
            status, body, _headers = client._send("POST", "/batch",
                                                  {"requests": [BASE],
                                                   "priority": 1})
            assert status == 200
            assert json.loads(body)[0]["n_swaps"] is not None

    def test_unknown_route_404_wrong_method_405(self):
        with serving() as handle:
            client = CompileClient(port=handle.port, retries=0)
            assert client._send("GET", "/nope")[0] == 404
            assert client._send("GET", "/compile")[0] == 405
            assert client._send("POST", "/metrics")[0] == 405

    def test_bad_json_and_bad_fields_are_400(self):
        import http.client

        with serving() as handle:
            client = CompileClient(port=handle.port, retries=0)
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=10)
            conn.request("POST", "/compile", body=b"{not json")
            assert conn.getresponse().status == 400
            conn.close()
            status, _body, _headers = client._send("POST", "/compile",
                                                   "not an object")
            assert status == 400
            with pytest.raises(ServiceError, match="qubits") as excinfo:
                client.compile({"qubits": 6})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError, match="tenant"):
                client.compile(BASE, tenant="a/b")
            with pytest.raises(ServiceError, match="#1"):
                client.compile_batch([BASE, {"qubits": 6}])

    def test_unknown_compiler_is_error_response_not_http_error(self):
        """A request whose key cannot even be computed mirrors the batch
        CLI: an error-carrying response, not a transport failure."""
        with serving() as handle:
            client = CompileClient(port=handle.port)
            served = client.compile({**BASE, "compiler": "bogus"})
        assert served["error"]
        assert served["request_key"] is None

    def test_healthz_and_metrics_shape(self):
        with serving() as handle:
            client = CompileClient(port=handle.port)
            client.compile(BASE)
            health = client.healthz()
            metrics = client.metrics()
        assert health["status"] == "ok"
        assert metrics["requests"]["compiled"] == 1
        assert metrics["queue"]["capacity"] == 64
        assert metrics["latency"]["request"]["count"] == 1
        assert metrics["latency"]["queue_wait"]["buckets"]["le_inf"] == 1
        # per-pass timing aggregates from the shared aggregation helper
        assert metrics["passes"]["mapping"]["count"] == 1
        assert metrics["passes"]["mapping"]["mean_s"] >= 0
        # cache counters come from ArtifactCache.stats(), the one
        # counter snapshot API
        assert metrics["cache"]["default"]["misses"] > 0


class TestConcurrency:
    def test_identical_inflight_requests_coalesce_to_one_compile(self):
        with serving() as handle:
            service = handle.service
            service.queue.pause()
            client = CompileClient(port=handle.port)
            results = []

            def call():
                results.append(client.compile(BASE))

            threads = [threading.Thread(target=call) for _ in range(4)]
            for thread in threads:
                thread.start()
            # all four requests arrive while the queue is frozen: one
            # job is submitted, three attach to it
            assert wait_until(
                lambda: service.metrics.counters["coalesced"] == 3)
            assert service.metrics.counters["submitted"] == 1
            service.queue.resume()
            for thread in threads:
                thread.join(30.0)
        assert len(results) == 4
        assert all(r == results[0] for r in results)
        assert service.metrics.counters["compiled"] == 1

    def test_full_queue_returns_429_backpressure(self):
        config = ServiceConfig(jobs=1, queue_depth=1)
        with serving(config) as handle:
            service = handle.service
            service.queue.pause()
            client = CompileClient(port=handle.port, retries=0)
            holder = threading.Thread(
                target=lambda: client.compile(BASE))
            holder.start()
            assert wait_until(lambda: len(service.queue) == 1)
            status, _body, headers = client._send(
                "POST", "/compile", {**BASE, "seed": 1})
            assert status == 429
            # backpressure comes with a machine-readable wait hint
            assert float(headers["retry-after"]) > 0
            with pytest.raises(ServiceError, match="full") as excinfo:
                client.compile({**BASE, "seed": 1})
            assert excinfo.value.status == 429
            assert service.metrics.counters["rejected_queue_full"] == 2
            service.queue.resume()
            holder.join(30.0)

    def test_429_resolves_after_retry_when_queue_drains(self):
        config = ServiceConfig(jobs=1, queue_depth=1)
        with serving(config) as handle:
            service = handle.service
            service.queue.pause()
            patient = CompileClient(port=handle.port, retries=8,
                                    backoff_s=0.05)
            holder = threading.Thread(
                target=lambda: patient.compile(BASE))
            holder.start()
            assert wait_until(lambda: len(service.queue) == 1)
            releaser = threading.Timer(0.2, service.queue.resume)
            releaser.start()
            served = patient.compile({**BASE, "seed": 1})
            assert served.get("error") is None
            holder.join(30.0)
            releaser.join()

    def test_queued_job_times_out_with_error_response(self):
        with serving() as handle:
            service = handle.service
            service.queue.pause()
            client = CompileClient(port=handle.port)
            served = client.compile(BASE, timeout_s=0.05)
            assert "timed out" in served["error"]
            assert served["request_key"] is not None
            assert service.metrics.counters["timed_out"] >= 1
            service.queue.resume()

    def test_structural_twins_share_one_structural_compile(self):
        with serving() as handle:
            client = CompileClient(port=handle.port)
            client.compile_batch([
                {**BASE, "benchmark": "QAOA-REG-3", "seed": 1,
                 "parameters": {"gamma": g, "beta": b}}
                for g, b in [(0.4, 1.1), (0.7, 0.2), (1.2, 0.9)]
            ])
            metrics = client.metrics()
        assert metrics["requests"]["structural_compiles"] == 1
        assert metrics["requests"]["structural_binds"] == 3

    def test_tenants_get_isolated_salted_caches(self, tmp_path):
        config = ServiceConfig(jobs=2, cache_dir=tmp_path)
        with serving(config) as handle:
            client = CompileClient(port=handle.port)
            client.compile(BASE, tenant="team-a")
            client.compile(BASE, tenant="team-b")
            metrics = client.metrics()
        from repro.analysis.store import source_digest

        digest = source_digest()
        assert (tmp_path / "team-a" / digest).is_dir()
        assert (tmp_path / "team-b" / digest).is_dir()
        # each tenant compiled from cold: no cross-tenant artifact reuse
        assert metrics["cache"]["team-a"]["hits"] == 0
        assert metrics["cache"]["team-b"]["hits"] == 0
        assert metrics["cache"]["team-b"]["misses"] == \
            metrics["cache"]["team-a"]["misses"]


class TestHttpFrontEnd:
    def test_connection_reused_across_requests(self):
        with serving() as handle:
            client = CompileClient(port=handle.port)
            client.healthz()
            first = client._connection()
            client.compile(BASE)
            client.metrics()
            # three exchanges, one socket: the server kept it alive
            assert client._connection() is first
            client.close()

    def test_connection_close_header_honoured(self):
        import http.client

        with serving() as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=10)
            conn.request("GET", "/healthz",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            assert response.will_close
            response.read()
            conn.close()

    def test_idle_keep_alive_connection_times_out(self):
        import socket

        config = ServiceConfig(jobs=1, idle_timeout_s=0.1)
        with serving(config) as handle:
            sock = socket.create_connection(("127.0.0.1", handle.port),
                                            timeout=10)
            sock.settimeout(10.0)
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            chunks = []
            # the server answers, then -- with no follow-up request --
            # closes the idle connection; recv drains to EOF
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            sock.close()
        data = b"".join(chunks)
        assert b"200 OK" in data
        assert b"Connection: keep-alive" in data

    def test_metrics_prometheus_exposition(self):
        with serving() as handle:
            client = CompileClient(port=handle.port)
            client.compile(BASE)
            status, body, headers = client._send(
                "GET", "/metrics?format=prometheus")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = body.decode()
            assert 'repro_requests_total{kind="compiled"} 1' in text
            assert "repro_request_latency_seconds_bucket" in text
            assert 'le="+Inf"' in text
            assert 'repro_cache_misses_total{tenant="default"}' in text
            status, _body, _headers = client._send(
                "GET", "/metrics?format=weird")
            assert status == 400


class TestShutdown:
    def test_graceful_shutdown_drains_pending_jobs(self):
        with serving() as handle:
            service = handle.service
            service.queue.pause()
            client = CompileClient(port=handle.port)
            results = []

            def call(seed):
                results.append(client.compile({**BASE, "seed": seed}))

            threads = [threading.Thread(target=call, args=(seed,))
                       for seed in (0, 1)]
            for thread in threads:
                thread.start()
            assert wait_until(lambda: len(service.queue) == 2)
            # drain=True shutdown runs the backlog (close overrides the
            # pause) before the listener goes away
            assert client.shutdown()["status"] == "draining"
            for thread in threads:
                thread.join(30.0)
            assert len(results) == 2
            assert all(r.get("error") is None for r in results)
        # the context exit joined the server thread; the port is gone
        with pytest.raises(ServiceError, match="cannot reach"):
            CompileClient(port=handle.port, retries=0).healthz()

    def test_hard_shutdown_cancels_pending_jobs(self):
        service = CompileService(ServiceConfig(jobs=1))
        service.start()
        service.queue.pause()
        jobs = []
        for seed in (1, 2):
            request = request_from_dict({**BASE, "seed": seed})
            jobs.append(service.submit(request, request.key())[0])
        service.shutdown(drain=False)
        service.join(10.0)
        for job in jobs:
            response = job.future.result(timeout=1.0)
            assert "stopped" in response.error
        assert service.metrics.counters["cancelled"] == 2

    def test_submit_after_drain_begins_raises_closed(self):
        from repro.service.queue import QueueClosedError

        service = CompileService(ServiceConfig(jobs=1))
        service.start()
        service.shutdown()
        request = request_from_dict(BASE)
        with pytest.raises(QueueClosedError):
            service.submit(request, request.key())
        service.join(10.0)
