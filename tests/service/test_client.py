"""Tests for the client SDK's retry/backoff and batching behaviour.

The transport seam (:meth:`CompileClient._send`) is replaced with a
scripted fake, so these tests assert the retry schedule without a
network or a clock.
"""

import json

import pytest

from repro.service.batch import CompileRequest
from repro.service.client import CompileClient, ServiceError


class ScriptedClient(CompileClient):
    """A client whose transport replays a scripted exchange list."""

    def __init__(self, script, **kwargs):
        self.sleeps = []
        super().__init__(port=1, sleep=self.sleeps.append, **kwargs)
        self.script = list(script)
        self.calls = []

    def _send(self, method, path, payload=None):
        self.calls.append((method, path, payload))
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        status, body, *rest = step
        headers = rest[0] if rest else {}
        return status, json.dumps(body).encode(), headers


class TestRetry:
    def test_retries_backpressure_with_exponential_backoff(self):
        client = ScriptedClient([
            (429, {"error": "full"}),
            (503, {"error": "draining"}),
            (200, {"ok": True}),
        ], retries=3, backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        assert client.sleeps == [0.1, 0.2]

    def test_retries_connection_errors(self):
        client = ScriptedClient([
            ConnectionRefusedError("nope"),
            (200, {"ok": True}),
        ])
        assert client.healthz() == {"ok": True}

    def test_exhausted_retries_raise_last_service_error(self):
        client = ScriptedClient([(429, {"error": "full"})] * 3, retries=2)
        with pytest.raises(ServiceError, match="429") as excinfo:
            client.healthz()
        assert excinfo.value.status == 429
        assert client.sleeps == [0.1, 0.2]

    def test_exhausted_connection_retries_raise(self):
        client = ScriptedClient([ConnectionRefusedError("nope")] * 2,
                                retries=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()

    def test_client_errors_never_retry(self):
        client = ScriptedClient([(400, {"error": "bad field"})])
        with pytest.raises(ServiceError, match="bad field") as excinfo:
            client.compile({"compiler": "2qan"})
        assert excinfo.value.status == 400
        assert client.sleeps == []

    def test_retries_zero_is_single_attempt(self):
        client = ScriptedClient([(503, {"error": "draining"})], retries=0)
        with pytest.raises(ServiceError, match="503"):
            client.healthz()

    def test_retry_after_header_overrides_backoff(self):
        client = ScriptedClient([
            (429, {"error": "full"}, {"retry-after": "0.7"}),
            (200, {"ok": True}),
        ], retries=3, backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        # the server's estimate wins over the exponential schedule
        assert client.sleeps == [0.7]

    def test_unparseable_retry_after_falls_back_to_backoff(self):
        client = ScriptedClient([
            (429, {"error": "full"},
             {"retry-after": "Fri, 31 Dec 1999 23:59:59 GMT"}),
            (429, {"error": "full"}, {"retry-after": "-3"}),
            (200, {"ok": True}),
        ], retries=3, backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        assert client.sleeps == [0.1, 0.2]

    def test_retry_after_only_applies_to_the_next_attempt(self):
        # a hint on attempt 1 must not leak into the delay before
        # attempt 3 when attempt 2's answer carried none
        client = ScriptedClient([
            (429, {"error": "full"}, {"retry-after": "0.5"}),
            (503, {"error": "draining"}),
            (200, {"ok": True}),
        ], retries=3, backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        assert client.sleeps == [0.5, 0.2]


class TestApi:
    def test_compile_sends_envelope_fields(self):
        client = ScriptedClient([(200, {"n_swaps": 1})])
        client.compile(CompileRequest(), tenant="team-a", priority=3,
                       timeout_s=2.5)
        method, path, payload = client.calls[0]
        assert (method, path) == ("POST", "/compile")
        assert payload["tenant"] == "team-a"
        assert payload["priority"] == 3
        assert payload["timeout_s"] == 2.5
        assert payload["compiler"] == "2qan"

    def test_compile_batch_chunks_preserve_order(self):
        client = ScriptedClient([
            (200, [{"i": 0}, {"i": 1}]),
            (200, [{"i": 2}]),
        ])
        out = client.compile_batch(
            [{"seed": i} for i in range(3)], chunk_size=2)
        assert out == [{"i": 0}, {"i": 1}, {"i": 2}]
        assert [len(c[2]["requests"]) for c in client.calls] == [2, 1]

    def test_compile_batch_rejects_bad_chunk_size(self):
        client = ScriptedClient([])
        with pytest.raises(ValueError, match="chunk_size"):
            client.compile_batch([{}, {}], chunk_size=0)

    def test_shutdown_defaults_to_drain_without_retry(self):
        client = ScriptedClient([(200, {"status": "draining"})])
        assert client.shutdown()["status"] == "draining"
        assert client.calls[0] == ("POST", "/shutdown", {"drain": True})
