"""Tests for the durable job journal: the write-ahead log behind
``repro serve --journal``.

Crash discipline mirrors ``tests/analysis`` ``TestCrashRecovery`` for
the result store: a torn final record must neither corrupt the file nor
fuse with the next append, and replaying the same journal twice must
not double any work (the pending walk collapses duplicate ``accepted``
records per key).
"""

import json

import pytest

from repro.service import faults
from repro.service.journal import JobJournal

REQUEST = {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
           "device": "aspen", "gateset": "CNOT", "seed": 0}


@pytest.fixture(autouse=True)
def clear_faults():
    faults.install(None)
    yield
    faults.install(None)


def journal_at(tmp_path):
    return JobJournal(tmp_path / "journal.jsonl")


class TestRoundTrip:
    def test_accepted_then_completed_leaves_nothing_pending(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST, tenant="t", priority=2,
                                timeout_s=1.5)
        assert [e["key"] for e in journal.pending()] == ["k1"]
        journal.record_completed("k1")
        assert journal.pending() == []

    def test_pending_preserves_envelope_fields(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST, tenant="team-a", priority=3,
                                timeout_s=2.0)
        entry = journal.pending()[0]
        assert entry["request"] == REQUEST
        assert entry["tenant"] == "team-a"
        assert entry["priority"] == 3
        assert entry["timeout_s"] == 2.0

    def test_key_may_cycle_accepted_completed_accepted(self, tmp_path):
        """Replay state is order-aware, not a set difference: a key
        resubmitted after completing is pending again."""
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST)
        journal.record_completed("k1")
        journal.record_accepted("k1", {**REQUEST, "seed": 1})
        pending = journal.pending()
        assert len(pending) == 1
        assert pending[0]["request"]["seed"] == 1

    def test_duplicate_accepted_records_collapse(self, tmp_path):
        """A journal replayed twice (or a retrying client) must not
        double the work: one pending entry per key, last spelling wins."""
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST)
        journal.record_accepted("k1", REQUEST)
        journal.record_accepted("k2", REQUEST)
        assert [e["key"] for e in journal.pending()] == ["k1", "k2"]


class TestCrashRecovery:
    def test_torn_final_record_is_skipped(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST)
        journal.record_accepted("k2", REQUEST)
        # a writer killed mid-append leaves a partial last line
        with journal.path.open("rb+") as handle:
            handle.seek(-20, 2)
            handle.truncate()
        assert [e["key"] for e in journal.load()] == ["k1"]
        assert [e["key"] for e in journal.pending()] == ["k1"]

    def test_append_after_torn_tail_preserves_both_records(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST)
        with journal.path.open("rb+") as handle:
            handle.seek(-5, 2)
            handle.truncate()        # torn tail, no trailing newline
        journal.record_accepted("k2", REQUEST)
        # the repair newline keeps the torn line and the new record
        # from fusing into one unparseable line
        assert [e["key"] for e in journal.load()] == ["k2"]
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2

    def test_garbage_lines_are_skipped_not_fatal(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST)
        with journal.path.open("a") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"no": "event field"}) + "\n")
        journal.record_accepted("k2", REQUEST)
        assert [e["key"] for e in journal.load()] == ["k1", "k2"]

    def test_missing_file_loads_empty(self, tmp_path):
        journal = journal_at(tmp_path)
        assert journal.load() == []
        assert journal.pending() == []
        assert journal.compact() == 0


class TestCompaction:
    def test_compact_drops_answered_pairs(self, tmp_path):
        journal = journal_at(tmp_path)
        for index in range(5):
            journal.record_accepted(f"k{index}", REQUEST)
        for index in range(4):
            journal.record_completed(f"k{index}")
        dropped = journal.compact()
        assert dropped == 8          # 4 accepted + 4 completed retired
        assert [e["key"] for e in journal.load()] == ["k4"]
        assert [e["key"] for e in journal.pending()] == ["k4"]

    def test_compact_is_idempotent(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST)
        journal.record_completed("k1")
        journal.record_accepted("k2", REQUEST)
        assert journal.compact() > 0
        before = journal.path.read_text()
        assert journal.compact() == 0
        assert journal.path.read_text() == before

    def test_compacted_file_still_replays(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record_accepted("k1", REQUEST, tenant="t")
        journal.record_completed("k0")       # stray completion
        journal.compact()
        entry = journal.pending()[0]
        assert entry["key"] == "k1"
        assert entry["tenant"] == "t"


class TestInjectedFailure:
    def test_injected_write_failure_raises_oserror(self, tmp_path):
        journal = journal_at(tmp_path)
        faults.install(faults.FaultPlan(marker_dir=str(tmp_path / "m"),
                                        journal_fail_times=1))
        with pytest.raises(OSError, match="injected"):
            journal.record_accepted("k1", REQUEST)
        # exactly one failure: the next append goes through
        journal.record_accepted("k1", REQUEST)
        assert [e["key"] for e in journal.pending()] == ["k1"]
