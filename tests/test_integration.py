"""Cross-module integration tests: the full pipelines the paper runs."""

import pytest

from repro import TwoQANCompiler, nnn_heisenberg, nnn_ising, trotter_step
from repro.baselines import (
    compile_ic_qaoa,
    compile_qiskit_like,
    compile_tket_like,
)
from repro.core.unify import unify_circuit_operators
from repro.devices import aspen, grid, line, montreal, sycamore
from repro.hamiltonians.models import nnn_xy
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph
from repro.noise.estimator import noisy_normalized_cost
from repro.verification import (
    verify_commuting_equivalence,
    verify_compilation,
    verify_operator_conservation,
)


class TestFullPipelineSemantics:
    """Compile with exact angles on problem-sized devices and verify."""

    @pytest.mark.parametrize("model,n,device_factory", [
        (nnn_ising, 6, lambda: grid(2, 3)),
        (nnn_xy, 6, lambda: grid(2, 3)),
        (nnn_heisenberg, 5, lambda: line(5)),
    ])
    @pytest.mark.parametrize("gateset", ["CNOT", "ISWAP"])
    def test_unitary_correct(self, model, n, device_factory, gateset):
        step = unify_circuit_operators(trotter_step(model(n, seed=1)))
        compiler = TwoQANCompiler(device_factory(), gateset, seed=3,
                                  solve_angles=True)
        result = compiler.compile(step)
        assert verify_operator_conservation(result, step)
        assert verify_compilation(result, step)

    def test_qaoa_layer_exact(self):
        g = random_regular_graph(3, 6, seed=5)
        problem = QAOAProblem(g, (0.45,), (-0.35,))
        step = unify_circuit_operators(problem.layer_step(0))
        compiler = TwoQANCompiler(grid(2, 3), "CNOT", seed=2,
                                  solve_angles=True)
        result = compiler.compile(step)
        assert verify_commuting_equivalence(result, step)


class TestCrossDeviceConsistency:
    """2QAN must win on every device/gate-set combination."""

    @pytest.mark.parametrize("device_factory,gateset", [
        (montreal, "CNOT"),
        (sycamore, "SYC"),
        (aspen, "ISWAP"),
        (sycamore, "CZ"),
        (aspen, "CZ"),
    ])
    def test_2qan_at_most_baseline_gates(self, device_factory, gateset):
        device = device_factory()
        step = trotter_step(nnn_heisenberg(10, seed=2))
        ours = TwoQANCompiler(device, gateset, seed=1).compile(step)
        tket = compile_tket_like(step, device, gateset, seed=1)
        qiskit = compile_qiskit_like(step, device, gateset, seed=1)
        assert ours.metrics.n_two_qubit_gates <= \
            tket.metrics.n_two_qubit_gates
        assert ours.metrics.n_two_qubit_gates <= \
            qiskit.metrics.n_two_qubit_gates

    def test_swap_counts_ordered(self):
        device = montreal()
        g = random_regular_graph(3, 14, seed=3)
        step = QAOAProblem(g, (0.35,), (-0.39,)).layer_step(0)
        ours = TwoQANCompiler(device, "CNOT", seed=1).compile(step)
        ic = compile_ic_qaoa(step, device, "CNOT", seed=1)
        tket = compile_tket_like(step, device, "CNOT", seed=1)
        assert ours.metrics.n_swaps <= ic.metrics.n_swaps
        assert ours.metrics.n_two_qubit_gates <= \
            min(ic.metrics.n_two_qubit_gates,
                tket.metrics.n_two_qubit_gates)


class TestFidelityOrdering:
    """Figure 10's message: lower compiled cost -> higher fidelity."""

    def test_2qan_highest_estimated_fidelity(self):
        device = montreal()
        g = random_regular_graph(3, 12, seed=7)
        problem = QAOAProblem(g, (0.35,), (-0.39,))
        step = problem.layer_step(0)
        ideal = problem.normalized_cost()

        ours = TwoQANCompiler(device, "CNOT", seed=1).compile(step)
        ic = compile_ic_qaoa(step, device, "CNOT", seed=1)
        tket = compile_tket_like(step, device, "CNOT", seed=1)
        qiskit = compile_qiskit_like(step, device, "CNOT", seed=1)

        scores = {
            name: noisy_normalized_cost(ideal, r.metrics, 12)
            for name, r in [("2qan", ours), ("ic", ic), ("tket", tket),
                            ("qiskit", qiskit)]
        }
        assert scores["2qan"] == max(scores.values())
        assert scores["2qan"] > scores["qiskit"]
        assert all(0 <= v <= ideal for v in scores.values())


class TestScalability:
    def test_fifty_qubit_heisenberg_compiles(self):
        """The paper's largest benchmark size must run (on Sycamore)."""
        step = trotter_step(nnn_heisenberg(50, seed=0))
        compiler = TwoQANCompiler(sycamore(), "SYC", seed=0,
                                  mapping_trials=1)
        result = compiler.compile(step)
        unified_pairs = 2 * 50 - 3
        executed = sum(
            1 for g in result.scheduled.to_circuit().gates
            if g.name in ("APP2Q", "DRESSED_SWAP")
        )
        assert executed == unified_pairs
        assert result.metrics.n_two_qubit_gates >= unified_pairs * 3
