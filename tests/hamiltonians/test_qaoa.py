"""Tests for QAOA problems, light-cone expectations, and angle setting."""

import numpy as np
import pytest

from repro.hamiltonians.qaoa import (
    FIXED_ANGLES_3REG,
    QAOAProblem,
    cost_diagonal,
    make_qaoa_problem,
    maxcut_hamiltonian,
    minimum_cost,
    optimal_angles_p1,
    random_regular_graph,
)


class TestGraphs:
    def test_regular_degree(self):
        g = random_regular_graph(3, 10, seed=0)
        assert all(d == 3 for _, d in g.degree)

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(3, 5, seed=0)

    def test_edge_count(self):
        g = random_regular_graph(3, 12, seed=1)
        assert g.number_of_edges() == 18  # 3n/2


class TestCostFunction:
    def test_hamiltonian_terms(self):
        g = random_regular_graph(3, 8, seed=0)
        h = maxcut_hamiltonian(g)
        assert len(h.two_qubit_terms) == g.number_of_edges()
        assert h.all_terms_commute()

    def test_diagonal_all_equal_state(self):
        g = random_regular_graph(3, 6, seed=0)
        diag = cost_diagonal(g, 6)
        assert diag[0] == g.number_of_edges()      # all zeros: no cut
        assert diag[-1] == g.number_of_edges()     # all ones: no cut

    def test_diagonal_symmetry(self):
        """Global bit flip leaves the ZZ cost invariant."""
        g = random_regular_graph(3, 6, seed=1)
        diag = cost_diagonal(g, 6)
        assert np.allclose(diag, diag[::-1])

    def test_minimum_cost_negative(self):
        g = random_regular_graph(3, 8, seed=0)
        assert minimum_cost(g, 8) < 0

    def test_triangle_frustration(self):
        import networkx as nx
        g = nx.cycle_graph(3)
        # a triangle cannot be fully cut: min cost = 3 - 2*2 = -1
        assert minimum_cost(g, 3) == -1


class TestExpectations:
    def test_lightcone_matches_statevector_p1(self):
        g = random_regular_graph(3, 8, seed=2)
        p = QAOAProblem(g, (0.6,), (-0.4,))
        assert np.isclose(
            p._expectation_statevector(), p._expectation_lightcone(),
            atol=1e-9,
        )

    def test_lightcone_matches_statevector_p2(self):
        g = random_regular_graph(3, 8, seed=2)
        p = QAOAProblem(g, (0.4, 0.7), (0.5, -0.3))
        assert np.isclose(
            p._expectation_statevector(), p._expectation_lightcone(),
            atol=1e-9,
        )

    def test_zero_angles_random_guess(self):
        g = random_regular_graph(3, 8, seed=0)
        p = QAOAProblem(g, (0.0,), (0.0,))
        assert abs(p.expectation()) < 1e-9
        assert abs(p.normalized_cost()) < 1e-9

    def test_normalized_cost_bounded(self):
        g = random_regular_graph(3, 8, seed=3)
        p = QAOAProblem(g, (0.35,), (-0.39,))
        assert -1.0 <= p.normalized_cost() <= 1.0

    def test_layer_mismatch_rejected(self):
        g = random_regular_graph(3, 4, seed=0)
        with pytest.raises(ValueError):
            QAOAProblem(g, (0.1, 0.2), (0.3,))


class TestAngles:
    def test_p1_optimum_beats_generic(self):
        g = random_regular_graph(3, 8, seed=4)
        gamma, beta = optimal_angles_p1(g, resolution=24)
        best = QAOAProblem(g, (gamma,), (beta,)).normalized_cost()
        generic = QAOAProblem(g, (0.35,), (-0.39,)).normalized_cost()
        assert best >= generic - 1e-9
        assert best > 0.3

    def test_fixed_angles_improve_with_depth(self):
        g = random_regular_graph(3, 10, seed=5)
        r1 = QAOAProblem(g, (0.35,), (-0.39,)).normalized_cost()
        g2, b2 = FIXED_ANGLES_3REG[2]
        r2 = QAOAProblem(g, g2, b2).normalized_cost()
        g3, b3 = FIXED_ANGLES_3REG[3]
        r3 = QAOAProblem(g, g3, b3).normalized_cost()
        assert r2 > r1
        assert r3 > r2

    def test_make_problem_layers(self):
        p = make_qaoa_problem(8, n_layers=2, seed=0)
        assert p.n_layers == 2
        assert p.n_qubits == 8


class TestCircuits:
    def test_layer_step_counts(self):
        g = random_regular_graph(3, 8, seed=0)
        p = QAOAProblem(g, (0.6,), (0.4,))
        step = p.layer_step(0)
        assert len(step.two_qubit_ops) == 12  # 3n/2
        assert len(step.one_qubit_ops) == 8

    def test_ideal_circuit_structure(self):
        g = random_regular_graph(3, 6, seed=0)
        p = QAOAProblem(g, (0.6,), (0.4,))
        c = p.ideal_circuit()
        assert c.count("H") == 6
        assert sum(1 for gate in c if gate.name == "APP2Q") == 9
