"""Tests for 2-local Hamiltonian containers."""

import numpy as np
import pytest

from repro.hamiltonians.hamiltonian import Term, TwoLocalHamiltonian
from repro.quantum.pauli import PauliString


def sample_hamiltonian():
    h = TwoLocalHamiltonian(3)
    h.add(0.5, "ZZ", (0, 1))
    h.add(0.3, "ZZ", (1, 2))
    h.add(0.2, "XX", (0, 1))
    h.add(1.0, "X", (0,))
    return h


class TestConstruction:
    def test_add_and_count(self):
        h = sample_hamiltonian()
        assert len(h.terms) == 4
        assert len(h.two_qubit_terms) == 3
        assert len(h.single_qubit_terms) == 1

    def test_three_local_rejected(self):
        h = TwoLocalHamiltonian(3)
        with pytest.raises(ValueError):
            h.terms.append(None) or h.add(1.0, "XXX", (0, 1, 2))

    def test_out_of_range_rejected(self):
        h = TwoLocalHamiltonian(2)
        with pytest.raises(ValueError):
            h.add(1.0, "ZZ", (0, 5))

    def test_term_str(self):
        t = Term(0.5, PauliString.from_label("ZZ", (0, 1)))
        assert "Z0*Z1" in str(t)


class TestStructure:
    def test_interaction_edges_distinct(self):
        h = sample_hamiltonian()
        assert h.interaction_edges() == [(0, 1), (1, 2)]

    def test_terms_on_pair(self):
        h = sample_hamiltonian()
        assert len(h.terms_on_pair((0, 1))) == 2
        assert len(h.terms_on_pair((1, 0))) == 2  # unordered
        assert len(h.terms_on_pair((0, 2))) == 0

    def test_interaction_counts(self):
        h = sample_hamiltonian()
        counts = h.interaction_counts()
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1


class TestSemantics:
    def test_to_matrix_hermitian(self):
        h = sample_hamiltonian()
        m = h.to_matrix()
        assert np.allclose(m, m.conj().T)

    def test_to_matrix_values(self):
        h = TwoLocalHamiltonian(2)
        h.add(0.7, "ZZ", (0, 1))
        m = h.to_matrix()
        assert np.allclose(np.diag(m), [0.7, -0.7, -0.7, 0.7])

    def test_matrix_size_guard(self):
        h = TwoLocalHamiltonian(13)
        with pytest.raises(ValueError):
            h.to_matrix()

    def test_all_commute_ising(self):
        h = TwoLocalHamiltonian(3)
        h.add(1.0, "ZZ", (0, 1))
        h.add(1.0, "ZZ", (1, 2))
        assert h.all_terms_commute()

    def test_not_all_commute_xy(self):
        h = TwoLocalHamiltonian(3)
        h.add(1.0, "XX", (0, 1))
        h.add(1.0, "YY", (1, 2))
        assert not h.all_terms_commute()
