"""Tests for product-formula construction."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.trotter import (
    TwoQubitOperator,
    second_order_step,
    trotter_step,
)


class TestOperators:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            TwoQubitOperator((2, 1), np.eye(4, dtype=complex))

    def test_shape_enforced(self):
        with pytest.raises(ValueError):
            TwoQubitOperator((0, 1), np.eye(2, dtype=complex))

    def test_merge_same_pair(self):
        a = TwoQubitOperator((0, 1), np.diag([1, 1j, 1j, 1]).astype(complex),
                             "a")
        b = TwoQubitOperator((0, 1), np.diag([1, -1, -1, 1]).astype(complex),
                             "b")
        merged = a.merged_with(b)
        assert np.allclose(merged.unitary, b.unitary @ a.unitary)
        assert "a" in merged.label and "b" in merged.label

    def test_merge_different_pairs_rejected(self):
        a = TwoQubitOperator((0, 1), np.eye(4, dtype=complex))
        b = TwoQubitOperator((1, 2), np.eye(4, dtype=complex))
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestTrotterStep:
    def test_one_operator_per_term(self):
        h = nnn_heisenberg(6, seed=0)
        step = trotter_step(h)
        assert len(step.two_qubit_ops) == len(h.two_qubit_terms)

    def test_single_qubit_ops_captured(self):
        h = nnn_ising(5, seed=0)
        step = trotter_step(h)
        assert len(step.one_qubit_ops) == 5

    def test_operator_unitaries_are_exponentials(self):
        h = TwoLocalHamiltonian(2)
        h.add(0.6, "ZZ", (0, 1))
        step = trotter_step(h, t=1.0)
        z = np.diag([1, -1]).astype(complex)
        expected = sla.expm(1j * 0.6 * np.kron(z, z))
        assert np.allclose(step.two_qubit_ops[0].unitary, expected)

    def test_time_parameter_scales(self):
        h = TwoLocalHamiltonian(2)
        h.add(0.6, "ZZ", (0, 1))
        half = trotter_step(h, t=0.5).two_qubit_ops[0].unitary
        full = trotter_step(h, t=1.0).two_qubit_ops[0].unitary
        assert np.allclose(half @ half, full)

    def test_circuit_preserves_order(self):
        h = nnn_ising(4, seed=0)
        step = trotter_step(h)
        circuit = step.circuit()
        labels = [g.meta["label"] for g in circuit if g.name == "APP2Q"]
        assert labels == [op.label for op in step.two_qubit_ops]

    def test_interaction_counts(self):
        h = nnn_heisenberg(4, seed=0)
        counts = trotter_step(h).interaction_counts()
        # three Pauli terms per pair before unifying
        assert all(v == 3 for v in counts.values())

    def test_trotter_approximates_evolution(self):
        """(V(t/r))^r converges to exp(iHt) as r grows."""
        h = TwoLocalHamiltonian(3)
        h.add(0.4, "XX", (0, 1))
        h.add(0.3, "ZZ", (1, 2))
        h.add(0.2, "YY", (0, 2))
        exact = sla.expm(1j * h.to_matrix())
        errors = []
        for r in (1, 4, 16):
            step = trotter_step(h, t=1.0 / r)
            v = step.circuit().unitary()
            approx = np.linalg.matrix_power(v, r)
            errors.append(np.abs(approx - exact).max())
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]
        assert errors[2] < 0.01


class TestSecondOrder:
    def test_reversed_halves(self):
        h = nnn_heisenberg(4, seed=0)
        forward, backward = second_order_step(h, t=1.0)
        assert [op.label for op in backward.two_qubit_ops] == list(
            reversed([op.label for op in forward.two_qubit_ops])
        )

    def test_second_order_more_accurate(self):
        h = TwoLocalHamiltonian(3)
        h.add(0.4, "XX", (0, 1))
        h.add(0.5, "ZZ", (1, 2))
        h.add(0.3, "YY", (0, 2))
        exact = sla.expm(1j * h.to_matrix())
        first = trotter_step(h, t=1.0).circuit().unitary()
        fwd, bwd = second_order_step(h, t=1.0)
        second = bwd.circuit().unitary() @ fwd.circuit().unitary()
        err1 = np.abs(first - exact).max()
        err2 = np.abs(second - exact).max()
        assert err2 < err1
