"""Tests for the benchmark model builders (paper Section IV)."""

import numpy as np
import pytest

from repro.hamiltonians.models import (
    MODEL_BUILDERS,
    heisenberg_lattice,
    nnn_heisenberg,
    nnn_ising,
    nnn_xy,
)


class TestNNNModels:
    @pytest.mark.parametrize("n", [4, 6, 10, 20])
    def test_ising_term_counts(self, n):
        """The paper: 2n-3 two-qubit interactions per Trotter step."""
        h = nnn_ising(n, seed=0)
        assert len(h.interaction_edges()) == 2 * n - 3
        assert len(h.two_qubit_terms) == 2 * n - 3
        assert len(h.single_qubit_terms) == n

    @pytest.mark.parametrize("n", [4, 6, 10])
    def test_xy_term_counts(self, n):
        h = nnn_xy(n, seed=0)
        assert len(h.interaction_edges()) == 2 * n - 3
        assert len(h.two_qubit_terms) == 2 * (2 * n - 3)

    @pytest.mark.parametrize("n", [4, 6, 10])
    def test_heisenberg_term_counts(self, n):
        h = nnn_heisenberg(n, seed=0)
        assert len(h.interaction_edges()) == 2 * n - 3
        assert len(h.two_qubit_terms) == 3 * (2 * n - 3)

    def test_nnn_connectivity(self):
        h = nnn_ising(5, seed=0)
        edges = set(h.interaction_edges())
        assert (0, 1) in edges and (0, 2) in edges
        assert (0, 3) not in edges

    def test_coefficients_in_range(self):
        h = nnn_heisenberg(8, seed=1)
        for term in h.terms:
            assert 0 < term.coefficient < np.pi

    def test_seed_reproducible(self):
        a = nnn_ising(6, seed=3)
        b = nnn_ising(6, seed=3)
        assert [t.coefficient for t in a.terms] == [
            t.coefficient for t in b.terms
        ]

    def test_different_seeds_differ(self):
        a = nnn_ising(6, seed=3)
        b = nnn_ising(6, seed=4)
        assert [t.coefficient for t in a.terms] != [
            t.coefficient for t in b.terms
        ]

    def test_pauli_types(self):
        ising = nnn_ising(5, seed=0)
        labels = {str(t.pauli)[0] for t in ising.two_qubit_terms}
        assert labels == {"Z"}
        xy = nnn_xy(5, seed=0)
        labels = {str(t.pauli)[0] for t in xy.two_qubit_terms}
        assert labels == {"X", "Y"}


class TestLattices:
    def test_1d_chain(self):
        h = heisenberg_lattice((30,))
        assert h.n_qubits == 30
        assert len(h.interaction_edges()) == 29

    def test_2d_grid(self):
        h = heisenberg_lattice((5, 6))
        assert h.n_qubits == 30
        # 5x6 grid: 5*5 + 4*6 = 49 edges
        assert len(h.interaction_edges()) == 49

    def test_3d_lattice(self):
        h = heisenberg_lattice((2, 3, 5))
        assert h.n_qubits == 30
        # edges: x-dir 1*3*5 + y-dir 2*2*5 + z-dir 2*3*4 = 15+20+24 = 59
        assert len(h.interaction_edges()) == 59

    def test_three_terms_per_edge(self):
        h = heisenberg_lattice((2, 2))
        assert len(h.two_qubit_terms) == 3 * len(h.interaction_edges())


class TestRegistry:
    def test_all_builders_present(self):
        assert set(MODEL_BUILDERS) == {
            "NNN_Ising", "NNN_XY", "NNN_Heisenberg"
        }

    def test_builders_callable(self):
        for builder in MODEL_BUILDERS.values():
            h = builder(6, seed=0)
            assert h.n_qubits == 6
