"""Tests for randomized product formulas (the paper's future-work item)."""

import numpy as np

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.randomized import (
    fixed_order_steps,
    permuted_step,
    random_order_steps,
    trotter_error,
)
from repro.hamiltonians.trotter import trotter_step


def small_hamiltonian():
    h = TwoLocalHamiltonian(4)
    h.add(0.9, "XX", (0, 1))
    h.add(0.7, "ZZ", (1, 2))
    h.add(0.5, "YY", (2, 3))
    h.add(0.4, "XX", (0, 3))
    h.add(0.3, "ZZ", (0, 2))
    return h


class TestPermutation:
    def test_permuted_step_same_multiset(self):
        step = trotter_step(small_hamiltonian())
        rng = np.random.default_rng(0)
        shuffled = permuted_step(step, rng)
        assert sorted(op.label for op in shuffled.two_qubit_ops) == \
            sorted(op.label for op in step.two_qubit_ops)

    def test_random_steps_differ(self):
        steps = random_order_steps(small_hamiltonian(), 6, seed=1)
        orders = {
            tuple(op.label for op in step.two_qubit_ops) for step in steps
        }
        assert len(orders) > 1

    def test_fixed_steps_identical(self):
        steps = fixed_order_steps(small_hamiltonian(), 4)
        orders = {
            tuple(op.label for op in step.two_qubit_ops) for step in steps
        }
        assert len(orders) == 1


class TestErrors:
    def test_error_decreases_with_steps(self):
        h = small_hamiltonian()
        errors = [
            trotter_error(h, fixed_order_steps(h, r), total_time=1.0)
            for r in (1, 4, 16)
        ]
        assert errors[2] < errors[1] < errors[0]

    def test_any_order_is_valid_first_order(self):
        """A random ordering has the same asymptotic accuracy."""
        h = small_hamiltonian()
        fixed = trotter_error(h, fixed_order_steps(h, 16))
        random = trotter_error(h, random_order_steps(h, 16, seed=3))
        # same order of magnitude (both first-order in 1/r)
        assert random < 10 * fixed + 1e-9
        assert fixed < 10 * random + 1e-9

    def test_randomization_competitive_at_many_steps(self):
        """Random orderings average coherent errors (Campbell/COS)."""
        h = small_hamiltonian()
        fixed = trotter_error(h, fixed_order_steps(h, 32))
        randomized = np.mean([
            trotter_error(h, random_order_steps(h, 32, seed=s))
            for s in range(3)
        ])
        assert randomized < 3 * fixed


class TestWeightedGraphs:
    def test_regular_graph_deterministic(self):
        from repro.hamiltonians.randomized import weighted_regular_graph

        a = weighted_regular_graph(3, 8, seed=4)
        b = weighted_regular_graph(3, 8, seed=4)
        assert sorted(a.edges) == sorted(b.edges)
        assert all(a.edges[e]["weight"] == b.edges[e]["weight"]
                   for e in a.edges)
        assert all(d == 3 for _, d in a.degree)

    def test_regular_graph_odd_product_rejected(self):
        import pytest

        from repro.hamiltonians.randomized import weighted_regular_graph

        with pytest.raises(ValueError):
            weighted_regular_graph(3, 7)

    def test_weights_drawn_from_alphabet(self):
        from repro.hamiltonians.randomized import (
            DYADIC_WEIGHTS,
            weighted_erdos_renyi_graph,
            weighted_regular_graph,
        )

        for graph in (weighted_regular_graph(3, 10, seed=1),
                      weighted_erdos_renyi_graph(10, seed=1)):
            weights = {graph.edges[e]["weight"] for e in graph.edges}
            assert weights <= set(DYADIC_WEIGHTS)

    def test_erdos_renyi_edgeless_rejected(self):
        import pytest

        from repro.hamiltonians.randomized import weighted_erdos_renyi_graph

        with pytest.raises(ValueError):
            weighted_erdos_renyi_graph(4, p=0.0, seed=0)

    def test_weighted_maxcut_problem_kinds_and_label(self):
        import pytest

        from repro.hamiltonians.randomized import weighted_maxcut_problem

        problem = weighted_maxcut_problem(8, kind="regular", seed=2)
        assert problem.label == "MAXCUT-W-regular-n8-s2"
        er = weighted_maxcut_problem(8, kind="erdos-renyi", seed=2)
        assert er.label == "MAXCUT-W-erdos-renyi-n8-s2"
        with pytest.raises(ValueError):
            weighted_maxcut_problem(8, kind="nope")

    def test_weights_flow_into_hamiltonian(self):
        from repro.hamiltonians.qaoa import maxcut_hamiltonian
        from repro.hamiltonians.randomized import weighted_regular_graph

        graph = weighted_regular_graph(3, 8, seed=0)
        h = maxcut_hamiltonian(graph)
        by_pair = {term.qubits: term.coefficient for term in h.terms}
        for u, v in graph.edges:
            pair = (min(u, v), max(u, v))
            assert by_pair[pair] == graph.edges[u, v]["weight"]
