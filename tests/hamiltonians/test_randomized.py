"""Tests for randomized product formulas (the paper's future-work item)."""

import numpy as np

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.randomized import (
    fixed_order_steps,
    permuted_step,
    random_order_steps,
    trotter_error,
)
from repro.hamiltonians.trotter import trotter_step


def small_hamiltonian():
    h = TwoLocalHamiltonian(4)
    h.add(0.9, "XX", (0, 1))
    h.add(0.7, "ZZ", (1, 2))
    h.add(0.5, "YY", (2, 3))
    h.add(0.4, "XX", (0, 3))
    h.add(0.3, "ZZ", (0, 2))
    return h


class TestPermutation:
    def test_permuted_step_same_multiset(self):
        step = trotter_step(small_hamiltonian())
        rng = np.random.default_rng(0)
        shuffled = permuted_step(step, rng)
        assert sorted(op.label for op in shuffled.two_qubit_ops) == \
            sorted(op.label for op in step.two_qubit_ops)

    def test_random_steps_differ(self):
        steps = random_order_steps(small_hamiltonian(), 6, seed=1)
        orders = {
            tuple(op.label for op in step.two_qubit_ops) for step in steps
        }
        assert len(orders) > 1

    def test_fixed_steps_identical(self):
        steps = fixed_order_steps(small_hamiltonian(), 4)
        orders = {
            tuple(op.label for op in step.two_qubit_ops) for step in steps
        }
        assert len(orders) == 1


class TestErrors:
    def test_error_decreases_with_steps(self):
        h = small_hamiltonian()
        errors = [
            trotter_error(h, fixed_order_steps(h, r), total_time=1.0)
            for r in (1, 4, 16)
        ]
        assert errors[2] < errors[1] < errors[0]

    def test_any_order_is_valid_first_order(self):
        """A random ordering has the same asymptotic accuracy."""
        h = small_hamiltonian()
        fixed = trotter_error(h, fixed_order_steps(h, 16))
        random = trotter_error(h, random_order_steps(h, 16, seed=3))
        # same order of magnitude (both first-order in 1/r)
        assert random < 10 * fixed + 1e-9
        assert fixed < 10 * random + 1e-9

    def test_randomization_competitive_at_many_steps(self):
        """Random orderings average coherent errors (Campbell/COS)."""
        h = small_hamiltonian()
        fixed = trotter_error(h, fixed_order_steps(h, 32))
        randomized = np.mean([
            trotter_error(h, random_order_steps(h, 32, seed=s))
            for s in range(3)
        ])
        assert randomized < 3 * fixed
