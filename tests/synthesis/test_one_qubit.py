"""Tests for ZYZ single-qubit synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import standard_gate_unitary
from repro.quantum.unitaries import random_unitary
from repro.synthesis.one_qubit import (
    is_identity_up_to_phase,
    zyz_angles,
    zyz_matrix,
)


class TestRoundtrip:
    @given(st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_random_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary(2, rng)
        rebuilt = zyz_matrix(*zyz_angles(u))
        assert np.abs(rebuilt - u).max() < 1e-9

    @pytest.mark.parametrize("name", ["I", "X", "Y", "Z", "H", "S", "T"])
    def test_named_gates(self, name):
        u = standard_gate_unitary(name)
        rebuilt = zyz_matrix(*zyz_angles(u))
        assert np.abs(rebuilt - u).max() < 1e-9

    def test_diagonal_gate(self):
        u = np.diag([np.exp(0.3j), np.exp(-0.8j)])
        rebuilt = zyz_matrix(*zyz_angles(u))
        assert np.abs(rebuilt - u).max() < 1e-9

    def test_antidiagonal_gate(self):
        u = np.array([[0, np.exp(0.2j)], [np.exp(0.5j), 0]])
        rebuilt = zyz_matrix(*zyz_angles(u))
        assert np.abs(rebuilt - u).max() < 1e-9

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            zyz_angles(np.eye(4, dtype=complex))

    def test_theta_range(self, rng):
        for _ in range(10):
            _, _, theta, _ = zyz_angles(random_unitary(2, rng))
            assert 0 <= theta <= np.pi + 1e-12


class TestIdentityCheck:
    def test_identity(self):
        assert is_identity_up_to_phase(np.eye(2, dtype=complex))

    def test_global_phase(self):
        assert is_identity_up_to_phase(np.exp(0.4j) * np.eye(2))

    def test_z_is_not_phase(self):
        assert not is_identity_up_to_phase(np.diag([1, -1]).astype(complex))

    def test_x_is_not_phase(self):
        assert not is_identity_up_to_phase(standard_gate_unitary("X"))
