"""Tests for analytic CNOT-basis synthesis (paper Figure 5 behaviour)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import standard_gate_unitary
from repro.quantum.unitaries import random_unitary
from repro.synthesis.cnot_basis import cnot_count, decompose_to_cnots
from repro.synthesis.weyl import canonical_gate, weyl_coordinates

from tests.conftest import pauli_exponential

PI4 = math.pi / 4


def entangling_count(circuit):
    return sum(1 for g in circuit if g.n_qubits == 2)


class TestCounts:
    def test_identity_needs_zero(self):
        assert cnot_count((0.0, 0.0, 0.0)) == 0

    def test_cnot_class_needs_one(self):
        assert cnot_count((PI4, 0.0, 0.0)) == 1

    def test_z_zero_needs_two(self):
        assert cnot_count((0.3, 0.2, 0.0)) == 2

    def test_generic_needs_three(self):
        assert cnot_count((0.3, 0.2, 0.1)) == 3
        assert cnot_count((PI4, PI4, PI4)) == 3

    def test_mirror_needs_three(self):
        assert cnot_count((0.3, 0.2, -0.1)) == 3


class TestPaperFigure5:
    """SWAP = 3 CNOTs; exp(i theta ZZ) = 2 CNOTs; dressed SWAP = 3 CNOTs."""

    def test_swap_three_cnots(self):
        circuit, phase = decompose_to_cnots(standard_gate_unitary("SWAP"))
        assert entangling_count(circuit) == 3

    def test_zz_rotation_two_cnots(self):
        u = pauli_exponential(0, 0, 0.8)
        circuit, phase = decompose_to_cnots(u)
        assert entangling_count(circuit) == 2
        assert np.abs(phase * circuit.unitary() - u).max() < 1e-7

    def test_dressed_swap_three_not_five(self, dressed_swap_unitary):
        circuit, phase = decompose_to_cnots(dressed_swap_unitary)
        assert entangling_count(circuit) == 3
        assert np.abs(
            phase * circuit.unitary() - dressed_swap_unitary
        ).max() < 1e-7

    def test_heisenberg_term_three_cnots(self, heisenberg_unitary):
        """Three unified Heisenberg Paulis cost 3 CNOTs, not 6."""
        circuit, phase = decompose_to_cnots(heisenberg_unitary)
        assert entangling_count(circuit) == 3
        assert np.abs(
            phase * circuit.unitary() - heisenberg_unitary
        ).max() < 1e-7

    def test_xy_term_two_cnots(self):
        u = pauli_exponential(0.5, 0.7, 0)
        circuit, _ = decompose_to_cnots(u)
        assert entangling_count(circuit) == 2


class TestExactness:
    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_random_unitaries_exact(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary(4, rng)
        circuit, phase = decompose_to_cnots(u)
        assert np.abs(phase * circuit.unitary() - u).max() < 1e-6
        assert entangling_count(circuit) <= 3

    @given(
        x=st.floats(0.02, PI4 - 0.02),
        y=st.floats(0.02, PI4 - 0.02),
        z=st.floats(-PI4 + 0.02, PI4 - 0.02),
    )
    @settings(max_examples=30, deadline=None)
    def test_canonical_gates_exact(self, x, y, z):
        u = canonical_gate(x, y, z)
        circuit, phase = decompose_to_cnots(u)
        assert np.abs(phase * circuit.unitary() - u).max() < 1e-6

    def test_local_gate_zero_cnots(self, rng):
        u = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        circuit, phase = decompose_to_cnots(u)
        assert entangling_count(circuit) == 0
        assert np.abs(phase * circuit.unitary() - u).max() < 1e-7

    def test_count_matches_weyl_prediction(self, rng):
        for _ in range(10):
            u = random_unitary(4, rng)
            circuit, _ = decompose_to_cnots(u)
            assert entangling_count(circuit) == cnot_count(
                weyl_coordinates(u)
            )

    def test_cnot_itself_one_gate(self):
        circuit, phase = decompose_to_cnots(standard_gate_unitary("CNOT"))
        assert entangling_count(circuit) == 1
