"""Tests for the retargetable gate-set layer (CNOT / CZ / SYC / iSWAP)."""

import numpy as np
import pytest

from repro.quantum.gates import standard_gate_unitary
from repro.quantum.unitaries import random_unitary
from repro.synthesis.gateset import GATESETS, get_gateset

from tests.conftest import pauli_exponential


def entangling(circuit):
    return [g for g in circuit if g.n_qubits == 2]


class TestLookup:
    def test_all_four_bases(self):
        assert set(GATESETS) == {"CNOT", "CZ", "SYC", "ISWAP"}

    def test_case_insensitive(self):
        assert get_gateset("cnot").name == "CNOT"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_gateset("XX")


class TestCountsPerBasis:
    """Gate costs that drive every benchmark figure."""

    @pytest.mark.parametrize("basis,expected", [
        ("CNOT", 2), ("CZ", 2), ("SYC", 2), ("ISWAP", 2),
    ])
    def test_zz_rotation(self, basis, expected):
        gs = get_gateset(basis)
        assert gs.gates_needed(pauli_exponential(0, 0, 0.8)) == expected

    @pytest.mark.parametrize("basis", ["CNOT", "CZ", "SYC", "ISWAP"])
    def test_heisenberg_term_three(self, basis, heisenberg_unitary):
        assert get_gateset(basis).gates_needed(heisenberg_unitary) == 3

    @pytest.mark.parametrize("basis", ["CNOT", "CZ", "SYC", "ISWAP"])
    def test_swap_three(self, basis):
        swap = standard_gate_unitary("SWAP")
        assert get_gateset(basis).gates_needed(swap) == 3

    @pytest.mark.parametrize("basis", ["CNOT", "CZ", "SYC", "ISWAP"])
    def test_dressed_swap_three(self, basis, dressed_swap_unitary):
        assert get_gateset(basis).gates_needed(dressed_swap_unitary) == 3

    @pytest.mark.parametrize("basis", ["CNOT", "CZ", "SYC", "ISWAP"])
    def test_local_zero(self, basis, rng):
        u = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        assert get_gateset(basis).gates_needed(u) == 0

    def test_own_basis_one(self):
        assert get_gateset("SYC").gates_needed(
            standard_gate_unitary("SYC")
        ) == 1
        assert get_gateset("ISWAP").gates_needed(
            standard_gate_unitary("ISWAP")
        ) == 1
        assert get_gateset("CNOT").gates_needed(
            standard_gate_unitary("CNOT")
        ) == 1


class TestExactDecomposition:
    @pytest.mark.parametrize("basis", ["CNOT", "CZ"])
    def test_analytic_bases_random(self, basis, rng):
        gs = get_gateset(basis)
        for _ in range(5):
            u = random_unitary(4, rng)
            circuit, phase = gs.decompose(u, solve=True)
            assert np.abs(phase * circuit.unitary() - u).max() < 1e-6
            names = {g.name for g in entangling(circuit)}
            assert names <= {basis}

    @pytest.mark.parametrize("basis", ["SYC", "ISWAP"])
    def test_numerical_bases_structured(self, basis, dressed_swap_unitary):
        gs = get_gateset(basis)
        for target in (
            pauli_exponential(0, 0, 0.8),
            dressed_swap_unitary,
        ):
            circuit, phase = gs.decompose(target, solve=True, seed=5)
            assert np.abs(phase * circuit.unitary() - target).max() < 1e-6
            assert {g.name for g in entangling(circuit)} <= {basis}

    @pytest.mark.parametrize("basis", ["CNOT", "CZ", "SYC", "ISWAP"])
    def test_structural_mode_counts_match(self, basis, heisenberg_unitary):
        gs = get_gateset(basis)
        solved, _ = gs.decompose(heisenberg_unitary, solve=True, seed=2)
        structural, _ = gs.decompose(heisenberg_unitary, solve=False)
        assert len(entangling(solved)) == len(entangling(structural))

    def test_cz_basis_uses_only_cz(self, rng):
        circuit, _ = get_gateset("CZ").decompose(random_unitary(4, rng))
        for gate in entangling(circuit):
            assert gate.name == "CZ"
