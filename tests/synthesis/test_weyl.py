"""Tests for the KAK / Weyl-chamber decomposition."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import standard_gate_unitary
from repro.quantum.unitaries import random_su2, random_unitary
from repro.synthesis.weyl import (
    canonical_gate,
    kak_decompose,
    mirror_x_z,
    weyl_coordinates,
)

PI4 = math.pi / 4


class TestCanonicalGate:
    def test_identity(self):
        assert np.allclose(canonical_gate(0, 0, 0), np.eye(4))

    def test_commuting_factorization(self):
        u = canonical_gate(0.3, 0.2, 0.1)
        v = (canonical_gate(0.3, 0, 0) @ canonical_gate(0, 0.2, 0)
             @ canonical_gate(0, 0, 0.1))
        assert np.allclose(u, v)

    def test_unitary(self):
        u = canonical_gate(0.5, -0.4, 1.2)
        assert np.allclose(u @ u.conj().T, np.eye(4))

    def test_iswap_is_canonical(self):
        iswap = standard_gate_unitary("ISWAP")
        assert np.allclose(canonical_gate(PI4, PI4, 0), iswap)


class TestKnownCoordinates:
    @pytest.mark.parametrize("name,expected", [
        ("CNOT", (PI4, 0.0, 0.0)),
        ("CZ", (PI4, 0.0, 0.0)),
        ("SWAP", (PI4, PI4, PI4)),
        ("ISWAP", (PI4, PI4, 0.0)),
        ("SYC", (PI4, PI4, math.pi / 24)),
    ])
    def test_standard_gate_classes(self, name, expected):
        coords = weyl_coordinates(standard_gate_unitary(name))
        assert np.allclose(coords, expected, atol=1e-7)

    def test_identity_class(self):
        assert np.allclose(weyl_coordinates(np.eye(4, dtype=complex)), 0.0)

    def test_interior_point_fixed(self):
        coords = weyl_coordinates(canonical_gate(0.3, 0.2, 0.1))
        assert np.allclose(coords, (0.3, 0.2, 0.1), atol=1e-8)

    def test_mirror_class_distinguished(self):
        plus = weyl_coordinates(canonical_gate(0.3, 0.2, 0.1))
        minus = weyl_coordinates(canonical_gate(0.3, 0.2, -0.1))
        assert np.allclose(plus, (0.3, 0.2, 0.1), atol=1e-8)
        assert np.allclose(minus, (0.3, 0.2, -0.1), atol=1e-8)

    def test_swap_dagger_same_class_as_swap(self):
        swap = standard_gate_unitary("SWAP")
        assert np.allclose(
            weyl_coordinates(swap.conj().T), (PI4, PI4, PI4), atol=1e-7
        )


class TestChamberInvariance:
    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_local_invariance(self, seed):
        """Weyl coordinates are invariant under single-qubit dressing."""
        rng = np.random.default_rng(seed)
        u = random_unitary(4, rng)
        locals_ = np.kron(random_su2(rng), random_su2(rng))
        locals2 = np.kron(random_su2(rng), random_su2(rng))
        a = weyl_coordinates(u)
        b = weyl_coordinates(locals_ @ u @ locals2)
        assert np.allclose(a, b, atol=1e-6)

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_coordinates_in_chamber(self, seed):
        rng = np.random.default_rng(seed)
        x, y, z = weyl_coordinates(random_unitary(4, rng))
        assert x <= PI4 + 1e-8
        assert x >= y - 1e-8
        assert y >= abs(z) - 1e-8

    def test_coordinate_folding(self):
        """Shifted generator angles fold into the chamber."""
        a = weyl_coordinates(canonical_gate(0.3 + math.pi / 2, 0.2, 0.1))
        assert np.allclose(a, (0.3, 0.2, 0.1), atol=1e-7)

    def test_sign_pair_folding(self):
        a = weyl_coordinates(canonical_gate(-0.3, -0.2, 0.1))
        assert np.allclose(a, (0.3, 0.2, 0.1), atol=1e-7)


class TestReconstruction:
    @given(st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_random_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        u = random_unitary(4, rng)
        d = kak_decompose(u)
        assert np.abs(d.reconstruct() - u).max() < 1e-6

    @pytest.mark.parametrize("name", ["CNOT", "CZ", "SWAP", "ISWAP", "SYC"])
    def test_clifford_roundtrip(self, name):
        u = standard_gate_unitary(name)
        d = kak_decompose(u)
        assert np.abs(d.reconstruct() - u).max() < 1e-6

    def test_locals_are_products(self, rng):
        u = random_unitary(4, rng)
        d = kak_decompose(u)
        for factor in (d.a1, d.a2, d.b1, d.b2):
            assert np.allclose(
                factor @ factor.conj().T, np.eye(2), atol=1e-7
            )

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            kak_decompose(np.eye(2, dtype=complex))


class TestMirror:
    def test_mirror_reconstructs(self, rng):
        u = random_unitary(4, rng)
        d = kak_decompose(u)
        m = mirror_x_z(d)
        assert np.abs(m.reconstruct() - u).max() < 1e-6

    def test_mirror_coordinates(self, rng):
        u = random_unitary(4, rng)
        d = kak_decompose(u)
        m = mirror_x_z(d)
        assert np.isclose(m.x, math.pi / 2 - d.x)
        assert np.isclose(m.y, d.y)
        assert np.isclose(m.z, -d.z)


class TestCanonicalizationMoves:
    """Regression tests for the move bookkeeping (permutation word table)."""

    def test_three_cycle_permutations(self, rng):
        """Coordinates requiring a 3-cycle sort must still reconstruct.

        Regression: the words for the two 3-cycles were once swapped,
        producing 'canonicalization mismatch' on coordinates like
        (small, tiny, large).
        """
        for raw in [(0.0086, 0.561, 0.352), (0.352, 0.0086, 0.561),
                    (0.561, 0.352, 0.0086)]:
            u = canonical_gate(*raw)
            d = kak_decompose(u)
            assert np.abs(d.reconstruct() - u).max() < 1e-7
            assert np.allclose(sorted(d.coordinates, reverse=True),
                               sorted(raw, reverse=True), atol=1e-7)

    def test_negative_coordinate_folding(self):
        for raw in [(-0.3, 0.2, -0.1), (0.3, -0.2, -0.1), (-0.3, -0.2, 0.1)]:
            u = canonical_gate(*raw)
            d = kak_decompose(u)
            assert np.abs(d.reconstruct() - u).max() < 1e-7
            x, y, z = d.coordinates
            assert PI4 + 1e-8 >= x >= y >= abs(z) - 1e-8

    def test_large_shift_folding(self):
        u = canonical_gate(0.3 + math.pi, 0.2 - math.pi / 2, 0.1)
        d = kak_decompose(u)
        assert np.abs(d.reconstruct() - u).max() < 1e-7
        assert np.allclose(d.coordinates, (0.3, 0.2, 0.1), atol=1e-7)

    def test_phase_preserved_exactly(self, rng):
        """reconstruct() must match including the global phase."""
        from repro.quantum.unitaries import random_unitary
        for _ in range(5):
            u = np.exp(1j * rng.uniform(0, 2 * math.pi)) * \
                random_unitary(4, rng)
            d = kak_decompose(u)
            assert np.abs(d.reconstruct() - u).max() < 1e-6
