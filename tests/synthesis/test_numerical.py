"""Tests for the numerical (SYC / iSWAP) decomposition machinery."""

import math

import numpy as np
import pytest

from repro.quantum.gates import standard_gate_unitary
from repro.quantum.unitaries import random_unitary
from repro.synthesis.numerical import (
    invariant_distance,
    makhlin_invariants,
    min_basis_gates,
    solve_sandwich,
)
from repro.synthesis.weyl import canonical_gate

from tests.conftest import pauli_exponential

PI4 = math.pi / 4
ISWAP = standard_gate_unitary("ISWAP")
SYC = standard_gate_unitary("SYC")
ISWAP_COORDS = (PI4, PI4, 0.0)
SYC_COORDS = (PI4, PI4, math.pi / 24)


class TestInvariants:
    def test_local_invariance(self, rng):
        u = random_unitary(4, rng)
        locals_ = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        g1a, g2a = makhlin_invariants(u)
        g1b, g2b = makhlin_invariants(locals_ @ u)
        assert abs(g1a - g1b) < 1e-9
        assert abs(g2a - g2b) < 1e-9

    def test_cnot_invariants(self):
        g1, g2 = makhlin_invariants(standard_gate_unitary("CNOT"))
        assert abs(g1) < 1e-9
        assert abs(g2 - 1.0) < 1e-9

    def test_identity_invariants(self):
        g1, g2 = makhlin_invariants(np.eye(4, dtype=complex))
        assert abs(g1 - 1.0) < 1e-9
        assert abs(g2 - 3.0) < 1e-9

    def test_distance_zero_same_class(self, rng):
        u = random_unitary(4, rng)
        locals_ = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        assert invariant_distance(u, locals_ @ u) < 1e-12

    def test_distance_positive_different_class(self):
        assert invariant_distance(
            standard_gate_unitary("CNOT"), standard_gate_unitary("SWAP")
        ) > 1e-3


class TestMinBasisGates:
    def test_identity_zero(self):
        assert min_basis_gates((0, 0, 0), ISWAP_COORDS) == 0

    def test_own_class_one(self):
        assert min_basis_gates(ISWAP_COORDS, ISWAP_COORDS) == 1
        assert min_basis_gates(SYC_COORDS, SYC_COORDS) == 1

    def test_z_zero_two(self):
        assert min_basis_gates((0.3, 0.1, 0.0), ISWAP_COORDS) == 2
        assert min_basis_gates((PI4, 0.0, 0.0), SYC_COORDS) == 2

    def test_generic_three(self):
        assert min_basis_gates((0.3, 0.2, 0.1), ISWAP_COORDS) == 3
        assert min_basis_gates((PI4, PI4, PI4), SYC_COORDS) == 3


class TestSandwichSolver:
    @pytest.mark.parametrize("basis", [ISWAP, SYC], ids=["iswap", "syc"])
    def test_two_gates_reach_cnot_class(self, basis):
        target = standard_gate_unitary("CNOT")
        solution = solve_sandwich(basis, 2, target, seed=1)
        assert solution is not None

    @pytest.mark.parametrize("basis", [ISWAP, SYC], ids=["iswap", "syc"])
    def test_two_gates_reach_zz_rotation(self, basis):
        target = pauli_exponential(0, 0, 0.8)
        solution = solve_sandwich(basis, 2, target, seed=1)
        assert solution is not None

    @pytest.mark.parametrize("basis", [ISWAP, SYC], ids=["iswap", "syc"])
    def test_two_gates_cannot_reach_swap(self, basis):
        target = standard_gate_unitary("SWAP")
        solution = solve_sandwich(basis, 2, target, seed=1, restarts=6)
        assert solution is None

    @pytest.mark.parametrize("basis", [ISWAP, SYC], ids=["iswap", "syc"])
    def test_three_gates_reach_generic(self, basis, rng):
        target = random_unitary(4, rng)
        solution = solve_sandwich(basis, 3, target, seed=1)
        assert solution is not None

    def test_one_gate_only_own_class(self):
        assert solve_sandwich(ISWAP, 1, ISWAP, seed=0) is not None
        assert solve_sandwich(
            ISWAP, 1, standard_gate_unitary("CNOT"), seed=0
        ) is None

    def test_zero_gates_identity_only(self):
        assert solve_sandwich(ISWAP, 0, np.eye(4, dtype=complex)) is not None
        assert solve_sandwich(ISWAP, 0, ISWAP) is None

    def test_solution_gates_structure(self):
        target = canonical_gate(0.4, 0.2, 0.0)
        solution = solve_sandwich(ISWAP, 2, target, seed=1)
        gates = solution.gates("ISWAP", ISWAP)
        two_q = [g for g in gates if g.n_qubits == 2]
        assert len(two_q) == 2
