"""Batched KAK synthesis must match the scalar reference bit for bit.

The batched engine (:mod:`repro.synthesis.batch`) is a pure performance
rewrite: every stacked stage reproduces the retained scalar path
(:mod:`repro.synthesis.weyl`, :mod:`repro.quantum.unitaries`) byte for
byte, falling back per matrix where it cannot.  These tests pin that
contract on randomized Haar batches and on the Weyl-chamber edge cases
where the candidate tie-break is most fragile.
"""

import math

import numpy as np
import pytest

from repro.quantum.gates import standard_gate_unitary
from repro.quantum.unitaries import closest_kron_factors, random_unitary
from repro.synthesis.batch import (
    batch_closest_kron_factors,
    batch_kak_decompose,
    batch_weyl_coordinates,
)
from repro.synthesis.weyl import canonical_gate, kak_decompose, weyl_coordinates


def _haar_batch(count: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [random_unitary(4, rng) for _ in range(count)]


def _edge_cases() -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [
        canonical_gate(math.pi / 4, 0.3, 0.1),    # x = pi/4 chamber boundary
        canonical_gate(math.pi / 4, math.pi / 4, 0.2),
        np.kron(random_unitary(2, rng), random_unitary(2, rng)),  # purely local
        np.eye(4, dtype=complex),
        standard_gate_unitary("SWAP"),            # exact SWAP
        standard_gate_unitary("CNOT"),
        standard_gate_unitary("CZ"),
        canonical_gate(0.4, 0.3, -0.2),           # z < 0 before reduction
        canonical_gate(0.4, 0.4, -0.1),
        canonical_gate(0.3, 0.0, 0.0),
    ]


def _assert_kak_identical(batched, scalar):
    assert batched.phase == scalar.phase
    assert batched.coordinates == scalar.coordinates
    for factor_b, factor_s in zip((batched.a1, batched.a2,
                                   batched.b1, batched.b2),
                                  (scalar.a1, scalar.a2,
                                   scalar.b1, scalar.b2)):
        assert factor_b.tobytes() == factor_s.tobytes()


class TestBatchWeylCoordinates:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_haar_random_matches_scalar(self, seed):
        matrices = _haar_batch(24, seed)
        batched = batch_weyl_coordinates(matrices)
        for matrix, coords in zip(matrices, batched):
            assert np.array_equal(coords, weyl_coordinates(matrix))

    def test_chamber_edge_cases_match_scalar(self):
        matrices = _edge_cases()
        batched = batch_weyl_coordinates(matrices)
        for matrix, coords in zip(matrices, batched):
            assert np.array_equal(coords, weyl_coordinates(matrix))

    def test_mixed_batch_order_independent(self):
        """Coordinates of a matrix don't depend on its batch neighbours."""
        matrices = _edge_cases() + _haar_batch(8, 11)
        alone = [batch_weyl_coordinates([m])[0] for m in matrices]
        together = batch_weyl_coordinates(matrices)
        for a, b in zip(alone, together):
            assert np.array_equal(a, b)


class TestBatchKronFactors:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_haar_kron_products_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        matrices = [np.kron(random_unitary(2, rng), random_unitary(2, rng))
                    for _ in range(16)]
        stack = np.ascontiguousarray(np.stack(matrices))
        batched_a, batched_b = batch_closest_kron_factors(stack)
        for i, matrix in enumerate(matrices):
            scalar_a, scalar_b = closest_kron_factors(matrix)
            assert batched_a[i].tobytes() == scalar_a.tobytes()
            assert batched_b[i].tobytes() == scalar_b.tobytes()


class TestBatchKAKDecompose:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_haar_random_matches_scalar(self, seed):
        matrices = _haar_batch(16, seed)
        for matrix, batched in zip(matrices, batch_kak_decompose(matrices)):
            _assert_kak_identical(batched, kak_decompose(matrix))

    def test_chamber_edge_cases_match_scalar(self):
        matrices = _edge_cases()
        for matrix, batched in zip(matrices, batch_kak_decompose(matrices)):
            _assert_kak_identical(batched, kak_decompose(matrix))

    def test_reconstruction_is_exact_enough(self):
        matrices = _haar_batch(8, 3)
        for matrix, result in zip(matrices, batch_kak_decompose(matrices)):
            assert np.max(np.abs(result.reconstruct() - matrix)) < 1e-6
