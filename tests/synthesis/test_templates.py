"""Decomposition templates: analytic Weyl coordinates + structure memo.

The analytic coordinates must match numeric KAK of the folded matrix
(that is what makes the template path safe), and the TemplateCache must
return byte-identical blocks to its DecomposeCache delegate.
"""

from __future__ import annotations

import pytest

from repro.core.decompose import DecomposeCache
from repro.quantum.gates import Gate
from repro.quantum.params import (
    PauliExponential,
    SymbolicUnitary,
    factor_template_key,
)
from repro.synthesis.gateset import get_gateset
from repro.synthesis.templates import (
    TemplateCache,
    analytic_weyl,
    predicted_cnot_count,
)
from repro.synthesis.weyl import weyl_coordinates

def _fold(factors, conjugate_swap=False, pre_swap=False):
    return SymbolicUnitary(tuple(factors), conjugate_swap=conjugate_swap,
                           pre_swap=pre_swap).bind({})


CASES = [
    (PauliExponential("zz", "", -0.35),),
    (PauliExponential("pauli", "XX", 0.7),),
    (PauliExponential("pauli", "XX", 0.4),
     PauliExponential("pauli", "YY", 0.4)),
    (PauliExponential("pauli", "XX", 0.3),
     PauliExponential("pauli", "YY", -0.8),
     PauliExponential("pauli", "ZZ", 1.9)),
]


@pytest.mark.parametrize("factors", CASES)
@pytest.mark.parametrize("conjugate_swap", [False, True])
@pytest.mark.parametrize("pre_swap", [False, True])
def test_analytic_weyl_matches_numeric_kak(factors, conjugate_swap,
                                           pre_swap):
    signatures = tuple(f.signature() for f in factors)
    angles = tuple(f.angle for f in factors)
    coords = analytic_weyl(signatures, angles, conjugate_swap, pre_swap)
    assert coords is not None
    numeric = weyl_coordinates(_fold(factors, conjugate_swap, pre_swap))
    assert coords == pytest.approx(numeric, abs=1e-9)


def test_unknown_structure_returns_none():
    assert analytic_weyl(("pauli:XY",), (0.3,)) is None
    assert predicted_cnot_count(("pauli:XY",), (0.3,)) is None


def test_predicted_cnot_count_zz():
    # a bare ZZ exponential needs 2 CNOTs; adding a SWAP makes it 3
    assert predicted_cnot_count(("zz:",), (-0.35,)) == 2
    assert predicted_cnot_count(("zz:",), (-0.35,), pre_swap=True) == 3
    # the identity (angle 0 mod pi) costs nothing
    assert predicted_cnot_count(("zz:",), (0.0,)) == 0


def test_template_cache_bit_identical_to_delegate_and_counts():
    gateset = get_gateset("CNOT")
    factors = (PauliExponential("zz", "", -0.35),)
    unitary = SymbolicUnitary(factors).bind({})
    gate = Gate("UNIFIED", (0, 1), matrix=unitary,
                meta={"template": factor_template_key(factors)})
    template = gate.meta["template"]

    templates = TemplateCache()
    delegate = DecomposeCache()
    block, phase = templates.get(gateset, gate, template, solve=False,
                                 seed=0, cache=delegate)
    direct_block, direct_phase = DecomposeCache().get(
        gateset, gate.unitary(), False, 0)
    assert phase == direct_phase
    assert [g.unitary().tobytes() for g in block.gates] == \
        [g.unitary().tobytes() for g in direct_block.gates]

    # second lookup hits the structure memo, not the delegate
    delegate_misses = delegate.misses
    again, _ = templates.get(gateset, gate, template, solve=False,
                             seed=0, cache=delegate)
    assert again is block
    assert delegate.misses == delegate_misses
    assert templates.stats() == {"hits": 1, "misses": 1, "size": 1,
                                 "maxsize": templates.maxsize}


def test_template_cache_lru_eviction():
    gateset = get_gateset("CNOT")
    delegate = DecomposeCache()
    templates = TemplateCache(maxsize=2)
    for angle in (0.1, 0.2, 0.3):
        factors = (PauliExponential("zz", "", angle),)
        gate = Gate("UNIFIED", (0, 1),
                    matrix=SymbolicUnitary(factors).bind({}),
                    meta={"template": factor_template_key(factors)})
        templates.get(gateset, gate, gate.meta["template"], solve=False,
                      seed=0, cache=delegate)
    assert len(templates) == 2
