"""Boundary fuzzing of the synthesis stack.

The Weyl chamber has walls (x = pi/4, y = 0, y = |z|, z = 0) where
canonicalization is degenerate and the Makhlin invariants flatten; these
tests hammer the analytic CNOT path (cheap, so many cases) and sample
the numerical SYC/iSWAP path on the boundary classes relevant to the
benchmarks (dressed SWAPs live at x = y = pi/4).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.unitaries import random_su2
from repro.synthesis.cnot_basis import decompose_to_cnots
from repro.synthesis.gateset import get_gateset
from repro.synthesis.weyl import canonical_gate, kak_decompose, weyl_coordinates

PI4 = math.pi / 4


def dressed(rng, x, y, z):
    """A locally-dressed canonical gate (random 1q clothing)."""
    left = np.kron(random_su2(rng), random_su2(rng))
    right = np.kron(random_su2(rng), random_su2(rng))
    return left @ canonical_gate(x, y, z) @ right


BOUNDARY_CLASSES = [
    (PI4, 0.3, 0.1),        # x wall
    (PI4, PI4, 0.2),        # x = y wall (dressed-SWAP territory)
    (PI4, PI4, -0.2),       # mirror at the wall
    (0.4, 0.4, 0.1),        # x = y interior
    (0.4, 0.2, 0.2),        # y = z wall
    (0.4, 0.2, -0.2),       # y = -z wall
    (0.4, 0.0, 0.0),        # y = z = 0 edge
    (PI4, PI4, PI4),        # SWAP corner
    (PI4, 0.0, 0.0),        # CNOT corner
    (1e-9, 1e-10, 0.0),     # near identity
]


class TestKakOnWalls:
    @pytest.mark.parametrize("coords", BOUNDARY_CLASSES,
                             ids=[str(i) for i in range(len(BOUNDARY_CLASSES))])
    def test_kak_roundtrip_on_walls(self, coords, rng):
        for _ in range(3):
            u = dressed(rng, *coords)
            d = kak_decompose(u)
            assert np.abs(d.reconstruct() - u).max() < 1e-6

    @pytest.mark.parametrize("coords", BOUNDARY_CLASSES,
                             ids=[str(i) for i in range(len(BOUNDARY_CLASSES))])
    def test_cnot_synthesis_on_walls(self, coords, rng):
        for _ in range(3):
            u = dressed(rng, *coords)
            circuit, phase = decompose_to_cnots(u)
            assert np.abs(phase * circuit.unitary() - u).max() < 1e-6

    @given(st.integers(0, 10**6), st.floats(0, PI4))
    @settings(max_examples=25, deadline=None)
    def test_x_wall_family(self, seed, y):
        """(pi/4, y, z=y) classes: two walls at once."""
        rng = np.random.default_rng(seed)
        u = dressed(rng, PI4, y, y)
        circuit, phase = decompose_to_cnots(u)
        assert np.abs(phase * circuit.unitary() - u).max() < 1e-6

    def test_coordinates_stable_under_dressing_on_walls(self, rng):
        for coords in BOUNDARY_CLASSES[:6]:
            u = dressed(rng, *coords)
            measured = weyl_coordinates(u)
            reference = weyl_coordinates(canonical_gate(*coords))
            assert np.allclose(measured, reference, atol=1e-6)


class TestNumericalOnWalls:
    @pytest.mark.parametrize("basis", ["SYC", "ISWAP"])
    def test_dressed_swap_classes(self, basis, rng):
        """x = y = pi/4 classes: where every dressed SWAP lives."""
        gs = get_gateset(basis)
        for z in (0.1, -0.1):
            u = dressed(rng, PI4, PI4, z)
            circuit, phase = gs.decompose(u, solve=True, seed=7)
            assert np.abs(phase * circuit.unitary() - u).max() < 1e-6

    @pytest.mark.parametrize("basis", ["SYC", "ISWAP"])
    def test_small_angle_rotations(self, basis):
        """Tiny ZZ angles (weak-coupling Trotter steps) stay 2 gates."""
        gs = get_gateset(basis)
        u = canonical_gate(0.01, 0.0, 0.0)
        assert gs.gates_needed(u) == 2
        circuit, phase = gs.decompose(u, solve=True, seed=1)
        assert np.abs(phase * circuit.unitary() - u).max() < 1e-6
