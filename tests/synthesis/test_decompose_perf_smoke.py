"""The CI decomposition perf smoke stays runnable and honest.

The strict >= 3x timing assertion lives in the dedicated CI job
(`python -m repro.synthesis.perf_smoke`); here we only pin what must
never flake: the smoke runs, the batched and scalar paths agree block
for block, and both timings are real measurements.
"""

from repro.synthesis import perf_smoke


def test_measure_paths_agree_block_for_block():
    batched_s, scalar_s, identical = perf_smoke.measure(rounds=1)
    assert identical
    assert batched_s > 0
    assert scalar_s > 0


def test_main_runs_end_to_end(capsys, monkeypatch):
    """main() exercised with the timing bar lowered to zero: the strict
    >= 3x assertion belongs to the dedicated CI job, not to tier-1,
    where a contended runner could flake it."""
    monkeypatch.setattr(perf_smoke, "MIN_RATIO", 0.0)
    assert perf_smoke.main() == 0
    assert "ratio" in capsys.readouterr().out


def test_blocks_identical_rejects_differences():
    from repro.synthesis.gateset import get_gateset

    gateset = get_gateset("CNOT")
    matrices = perf_smoke.build_workload()[:2]
    blocks = gateset.decompose_batch(matrices)
    assert perf_smoke.blocks_identical(blocks, list(blocks))
    # A phase perturbation must be caught.
    circuit, phase = blocks[0]
    tampered = [(circuit, phase * 1.0000001)] + blocks[1:]
    assert not perf_smoke.blocks_identical(tampered, blocks)
    assert not perf_smoke.blocks_identical(blocks[:1], blocks)
