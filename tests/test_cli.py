"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main, make_parser, make_sweep_parser


class TestParser:
    def test_defaults(self):
        args = make_parser().parse_args([])
        assert args.benchmark == "NNN_Heisenberg"
        assert args.device == "montreal"
        assert args.gateset == "CNOT"

    def test_invalid_benchmark(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--benchmark", "bogus"])


class TestMain:
    def test_basic_run(self, capsys):
        code = main(["--benchmark", "NNN_Ising", "--qubits", "6",
                     "--device", "aspen", "--gateset", "ISWAP",
                     "--mapping-trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2QAN:" in out
        assert "swaps=" in out

    def test_compare_mode(self, capsys):
        code = main(["--benchmark", "NNN_Ising", "--qubits", "6",
                     "--device", "aspen", "--mapping-trials", "1",
                     "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NoMap" in out
        assert "tket-like" in out

    def test_all_to_all_device(self, capsys):
        code = main(["--qubits", "6", "--device", "all-to-all",
                     "--mapping-trials", "1"])
        assert code == 0

    def test_too_many_qubits(self, capsys):
        code = main(["--qubits", "30", "--device", "montreal"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestSweepParser:
    def test_defaults(self):
        args = make_sweep_parser().parse_args([])
        assert args.sizes == "6,10,14"
        assert args.jobs is None
        assert args.store is None

    def test_invalid_device(self):
        with pytest.raises(SystemExit):
            make_sweep_parser().parse_args(["--device", "bogus"])


class TestSweepCommand:
    ARGS = ["sweep", "--benchmark", "NNN_Ising", "--device", "aspen",
            "--gateset", "CNOT", "--sizes", "6", "--compilers",
            "2qan,nomap", "--jobs", "1"]

    def test_text_tables(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "[n_swaps]" in out
        assert "2qan" in out and "nomap" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert {r["compiler"] for r in rows} == {"2qan", "nomap"}
        assert all(r["benchmark"] == "NNN_Ising" for r in rows)

    def test_store_resume(self, tmp_path, capsys):
        store_args = self.ARGS + ["--store", str(tmp_path)]
        assert main(store_args) == 0
        stored = list(tmp_path.glob("sweep-*.jsonl"))
        assert len(stored) == 1
        first = stored[0].read_text()
        assert main(store_args) == 0
        # second run recomputed nothing: the store file is unchanged
        assert stored[0].read_text() == first

    def test_bad_sizes(self, capsys):
        code = main(["sweep", "--sizes", "six"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_compiler(self, capsys):
        code = main(["sweep", "--compilers", "2qan,bogus"])
        assert code == 1
        assert "bogus" in capsys.readouterr().err

    def test_unknown_metric_rejected_before_compute(self, capsys):
        code = main(["sweep", "--metrics", "n_swap"])
        assert code == 1
        assert "n_swap" in capsys.readouterr().err

    def test_help_mentions_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "sweep" in capsys.readouterr().out

    def test_oversized_sweep_rejected(self, capsys):
        code = main(["sweep", "--device", "aspen", "--sizes", "30"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_zero_instances_rejected(self, capsys):
        code = main(["sweep", "--instances", "0"])
        assert code == 1
        assert "--instances" in capsys.readouterr().err

    def test_zero_jobs_rejected(self, capsys):
        code = main(["sweep", "--jobs", "0"])
        assert code == 1
        assert "--jobs" in capsys.readouterr().err
