"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import (
    main,
    make_batch_parser,
    make_compile_parser,
    make_parser,
    make_sweep_parser,
)


class TestParser:
    def test_defaults(self):
        args = make_parser().parse_args([])
        assert args.benchmark == "NNN_Heisenberg"
        assert args.device == "montreal"
        assert args.gateset == "CNOT"

    def test_invalid_benchmark(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--benchmark", "bogus"])


class TestMain:
    def test_basic_run(self, capsys):
        code = main(["--benchmark", "NNN_Ising", "--qubits", "6",
                     "--device", "aspen", "--gateset", "ISWAP",
                     "--mapping-trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2QAN:" in out
        assert "swaps=" in out

    def test_compare_mode(self, capsys):
        code = main(["--benchmark", "NNN_Ising", "--qubits", "6",
                     "--device", "aspen", "--mapping-trials", "1",
                     "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NoMap" in out
        assert "tket-like" in out

    def test_all_to_all_device(self, capsys):
        code = main(["--qubits", "6", "--device", "all-to-all",
                     "--mapping-trials", "1"])
        assert code == 0

    def test_too_many_qubits(self, capsys):
        code = main(["--qubits", "30", "--device", "montreal"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCompileCommand:
    def test_defaults(self):
        args = make_compile_parser().parse_args([])
        assert args.compiler == "2qan"

    def test_unknown_compiler_rejected(self):
        with pytest.raises(SystemExit):
            make_compile_parser().parse_args(["--compiler", "bogus"])

    def test_registry_compiler_runs(self, capsys):
        code = main(["compile", "--compiler", "tket", "--benchmark",
                     "NNN_Ising", "--qubits", "6", "--device", "aspen"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tket:" in out
        assert "pass timings:" in out

    def test_alias_accepted(self, capsys):
        code = main(["compile", "--compiler", "qaoa_ic", "--benchmark",
                     "NNN_Ising", "--qubits", "6", "--device", "aspen"])
        assert code == 0
        assert "qaoa_ic:" in capsys.readouterr().out

    def test_json_output_has_timings(self, capsys):
        code = main(["compile", "--compiler", "nomap", "--benchmark",
                     "NNN_Ising", "--qubits", "6", "--device", "aspen",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compiler"] == "nomap"
        assert set(payload["timings"]) == {
            "unify", "scheduling", "binding", "decomposition"
        }

    def test_list_compilers(self, capsys):
        assert main(["compile", "--list-compilers"]) == 0
        out = capsys.readouterr().out
        for name in ("2qan", "tket", "qiskit", "ic_qaoa", "nomap",
                     "paulihedral"):
            assert name in out

    def test_device_free_compiler_ignores_device_size(self, capsys):
        """NoMap/Paulihedral compile above the named device's size."""
        code = main(["compile", "--compiler", "nomap", "--benchmark",
                     "NNN_Ising", "--qubits", "30", "--device",
                     "montreal"])
        assert code == 0
        assert "all-to-all-30" in capsys.readouterr().out

    def test_gateset_free_compiler_not_mislabelled(self, capsys):
        """Paulihedral ignores --gateset; output must not claim a basis."""
        code = main(["compile", "--compiler", "paulihedral", "--benchmark",
                     "NNN_Ising", "--qubits", "6", "--gateset", "SYC",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gateset"] is None

    def test_incompatible_benchmark_reports_error(self, capsys):
        code = main(["compile", "--compiler", "ic_qaoa", "--benchmark",
                     "NNN_Heisenberg", "--qubits", "6", "--device",
                     "aspen"])
        assert code == 1
        assert "commuting" in capsys.readouterr().err

    def test_too_many_qubits(self, capsys):
        code = main(["compile", "--qubits", "30", "--device", "montreal"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestSweepParser:
    def test_defaults(self):
        args = make_sweep_parser().parse_args([])
        assert args.sizes == "6,10,14"
        assert args.jobs is None
        assert args.store is None

    def test_invalid_device(self):
        with pytest.raises(SystemExit):
            make_sweep_parser().parse_args(["--device", "bogus"])


class TestSweepCommand:
    ARGS = ["sweep", "--benchmark", "NNN_Ising", "--device", "aspen",
            "--gateset", "CNOT", "--sizes", "6", "--compilers",
            "2qan,nomap", "--jobs", "1"]

    def test_text_tables(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "[n_swaps]" in out
        assert "2qan" in out and "nomap" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert {r["compiler"] for r in rows} == {"2qan", "nomap"}
        assert all(r["benchmark"] == "NNN_Ising" for r in rows)
        # sweep rows carry per-pass timings for every compiler
        for row in rows:
            assert "decomposition" in row["timings"]

    def test_pass_timings_table(self, capsys):
        assert main(self.ARGS + ["--pass-timings"]) == 0
        out = capsys.readouterr().out
        assert "[pass seconds]" in out
        assert "mapping" in out and "decomposition" in out

    def test_aliases_canonicalized_not_duplicated(self, capsys):
        """'tket,order' is one compiler, computed and shown once."""
        args = ["sweep", "--benchmark", "NNN_Ising", "--device", "aspen",
                "--sizes", "6", "--compilers", "tket,order", "--jobs", "1",
                "--json"]
        assert main(args) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["compiler"] for r in rows] == ["tket"]

    def test_store_resume(self, tmp_path, capsys):
        store_args = self.ARGS + ["--store", str(tmp_path)]
        assert main(store_args) == 0
        stored = list(tmp_path.glob("sweep-*.jsonl"))
        assert len(stored) == 1
        first = stored[0].read_text()
        assert main(store_args) == 0
        # second run recomputed nothing: the store file is unchanged
        assert stored[0].read_text() == first

    def test_bad_sizes(self, capsys):
        code = main(["sweep", "--sizes", "six"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_compiler(self, capsys):
        code = main(["sweep", "--compilers", "2qan,bogus"])
        assert code == 1
        assert "bogus" in capsys.readouterr().err

    def test_unknown_metric_rejected_before_compute(self, capsys):
        code = main(["sweep", "--metrics", "n_swap"])
        assert code == 1
        assert "n_swap" in capsys.readouterr().err

    def test_help_mentions_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "sweep" in capsys.readouterr().out

    def test_oversized_sweep_rejected(self, capsys):
        code = main(["sweep", "--device", "aspen", "--sizes", "30"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_zero_instances_rejected(self, capsys):
        code = main(["sweep", "--instances", "0"])
        assert code == 1
        assert "--instances" in capsys.readouterr().err

    def test_zero_jobs_rejected(self, capsys):
        code = main(["sweep", "--jobs", "0"])
        assert code == 1
        assert "--jobs" in capsys.readouterr().err


class TestSweepCache:
    ARGS = ["sweep", "--benchmark", "NNN_Ising", "--device", "aspen",
            "--sizes", "6", "--compilers", "2qan,tket", "--jobs", "1"]

    def test_cache_counters_in_pass_timings(self, tmp_path, capsys):
        args = self.ARGS + ["--cache", str(tmp_path), "--pass-timings"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[cache counters]" in out
        assert "artifact_hits" in out
        assert "decompose_misses" in out

    def test_second_run_hits_cache(self, tmp_path, capsys):
        args = self.ARGS + ["--cache", str(tmp_path), "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        # metrics identical; warm rows report only artifact hits
        for cold, warm in zip(first, second):
            assert cold["n_two_qubit_gates"] == warm["n_two_qubit_gates"]
            assert warm["cache_stats"]["artifact_misses"] == 0
            assert warm["cache_stats"]["artifact_hits"] > 0

    def test_no_cache_flag_records_no_artifact_counters(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        for row in rows:
            assert "artifact_hits" not in row["cache_stats"]
            assert "decompose_misses" in row["cache_stats"]


class TestBatchCommand:
    def _write_requests(self, tmp_path, payload):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(payload))
        return str(path)

    REQUESTS = [
        {"compiler": "2qan", "benchmark": "NNN_Ising", "n_qubits": 6,
         "device": "aspen", "gateset": "CNOT", "seed": 0},
        {"compiler": "tket", "benchmark": "NNN_Ising", "n_qubits": 6,
         "device": "aspen", "gateset": "CNOT", "seed": 0},
        {"compiler": "order", "benchmark": "NNN_Ising", "n_qubits": 6,
         "device": "aspen", "gateset": "CNOT", "seed": 0},
    ]

    def test_parser_requires_requests(self):
        with pytest.raises(SystemExit):
            make_batch_parser().parse_args([])

    def test_text_output_marks_duplicates(self, tmp_path, capsys):
        path = self._write_requests(tmp_path, self.REQUESTS)
        assert main(["batch", "--requests", path]) == 0
        captured = capsys.readouterr()
        assert "(deduplicated)" in captured.out
        assert "3 requests (2 unique)" in captured.err

    def test_json_deterministic_across_cache_states(self, tmp_path, capsys):
        path = self._write_requests(tmp_path, self.REQUESTS)
        cache = str(tmp_path / "cache")
        assert main(["batch", "--requests", path, "--cache", cache,
                     "--json"]) == 0
        cold = capsys.readouterr()
        assert main(["batch", "--requests", path, "--cache", cache,
                     "--json"]) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out          # byte-identical responses
        assert json.loads(cold.out)[0]["n_swaps"] >= 0
        assert "artifact hits: 0" not in warm.err

    def test_missing_file_reports_error(self, capsys):
        assert main(["batch", "--requests", "/nonexistent.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_field_reports_error(self, tmp_path, capsys):
        path = self._write_requests(tmp_path, [{"qubits": 6}])
        assert main(["batch", "--requests", path]) == 1
        assert "qubits" in capsys.readouterr().err

    def test_empty_list_reports_error(self, tmp_path, capsys):
        path = self._write_requests(tmp_path, [])
        assert main(["batch", "--requests", path]) == 1
        assert "error" in capsys.readouterr().err

    def test_oversized_request_reports_error(self, tmp_path, capsys):
        path = self._write_requests(
            tmp_path, [{"compiler": "2qan", "n_qubits": 99,
                        "device": "aspen"}])
        assert main(["batch", "--requests", path]) == 1
        assert "exceed" in capsys.readouterr().err

    def test_failing_request_does_not_abort_batch(self, tmp_path, capsys):
        """One bad request: the good one is still served, the failure
        lands on stderr (and as a FAILED row) and the exit code is 1."""
        path = self._write_requests(tmp_path, [
            self.REQUESTS[0],
            {"compiler": "bogus", "benchmark": "NNN_Ising", "n_qubits": 6},
        ])
        assert main(["batch", "--requests", path]) == 1
        captured = capsys.readouterr()
        assert "swaps=" in captured.out        # the good row was served
        assert "FAILED" in captured.out
        assert "bogus" in captured.err
        assert "1 failed" in captured.err

    def test_zero_jobs_rejected(self, tmp_path, capsys):
        path = self._write_requests(tmp_path, self.REQUESTS[:1])
        assert main(["batch", "--requests", path, "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err


class TestDeviceFreeSweep:
    def test_all_device_free_sweep_ignores_device_cap(self, capsys):
        code = main(["sweep", "--benchmark", "NNN_Ising", "--device",
                     "montreal", "--sizes", "30", "--compilers",
                     "nomap,paulihedral", "--jobs", "1", "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["compiler"] for r in rows} == {"nomap", "paulihedral"}
        assert all(r["device"] == "all-to-all-30" for r in rows)

    def test_mixed_sweep_still_capped(self, capsys):
        code = main(["sweep", "--benchmark", "NNN_Ising", "--device",
                     "montreal", "--sizes", "30", "--compilers",
                     "2qan,nomap", "--jobs", "1"])
        assert code == 1
        assert "exceed" in capsys.readouterr().err


class TestCompileBind:
    ARGS = ["compile", "--compiler", "2qan", "--benchmark", "QAOA-REG-3",
            "--qubits", "6"]

    def test_bind_matches_concrete_compile(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        concrete = json.loads(capsys.readouterr().out)
        assert main(self.ARGS + ["--bind", "gamma=0.35,beta=-0.39",
                                 "--json"]) == 0
        bound = json.loads(capsys.readouterr().out)
        assert bound.pop("parameters") == {"gamma": 0.35, "beta": -0.39}
        # identical apart from wall times
        concrete.pop("timings")
        bound.pop("timings")
        assert bound == concrete

    def test_bind_text_output_reports_angles(self, capsys):
        assert main(self.ARGS + ["--bind", "gamma=0.4,beta=1.1"]) == 0
        out = capsys.readouterr().out
        assert "bound: gamma=0.4, beta=1.1" in out

    def test_bad_bind_syntax_rejected(self, capsys):
        assert main(self.ARGS + ["--bind", "gamma"]) == 1
        assert "expected name=value" in capsys.readouterr().err
        assert main(self.ARGS + ["--bind", "gamma=x"]) == 1
        assert "expected a number" in capsys.readouterr().err

    def test_missing_parameter_reported(self, capsys):
        assert main(self.ARGS + ["--bind", "gamma=0.4"]) == 1
        assert "beta" in capsys.readouterr().err


class TestBindCommand:
    ARGS = ["bind", "--compiler", "2qan", "--benchmark", "QAOA-REG-3",
            "--qubits", "6"]

    def test_multiple_bindings_one_structural_compile(self, capsys):
        assert main(self.ARGS + ["--bind", "gamma=0.35,beta=-0.39",
                                 "--bind", "gamma=0.7,beta=0.2"]) == 0
        out = capsys.readouterr().out
        assert "structural: unify+mapping+routing+scheduling" in out
        assert out.count("bind gamma=") == 2

    def test_json_payload(self, capsys):
        assert main(self.ARGS + ["--bind", "gamma=0.35,beta=-0.39",
                                 "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["structural_passes"] == [
            "unify", "mapping", "routing", "scheduling"]
        (binding,) = payload["bindings"]
        assert binding["parameters"] == {"gamma": 0.35, "beta": -0.39}
        assert binding["n_two_qubit_gates"] > 0

    def test_json_metrics_match_compile(self, capsys):
        assert main(["compile", "--compiler", "2qan", "--benchmark",
                     "QAOA-REG-3", "--qubits", "6", "--json"]) == 0
        concrete = json.loads(capsys.readouterr().out)
        assert main(self.ARGS + ["--bind", "gamma=0.35,beta=-0.39",
                                 "--json"]) == 0
        (binding,) = json.loads(capsys.readouterr().out)["bindings"]
        for field in ("n_swaps", "n_dressed", "n_two_qubit_gates",
                      "two_qubit_depth", "total_depth", "qap_cost"):
            assert binding[field] == concrete[field]

    def test_bind_required(self):
        with pytest.raises(SystemExit):
            main(self.ARGS)

    def test_missing_parameter_reported(self, capsys):
        assert main(self.ARGS + ["--bind", "beta=0.1"]) == 1
        assert "gamma" in capsys.readouterr().err

    def test_help_mentions_bind(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "repro bind" in capsys.readouterr().out
