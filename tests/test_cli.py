"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main, make_parser


class TestParser:
    def test_defaults(self):
        args = make_parser().parse_args([])
        assert args.benchmark == "NNN_Heisenberg"
        assert args.device == "montreal"
        assert args.gateset == "CNOT"

    def test_invalid_benchmark(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--benchmark", "bogus"])


class TestMain:
    def test_basic_run(self, capsys):
        code = main(["--benchmark", "NNN_Ising", "--qubits", "6",
                     "--device", "aspen", "--gateset", "ISWAP",
                     "--mapping-trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2QAN:" in out
        assert "swaps=" in out

    def test_compare_mode(self, capsys):
        code = main(["--benchmark", "NNN_Ising", "--qubits", "6",
                     "--device", "aspen", "--mapping-trials", "1",
                     "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NoMap" in out
        assert "tket-like" in out

    def test_all_to_all_device(self, capsys):
        code = main(["--qubits", "6", "--device", "all-to-all",
                     "--mapping-trials", "1"])
        assert code == 0

    def test_too_many_qubits(self, capsys):
        code = main(["--qubits", "30", "--device", "montreal"])
        assert code == 1
        assert "error" in capsys.readouterr().err
