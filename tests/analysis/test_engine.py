"""Tests for the parallel sweep engine and its store integration."""

import dataclasses

import pytest

import repro.analysis.engine as engine_module
from repro.analysis.engine import (
    SweepTask,
    config_key,
    execute_task,
    expand_tasks,
    open_store,
    parallel_map,
    run_engine,
)
from repro.analysis.harness import SweepConfig, run_sweep
from repro.devices import aspen, line, montreal

CONFIG = SweepConfig("NNN_Ising", aspen(), "CNOT", (6, 8),
                     compilers=("2qan", "nomap"))


def metrics_only(row):
    """Row minus the wall-time column (the only engine-order-dependent bit)."""
    return dataclasses.replace(row, seconds=0.0)


class TestExpandTasks:
    def test_count_and_order(self):
        tasks = expand_tasks(CONFIG)
        assert len(tasks) == 2 * 2
        assert [(t.n_qubits, t.compiler) for t in tasks] == [
            (6, "2qan"), (6, "nomap"), (8, "2qan"), (8, "nomap"),
        ]

    def test_seeding_matches_serial_convention(self):
        config = SweepConfig("QAOA-REG-3", montreal(), "CNOT", (6,),
                             compilers=("2qan",), instances=2, seed=5)
        tasks = expand_tasks(config)
        assert tasks[0].instance_seed == 5 + 6
        assert tasks[1].instance_seed == 5 + 7919 + 6
        assert tasks[1].compiler_seed == 6

    def test_keys_unique(self):
        tasks = expand_tasks(CONFIG)
        assert len({t.key for t in tasks}) == len(tasks)


class TestExecuteTask:
    def test_single_task(self):
        task = SweepTask("NNN_Ising", "CNOT", 6, 0, "2qan",
                         instance_seed=6, compiler_seed=0)
        row = execute_task(task, aspen())
        assert row.device == "aspen-16"
        assert row.n_two_qubit_gates > 0
        assert row.seconds > 0


class TestEngineVsSerial:
    def test_serial_engine_matches_run_sweep(self):
        engine_rows = run_engine(CONFIG, jobs=1)
        sweep_rows = run_sweep(CONFIG)
        assert [metrics_only(r) for r in engine_rows] == \
            [metrics_only(r) for r in sweep_rows]

    def test_parallel_matches_serial(self):
        serial = run_engine(CONFIG, jobs=1)
        parallel = run_engine(CONFIG, jobs=2)
        assert [metrics_only(r) for r in parallel] == \
            [metrics_only(r) for r in serial]


class TestStoreIntegration:
    def test_rows_persist(self, tmp_path):
        store = open_store(tmp_path, CONFIG)
        rows = run_engine(CONFIG, jobs=1, store=store)
        assert len(store.load()) == len(rows)

    def test_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        store = open_store(tmp_path, CONFIG)
        first = run_engine(CONFIG, jobs=1, store=store)

        def explode(*args, **kwargs):
            raise AssertionError("task recomputed despite full store")

        monkeypatch.setattr(engine_module, "execute_task", explode)
        second = run_engine(CONFIG, jobs=1, store=store)
        assert second == first

    def test_partial_store_runs_only_missing(self, tmp_path, monkeypatch):
        store = open_store(tmp_path, CONFIG)
        tasks = expand_tasks(CONFIG)
        store.put(tasks[0].key, execute_task(tasks[0], CONFIG.device))

        executed = []
        real = engine_module.execute_task

        def counting(task, device, cache=None, **kwargs):
            executed.append(task.key)
            return real(task, device, cache, **kwargs)

        monkeypatch.setattr(engine_module, "execute_task", counting)
        rows = run_engine(CONFIG, jobs=1, store=store)
        assert len(rows) == len(tasks)
        assert tasks[0].key not in executed
        assert len(executed) == len(tasks) - 1

    def test_grid_extension_reuses_old_cells(self, tmp_path, monkeypatch):
        small = dataclasses.replace(CONFIG, sizes=(6,))
        run_engine(small, jobs=1, store=open_store(tmp_path, small))

        executed = []
        real = engine_module.execute_task

        def counting(task, device, cache=None, **kwargs):
            executed.append(task.n_qubits)
            return real(task, device, cache, **kwargs)

        monkeypatch.setattr(engine_module, "execute_task", counting)
        big = dataclasses.replace(CONFIG, sizes=(6, 8))
        rows = run_engine(big, jobs=1, store=open_store(tmp_path, big))
        assert len(rows) == 4
        assert set(executed) == {8}

    def test_config_key_separates_environments(self):
        other_seed = dataclasses.replace(CONFIG, seed=99)
        other_device = dataclasses.replace(CONFIG, device=line(8))
        bigger_grid = dataclasses.replace(CONFIG, sizes=(6, 8, 10))
        assert config_key(CONFIG) != config_key(other_seed)
        assert config_key(CONFIG) != config_key(other_device)
        assert config_key(CONFIG) == config_key(bigger_grid)

    def test_parallel_failure_still_records_completed_rows(self, tmp_path):
        config = SweepConfig("NNN_Heisenberg", aspen(), "CNOT", (6,),
                             compilers=("2qan", "ic_qaoa", "nomap"))
        store = open_store(tmp_path, config)
        with pytest.raises(ValueError):
            run_engine(config, jobs=2, store=store)   # ic_qaoa rejects this
        stored = store.load()
        assert len(stored) == 2
        assert {row.compiler for row in stored.values()} == {"2qan", "nomap"}

    def test_duplicate_tasks_computed_once(self, tmp_path, monkeypatch):
        config = SweepConfig("NNN_Ising", aspen(), "CNOT", (6,),
                             compilers=("2qan", "2qan"))
        executed = []
        real = engine_module.execute_task

        def counting(task, device, cache=None, **kwargs):
            executed.append(task.key)
            return real(task, device, cache, **kwargs)

        monkeypatch.setattr(engine_module, "execute_task", counting)
        store = open_store(tmp_path, config)
        rows = run_engine(config, jobs=1, store=store)
        assert len(rows) == 2 and rows[0] == rows[1]
        assert len(executed) == 1
        assert len(store.load()) == 1

    def test_config_key_separates_device_calibration(self):
        from repro.devices.topology import Device
        base = CONFIG.device
        calibrated = Device(base.name, base.n_qubits, base.edges,
                            edge_errors={(0, 1): 0.02})
        weighted = Device(base.name, base.n_qubits, base.edges,
                          edge_weights={(0, 1): 3.0})
        assert config_key(CONFIG) != \
            config_key(dataclasses.replace(CONFIG, device=calibrated))
        assert config_key(CONFIG) != \
            config_key(dataclasses.replace(CONFIG, device=weighted))

    def test_config_key_salt(self):
        assert config_key(CONFIG) != config_key(CONFIG, salt="code-v2")
        assert config_key(CONFIG, salt="a") != config_key(CONFIG, salt="b")


class TestCacheFairness:
    def test_serial_mode_gives_each_compiler_its_own_cache(self, monkeypatch):
        seen = {}
        real = engine_module.execute_task

        def capture(task, device, cache=None, **kwargs):
            seen.setdefault(task.compiler, set()).add(id(cache))
            return real(task, device, cache, **kwargs)

        monkeypatch.setattr(engine_module, "execute_task", capture)
        run_engine(CONFIG, jobs=1)
        # one cache per compiler, reused across sizes, never shared
        assert all(len(ids) == 1 for ids in seen.values())
        assert seen["2qan"].isdisjoint(seen["nomap"])


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(abs, [-1, 2, -3], jobs=1) == [1, 2, 3]

    def test_parallel_preserves_order(self):
        assert parallel_map(abs, [-1, 2, -3], jobs=2) == [1, 2, 3]

    def test_empty(self):
        assert parallel_map(abs, [], jobs=4) == []
