"""Gateset labelling for gateset-free compilers in sweep tasks."""

from repro.analysis.harness import SweepConfig
from repro.analysis.engine import expand_tasks, run_engine
from repro.devices import aspen


class TestGatesetFreeCompilers:
    def test_paulihedral_tasks_not_labelled_with_basis(self):
        config = SweepConfig("NNN_Ising", aspen(), "SYC", (6,),
                             compilers=("2qan", "paulihedral"))
        tasks = expand_tasks(config)
        by_compiler = {t.compiler: t for t in tasks}
        assert by_compiler["2qan"].gateset == "SYC"
        assert by_compiler["paulihedral"].gateset == "n/a"

    def test_paulihedral_task_key_stable_across_gatesets(self):
        tasks = {}
        for gateset in ("CNOT", "SYC"):
            config = SweepConfig("NNN_Ising", aspen(), gateset, (6,),
                                 compilers=("paulihedral",))
            tasks[gateset] = expand_tasks(config)[0].key
        assert tasks["CNOT"] == tasks["SYC"]

    def test_rows_carry_the_neutral_label(self):
        config = SweepConfig("NNN_Ising", aspen(), "SYC", (6,),
                             compilers=("paulihedral",))
        rows = run_engine(config, jobs=1)
        assert rows[0].gateset == "n/a"


class TestCrossGatesetStoreReuse:
    def test_config_key_shared_across_gatesets(self):
        import dataclasses

        from repro.analysis.engine import config_key

        cnot = SweepConfig("NNN_Ising", aspen(), "CNOT", (6,))
        syc = dataclasses.replace(cnot, gateset="SYC")
        assert config_key(cnot) == config_key(syc)

    def test_gateset_free_rows_resume_across_gatesets(self, tmp_path):
        """A paulihedral row computed under one gate set is reused by a
        sweep with another: same store file, same task key."""
        from repro.analysis.engine import open_store

        cnot = SweepConfig("NNN_Ising", aspen(), "CNOT", (6,),
                           compilers=("paulihedral",))
        run_engine(cnot, jobs=1, store=open_store(tmp_path, cnot))
        stored = list(tmp_path.glob("sweep-*.jsonl"))
        assert len(stored) == 1
        first = stored[0].read_text()

        import dataclasses
        syc = dataclasses.replace(cnot, gateset="SYC")
        run_engine(syc, jobs=1, store=open_store(tmp_path, syc))
        assert list(tmp_path.glob("sweep-*.jsonl")) == stored
        assert stored[0].read_text() == first  # nothing recomputed
