"""Tests for the persistent JSON-lines result store."""

import json

from repro.analysis.harness import BenchmarkRow
from repro.analysis.store import (
    ResultStore,
    config_fingerprint,
    row_from_dict,
    row_to_dict,
    source_digest,
)


def make_row(**overrides) -> BenchmarkRow:
    base = dict(benchmark="NNN_Ising", device="aspen-16", gateset="CNOT",
                n_qubits=6, instance=0, compiler="2qan", n_swaps=1,
                n_dressed=1, n_two_qubit_gates=10, two_qubit_depth=5,
                total_depth=8, seconds=0.1)
    base.update(overrides)
    return BenchmarkRow(**base)


class TestRowSerialisation:
    def test_roundtrip(self):
        row = make_row()
        assert row_from_dict(row_to_dict(row)) == row

    def test_unknown_keys_ignored(self):
        payload = row_to_dict(make_row())
        payload["extra"] = "future-field"
        assert row_from_dict(payload) == make_row()


class TestFingerprint:
    def test_stable(self):
        payload = {"a": 1, "b": [1, 2]}
        assert config_fingerprint(payload) == config_fingerprint(dict(payload))

    def test_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})

    def test_distinguishes(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_source_digest_stable_and_short(self):
        digest = source_digest()
        assert digest == source_digest()
        assert len(digest) == 16


class TestResultStore:
    def test_empty(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.load() == {}
        assert len(store) == 0

    def test_put_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        row = make_row()
        store.put("k1", row)
        store.put("k2", make_row(compiler="tket"))
        loaded = store.load()
        assert loaded["k1"] == row
        assert loaded["k2"].compiler == "tket"
        assert "k1" in store and "missing" not in store

    def test_creates_parent_dirs(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "s.jsonl")
        store.put("k", make_row())
        assert len(store) == 1

    def test_latest_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("k", make_row(n_swaps=1))
        store.put("k", make_row(n_swaps=9))
        assert store.load()["k"].n_swaps == 9

    def test_torn_final_line_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("good", make_row())
        with store.path.open("a") as handle:
            handle.write('{"task": "torn", "row": {"benchm')
        loaded = store.load()
        assert set(loaded) == {"good"}

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).put("k", make_row())
        assert json.loads(path.read_text().splitlines()[0])["task"] == "k"
        assert ResultStore(path).load()["k"] == make_row()


class TestCrashRecovery:
    """A writer killed mid-append must cost at most its own row."""

    def test_corrupt_final_row_payload_skipped(self, tmp_path):
        """Valid JSON whose row is the wrong shape is dropped, not fatal."""
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("good", make_row())
        with store.path.open("a") as handle:
            handle.write('{"task": "bad", "row": [1, 2, 3]}\n')
        assert set(store.load()) == {"good"}

    def test_row_missing_required_field_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("good", make_row())
        with store.path.open("a") as handle:
            handle.write('{"task": "bad", "row": {"benchmark": "x"}}\n')
        assert set(store.load()) == {"good"}

    def test_put_after_torn_line_preserves_both_rows(self, tmp_path):
        """Appending after a crash must not fuse with the torn tail."""
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("first", make_row())
        with store.path.open("a") as handle:
            handle.write('{"task": "torn", "row": {"benchm')   # no newline
        store.put("second", make_row(compiler="tket"))
        loaded = store.load()
        assert set(loaded) == {"first", "second"}
        assert loaded["second"].compiler == "tket"

    def test_put_on_pristine_file_adds_no_blank_lines(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put("a", make_row())
        store.put("b", make_row())
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2 and all(lines)


class TestPreTimingsRows:
    """Rows stored before newer fields existed must still load."""

    def test_round_trip_without_timings(self):
        payload = row_to_dict(make_row())
        del payload["timings"]
        row = row_from_dict(payload)
        assert row.timings == {}
        assert row == make_row()

    def test_round_trip_without_cache_stats(self):
        payload = row_to_dict(make_row())
        del payload["cache_stats"]
        assert row_from_dict(payload).cache_stats == {}

    def test_old_row_loads_from_store_file(self, tmp_path):
        """A literal pre-timings store line (as PR 1 wrote them)."""
        path = tmp_path / "s.jsonl"
        payload = row_to_dict(make_row())
        del payload["timings"]
        del payload["cache_stats"]
        path.write_text(json.dumps({"task": "old", "row": payload}) + "\n")
        loaded = ResultStore(path).load()
        assert loaded["old"] == make_row()
        assert loaded["old"].timings == {}
