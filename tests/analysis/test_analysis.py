"""Tests for the sweep harness and overhead tables."""

import numpy as np
import pytest

from repro.analysis.harness import (
    AmbiguousRowsError,
    BenchmarkRow,
    SweepConfig,
    aggregate,
    build_step,
    compile_with,
    format_rows,
    run_sweep,
)
from repro.analysis.overhead import reduction_table, summarize_reductions
from repro.analysis.runtime import (
    RuntimeRecord,
    RuntimeSpec,
    format_runtime_table,
    measure_runtime,
    measure_runtime_spec,
    runtime_records_from_payload,
    runtime_records_payload,
)
from repro.core.decompose import DecomposeCache
from repro.devices import aspen, montreal
from repro.hamiltonians.trotter import trotter_step
from repro.hamiltonians.models import nnn_ising


class TestBuildStep:
    def test_model_benchmarks(self):
        for name in ("NNN_Ising", "NNN_XY", "NNN_Heisenberg"):
            step = build_step(name, 6, 0)
            assert step.n_qubits == 6

    def test_qaoa_benchmark(self):
        step = build_step("QAOA-REG-3", 8, 0)
        assert len(step.two_qubit_ops) == 12

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_step("bogus", 6, 0)


class TestCompileWith:
    @pytest.mark.parametrize("name", [
        "2qan", "2qan_nodress", "tket", "qiskit", "nomap",
    ])
    def test_all_compilers_run(self, name):
        step = build_step("NNN_Ising", 6, 0)
        result = compile_with(name, step, montreal(), "CNOT", 0,
                              DecomposeCache())
        assert result.metrics.n_two_qubit_gates > 0

    def test_ic_on_qaoa(self):
        step = build_step("QAOA-REG-3", 8, 0)
        result = compile_with("ic_qaoa", step, montreal(), "CNOT", 0,
                              DecomposeCache())
        assert result.metrics.n_two_qubit_gates > 0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            compile_with("bogus", build_step("NNN_Ising", 6, 0),
                         montreal(), "CNOT", 0, DecomposeCache())


class TestSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        config = SweepConfig("NNN_Ising", aspen(), "CNOT", (6, 8),
                             compilers=("2qan", "tket", "nomap"))
        return run_sweep(config)

    def test_row_count(self, rows):
        assert len(rows) == 2 * 3

    def test_aggregate(self, rows):
        value = aggregate(rows, "2qan", 6, "n_two_qubit_gates")
        assert value > 0

    def test_aggregate_missing(self, rows):
        with pytest.raises(ValueError):
            aggregate(rows, "qiskit", 6, "n_swaps")

    def test_nomap_has_no_swaps(self, rows):
        assert aggregate(rows, "nomap", 6, "n_swaps") == 0

    def test_format_table(self, rows):
        table = format_rows(rows, "n_two_qubit_gates")
        assert "2qan" in table and "nomap" in table
        assert "6" in table

    def test_qaoa_multi_instance(self):
        config = SweepConfig("QAOA-REG-3", montreal(), "CNOT", (6,),
                             compilers=("2qan",), instances=3)
        rows = run_sweep(config)
        assert len(rows) == 3
        assert len({r.instance for r in rows}) == 3


class TestReductionTable:
    @pytest.fixture(scope="class")
    def rows(self):
        config = SweepConfig("NNN_Heisenberg", aspen(), "CNOT", (6, 8),
                             compilers=("2qan", "qiskit", "nomap"))
        return run_sweep(config)

    def test_entries_produced(self, rows):
        entries = reduction_table(rows, "qiskit")
        assert {e.metric for e in entries} == {"swaps", "gates", "depth"}

    def test_reductions_at_least_one(self, rows):
        """2QAN should not be worse than the qiskit-like stand-in."""
        entries = reduction_table(rows, "qiskit")
        for entry in entries:
            assert entry.average >= 1.0 or np.isinf(entry.average)

    def test_summary_formatting(self, rows):
        text = summarize_reductions(reduction_table(rows, "qiskit"))
        assert "NNN_Heisenberg" in text


class TestRuntime:
    def test_measure_and_format(self):
        step = trotter_step(nnn_ising(8, seed=0))
        record = measure_runtime("ising8", step, montreal(),
                                 mapping_trials=1)
        assert record.total_s > 0
        table = format_runtime_table([record])
        assert "ising8" in table

    def test_spec_worker(self):
        spec = RuntimeSpec("ising8", "NNN_Ising", 8, montreal(),
                           mapping_trials=1)
        record = measure_runtime_spec(spec)
        assert record.label == "ising8"
        assert record.n_qubits == 8
        assert record.total_s > 0

    def test_unify_time_counts_toward_total(self):
        """Regression: total_s used to silently drop the unify pass."""
        record = RuntimeRecord("r", 4, 3, mapping_s=1.0, routing_s=2.0,
                               scheduling_s=4.0, decomposition_s=8.0,
                               unify_s=16.0)
        assert record.total_s == 31.0

    def test_measured_record_carries_unify(self):
        step = trotter_step(nnn_ising(8, seed=0))
        record = measure_runtime("ising8", step, montreal(),
                                 mapping_trials=1)
        # the pass always runs for 2QAN, so a real (possibly tiny but
        # non-negative) measurement must land in the field
        assert record.unify_s >= 0.0
        assert "unify" in format_runtime_table([record])


class TestRuntimePayload:
    RECORD = RuntimeRecord("heis-10", 10, 51, mapping_s=0.02,
                           routing_s=0.004, scheduling_s=0.001,
                           decomposition_s=0.007, unify_s=0.003)

    def test_payload_round_trip(self):
        payload = runtime_records_payload([self.RECORD])
        assert payload[0]["unify_s"] == 0.003
        assert payload[0]["total_s"] == round(self.RECORD.total_s, 3)
        (rebuilt,) = runtime_records_from_payload(payload)
        assert rebuilt == self.RECORD

    def test_reader_tolerates_rows_without_unify(self):
        """Rows persisted before the unify_s column existed still load."""
        payload = runtime_records_payload([self.RECORD])
        old_row = {k: v for k, v in payload[0].items() if k != "unify_s"}
        (rebuilt,) = runtime_records_from_payload([old_row])
        assert rebuilt.unify_s == 0.0
        assert rebuilt.mapping_s == 0.02


class TestFormatting:
    def test_format_rows_missing_compiler_dash(self):
        rows = [BenchmarkRow("NNN_Ising", "d", "CNOT", 6, 0, "2qan",
                             1, 1, 10, 5, 8, 0.1)]
        table = format_rows(rows, "n_swaps", ("2qan", "tket"))
        assert "-" in table

    def test_format_rows_empty(self):
        assert format_rows([], "n_swaps") == "(no data)"

    def test_autodetect_compilers(self):
        rows = [
            BenchmarkRow("NNN_Ising", "d", "CNOT", 6, 0, "2qan",
                         1, 1, 10, 5, 8, 0.1),
            BenchmarkRow("NNN_Ising", "d", "CNOT", 6, 0, "nomap",
                         0, 0, 8, 4, 6, 0.1),
        ]
        table = format_rows(rows, "n_two_qubit_gates")
        assert "2qan" in table and "nomap" in table


class TestCrossSweepContamination:
    """Concatenated rows from unrelated sweeps must not silently average."""

    MIXED = [
        BenchmarkRow("NNN_Ising", "aspen-16", "CNOT", 6, 0, "2qan",
                     1, 1, 10, 5, 8, 0.1),
        BenchmarkRow("NNN_Heisenberg", "aspen-16", "CNOT", 6, 0, "2qan",
                     3, 2, 30, 15, 20, 0.1),
    ]

    def test_mixed_benchmarks_raise(self):
        with pytest.raises(AmbiguousRowsError):
            aggregate(self.MIXED, "2qan", 6, "n_swaps")

    def test_explicit_benchmark_filter_selects(self):
        value = aggregate(self.MIXED, "2qan", 6, "n_swaps",
                          benchmark="NNN_Ising")
        assert value == 1

    def test_mixed_devices_raise(self):
        rows = [
            BenchmarkRow("NNN_Ising", "aspen-16", "CNOT", 6, 0, "2qan",
                         1, 1, 10, 5, 8, 0.1),
            BenchmarkRow("NNN_Ising", "montreal-27", "CNOT", 6, 0, "2qan",
                         2, 1, 12, 6, 9, 0.1),
        ]
        with pytest.raises(AmbiguousRowsError):
            aggregate(rows, "2qan", 6, "n_swaps")
        assert aggregate(rows, "2qan", 6, "n_swaps",
                         device="montreal-27") == 2

    def test_mixed_gatesets_raise(self):
        rows = [
            BenchmarkRow("NNN_Ising", "aspen-16", "CNOT", 6, 0, "2qan",
                         1, 1, 10, 5, 8, 0.1),
            BenchmarkRow("NNN_Ising", "aspen-16", "CZ", 6, 0, "2qan",
                         1, 1, 20, 9, 12, 0.1),
        ]
        with pytest.raises(AmbiguousRowsError):
            aggregate(rows, "2qan", 6, "n_two_qubit_gates")
        assert aggregate(rows, "2qan", 6, "n_two_qubit_gates",
                         gateset="CZ") == 20

    def test_format_rows_propagates_ambiguity(self):
        with pytest.raises(AmbiguousRowsError):
            format_rows(self.MIXED, "n_swaps")

    def test_format_rows_with_filter(self):
        table = format_rows(self.MIXED, "n_swaps",
                            benchmark="NNN_Heisenberg")
        assert "3.0" in table

    def test_homogeneous_rows_unaffected(self):
        homogeneous = [r for r in self.MIXED if r.benchmark == "NNN_Ising"]
        assert aggregate(homogeneous, "2qan", 6, "n_swaps") == 1
