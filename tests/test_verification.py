"""Tests for the semantic verification utilities themselves."""

import numpy as np
import pytest

from repro.core.compiler import TwoQANCompiler
from repro.core.unify import unify_circuit_operators
from repro.devices import grid, line
from repro.hamiltonians.models import nnn_ising, nnn_xy
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph
from repro.hamiltonians.trotter import trotter_step
from repro.verification import (
    executed_order_circuit,
    permutation_unitary,
    verify_commuting_equivalence,
    verify_compilation,
    verify_operator_conservation,
)


class TestPermutationUnitary:
    def test_identity(self):
        p = permutation_unitary({0: 0, 1: 1}, 2)
        assert np.allclose(p, np.eye(4))

    def test_swap_two_qubits(self):
        p = permutation_unitary({0: 1, 1: 0}, 2)
        # |01> (logical q1=1) -> physical q0=1 -> |10>
        assert p[2, 1] == 1.0

    def test_permutation_is_unitary(self):
        p = permutation_unitary({0: 2, 1: 0, 2: 1}, 3)
        assert np.allclose(p @ p.T, np.eye(8))

    def test_composition(self):
        a = permutation_unitary({0: 1, 1: 2, 2: 0}, 3)
        inverse = permutation_unitary({1: 0, 2: 1, 0: 2}, 3)
        assert np.allclose(inverse @ a, np.eye(8))


class TestVerifiers:
    @pytest.fixture
    def compiled(self):
        step = unify_circuit_operators(
            trotter_step(nnn_xy(5, seed=2))
        )
        compiler = TwoQANCompiler(line(5), "CNOT", seed=4,
                                  solve_angles=True)
        return compiler.compile(step), step

    def test_verify_passes_on_correct(self, compiled):
        result, step = compiled
        assert verify_compilation(result, step)
        assert verify_operator_conservation(result, step)

    def test_verify_rejects_tampered_circuit(self, compiled):
        result, step = compiled
        from repro.quantum.gates import Gate
        result.circuit.append(Gate("X", (0,)))
        assert not verify_compilation(result, step)

    def test_executed_order_covers_all_ops(self, compiled):
        result, step = compiled
        logical = executed_order_circuit(result.scheduled, 5)
        two_q = sum(1 for g in logical if g.n_qubits == 2)
        assert two_q == len(step.two_qubit_ops)

    def test_size_mismatch_rejected(self, compiled):
        result, step = compiled
        from repro.devices import montreal
        big = TwoQANCompiler(montreal(), "CNOT", seed=0).compile(step)
        with pytest.raises(ValueError):
            verify_compilation(big, step)

    def test_commuting_equivalence_qaoa(self):
        g = random_regular_graph(3, 6, seed=3)
        step = unify_circuit_operators(
            QAOAProblem(g, (0.5,), (0.3,)).layer_step(0)
        )
        compiler = TwoQANCompiler(grid(2, 3), "CNOT", seed=1,
                                  solve_angles=True)
        result = compiler.compile(step)
        assert verify_commuting_equivalence(result, step)

    @pytest.mark.parametrize("gateset", ["CZ", "ISWAP"])
    def test_verification_other_gatesets(self, gateset):
        step = unify_circuit_operators(trotter_step(nnn_ising(5, seed=1)))
        compiler = TwoQANCompiler(line(5), gateset, seed=2,
                                  solve_angles=True)
        result = compiler.compile(step)
        assert verify_compilation(result, step)
        assert verify_commuting_equivalence(result, step)
