"""Smoke tests: every example script must run end to end.

The examples double as documentation; broken examples are worse than no
examples.  Stdout is captured so the suite stays quiet.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Examples pick their own problem sizes; they are sized to finish in
    # well under a minute each.
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "retarget_gatesets", "qaoa_maxcut_montreal",
            "verified_simulation", "noise_aware_compilation"} <= names
