"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.devices import aspen, grid, line, montreal
from repro.quantum.gates import standard_gate_unitary

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1, -1]).astype(complex)


@pytest.fixture(autouse=True)
def strict_cache_reads(monkeypatch):
    """Every cached compile in the suite audits pass reads dynamically.

    With ``REPRO_CACHE_STRICT=1`` :class:`repro.cache.cached.CachedPass`
    wraps the context in a read-auditing proxy on the miss path, so an
    undeclared context read (an under-scoped cache key) fails the test
    that triggers it instead of silently serving stale artifacts later.
    """
    monkeypatch.setenv("REPRO_CACHE_STRICT", "1")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def grid23():
    """The 2x3 grid of the paper's Figure 3."""
    return grid(2, 3)


@pytest.fixture
def montreal_device():
    return montreal()


@pytest.fixture
def aspen_device():
    return aspen()


@pytest.fixture
def line5():
    return line(5)


def pauli_exponential(a: float, b: float, c: float) -> np.ndarray:
    """exp(i(a XX + b YY + c ZZ)) -- handy two-qubit test unitary."""
    generator = (
        a * np.kron(_X, _X) + b * np.kron(_Y, _Y) + c * np.kron(_Z, _Z)
    )
    return sla.expm(1j * generator)


@pytest.fixture
def heisenberg_unitary():
    return pauli_exponential(0.5, 0.3, 0.2)


@pytest.fixture
def dressed_swap_unitary():
    return standard_gate_unitary("SWAP") @ pauli_exponential(0.0, 0.0, 0.8)
