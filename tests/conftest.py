"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.devices import aspen, grid, line, montreal
from repro.quantum.gates import standard_gate_unitary

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1, -1]).astype(complex)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def grid23():
    """The 2x3 grid of the paper's Figure 3."""
    return grid(2, 3)


@pytest.fixture
def montreal_device():
    return montreal()


@pytest.fixture
def aspen_device():
    return aspen()


@pytest.fixture
def line5():
    return line(5)


def pauli_exponential(a: float, b: float, c: float) -> np.ndarray:
    """exp(i(a XX + b YY + c ZZ)) -- handy two-qubit test unitary."""
    generator = (
        a * np.kron(_X, _X) + b * np.kron(_Y, _Y) + c * np.kron(_Z, _Z)
    )
    return sla.expm(1j * generator)


@pytest.fixture
def heisenberg_unitary():
    return pauli_exponential(0.5, 0.3, 0.2)


@pytest.fixture
def dressed_swap_unitary():
    return standard_gate_unitary("SWAP") @ pauli_exponential(0.0, 0.0, 0.8)
