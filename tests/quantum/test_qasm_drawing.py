"""Tests for OpenQASM export and text drawing."""

import numpy as np
import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.drawing import draw
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.quantum.qasm import to_qasm
from repro.quantum.unitaries import allclose_up_to_global_phase


def _qasm_gate_identities():
    """The iswap / syc gate definitions embedded in the QASM header."""
    iswap_body = Circuit(2)
    for name, qubits in (("S", (0,)), ("S", (1,)), ("H", (0,)),
                         ("CNOT", (0, 1)), ("CNOT", (1, 0)), ("H", (1,))):
        iswap_body.append(Gate(name, qubits))
    syc_body = Circuit(2)
    for name, qubits in (("H", (1,)), ("CNOT", (1, 0)), ("CNOT", (0, 1)),
                         ("H", (0,)), ("SDG", (0,)), ("SDG", (1,))):
        syc_body.append(Gate(name, qubits))
    cu1 = np.diag([1, 1, 1, np.exp(-1j * np.pi / 6)]).astype(complex)
    return iswap_body.unitary(), cu1 @ syc_body.unitary()


class TestQasmIdentities:
    def test_iswap_definition_matches_matrix(self):
        iswap, _ = _qasm_gate_identities()
        assert allclose_up_to_global_phase(
            iswap, standard_gate_unitary("ISWAP")
        )

    def test_syc_definition_matches_matrix(self):
        _, syc = _qasm_gate_identities()
        assert allclose_up_to_global_phase(syc, standard_gate_unitary("SYC"))


class TestQasmExport:
    def test_header_and_register(self):
        c = Circuit(3)
        c.add("H", 0)
        text = to_qasm(c)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_two_qubit_gates(self):
        c = Circuit(2)
        c.add("CNOT", 0, 1)
        c.add("CZ", 1, 0)
        c.add("SWAP", 0, 1)
        text = to_qasm(c)
        assert "cx q[0],q[1];" in text
        assert "cz q[1],q[0];" in text
        assert "swap q[0],q[1];" in text

    def test_custom_gate_definitions_included_when_used(self):
        c = Circuit(2)
        c.add("ISWAP", 0, 1)
        text = to_qasm(c)
        assert "gate iswap" in text
        assert "iswap q[0],q[1];" in text
        assert "gate syc" not in text

    def test_matrix_gate_as_u3(self, rng):
        from repro.quantum.unitaries import random_unitary
        c = Circuit(1)
        c.append(Gate("U1Q", (0,), matrix=random_unitary(2, rng)))
        text = to_qasm(c)
        assert "u3(" in text

    def test_rotation_gates(self):
        c = Circuit(1)
        c.add("RZ", 0, params=(0.5,))
        assert "rz(0.5) q[0];" in to_qasm(c)

    def test_measure_option(self):
        c = Circuit(2)
        c.add("H", 0)
        text = to_qasm(c, include_measure=True)
        assert "creg c[2];" in text
        assert "measure q -> c;" in text

    def test_undecomposed_two_qubit_rejected(self):
        c = Circuit(2)
        c.append(Gate("APP2Q", (0, 1), matrix=np.eye(4, dtype=complex)))
        with pytest.raises(ValueError):
            to_qasm(c)

    def test_compiled_circuit_exports(self):
        """A full 2QAN output must serialise without errors."""
        from repro import TwoQANCompiler, nnn_ising, trotter_step
        from repro.devices import line
        step = trotter_step(nnn_ising(5, seed=0))
        result = TwoQANCompiler(line(5), "CNOT", seed=0,
                                solve_angles=True).compile(step)
        text = to_qasm(result.circuit, include_measure=True)
        assert text.count("cx") >= result.metrics.n_two_qubit_gates


class TestDrawing:
    def test_draws_all_qubits(self):
        c = Circuit(3)
        c.add("H", 0)
        c.add("CNOT", 0, 1)
        text = draw(c)
        assert "q0:" in text and "q1:" in text and "q2:" in text

    def test_cnot_symbols(self):
        c = Circuit(2)
        c.add("CNOT", 0, 1)
        text = draw(c)
        assert "*" in text and "X" in text

    def test_connector_between_wires(self):
        c = Circuit(2)
        c.add("CZ", 0, 1)
        assert "│" in draw(c)

    def test_empty_circuit(self):
        text = draw(Circuit(2))
        assert "q0:" in text

    def test_width_truncation(self):
        c = Circuit(1)
        for _ in range(100):
            c.add("H", 0)
        lines = draw(c, max_width=40).splitlines()
        assert all(len(line) <= 40 for line in lines)
