"""Tests for single-qubit gate fusion."""

from repro.quantum.circuit import Circuit
from repro.quantum.transforms import count_entangling, merge_single_qubit_gates
from repro.quantum.unitaries import allclose_up_to_global_phase


class TestMerge:
    def test_adjacent_gates_fused(self):
        c = Circuit(1)
        c.add("H", 0)
        c.add("S", 0)
        c.add("T", 0)
        merged = merge_single_qubit_gates(c)
        assert len(merged) == 1
        assert allclose_up_to_global_phase(merged.gates[0].unitary(),
                                           c.unitary())

    def test_identity_runs_dropped(self):
        c = Circuit(1)
        c.add("H", 0)
        c.add("H", 0)
        merged = merge_single_qubit_gates(c)
        assert len(merged) == 0

    def test_two_qubit_gate_barrier(self):
        c = Circuit(2)
        c.add("H", 0)
        c.add("CNOT", 0, 1)
        c.add("H", 0)
        merged = merge_single_qubit_gates(c)
        names = [g.name for g in merged]
        assert names == ["U1Q", "CNOT", "U1Q"]

    def test_unitary_preserved(self):
        c = Circuit(2)
        c.add("H", 0)
        c.add("S", 1)
        c.add("CNOT", 0, 1)
        c.add("T", 0)
        c.add("RX", 1, params=(0.3,))
        c.add("CNOT", 1, 0)
        c.add("H", 1)
        merged = merge_single_qubit_gates(c)
        assert allclose_up_to_global_phase(merged.unitary(), c.unitary())

    def test_phase_gates_dropped(self):
        c = Circuit(1)
        c.add("S", 0)
        c.add("S", 0)  # Z up to phase? S*S = Z, not phase; use Z*Z
        merged = merge_single_qubit_gates(c)
        assert len(merged) == 1  # Z gate survives
        c2 = Circuit(1)
        c2.add("Z", 0)
        c2.add("Z", 0)
        assert len(merge_single_qubit_gates(c2)) == 0

    def test_independent_qubits_both_fused(self):
        c = Circuit(2)
        c.add("H", 0)
        c.add("T", 0)
        c.add("H", 1)
        c.add("S", 1)
        merged = merge_single_qubit_gates(c)
        assert len(merged) == 2
        assert {g.qubits[0] for g in merged} == {0, 1}

    def test_depth_reduced(self):
        c = Circuit(2)
        for _ in range(4):
            c.add("T", 0)
        c.add("CNOT", 0, 1)
        merged = merge_single_qubit_gates(c)
        assert merged.depth() < c.depth()

    def test_empty_circuit(self):
        assert len(merge_single_qubit_gates(Circuit(3))) == 0


class TestCountEntangling:
    def test_counts_multiqubit_only(self):
        c = Circuit(3)
        c.add("H", 0)
        c.add("CNOT", 0, 1)
        c.add("SWAP", 1, 2)
        assert count_entangling(c) == 2
