"""Tests for the circuit IR: construction, metrics, unitaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary


def bell_circuit():
    c = Circuit(2)
    c.add("H", 0)
    c.add("CNOT", 0, 1)
    return c


class TestConstruction:
    def test_append_and_len(self):
        c = bell_circuit()
        assert len(c) == 2

    def test_out_of_range_rejected(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.add("H", 2)

    def test_extend(self):
        c = Circuit(3)
        c.extend([Gate("H", (0,)), Gate("CNOT", (1, 2))])
        assert len(c) == 2

    def test_copy_is_independent(self):
        c = bell_circuit()
        d = c.copy()
        d.add("X", 0)
        assert len(c) == 2 and len(d) == 3

    def test_iteration_order(self):
        c = bell_circuit()
        names = [g.name for g in c]
        assert names == ["H", "CNOT"]


class TestMetrics:
    def test_count_by_name(self):
        c = bell_circuit()
        assert c.count("cnot") == 1
        assert c.count("H") == 1
        assert c.count("X") == 0

    def test_two_qubit_gate_count(self):
        c = bell_circuit()
        assert c.n_two_qubit_gates == 1
        assert c.n_single_qubit_gates == 1

    def test_depth_sequential(self):
        c = Circuit(2)
        c.add("CNOT", 0, 1)
        c.add("CNOT", 0, 1)
        assert c.depth() == 2

    def test_depth_parallel(self):
        c = Circuit(4)
        c.add("CNOT", 0, 1)
        c.add("CNOT", 2, 3)
        assert c.depth() == 1

    def test_two_qubit_depth_ignores_1q_layers(self):
        c = Circuit(2)
        c.add("H", 0)
        c.add("H", 1)
        c.add("CNOT", 0, 1)
        c.add("RZ", 1, params=(0.3,))
        assert c.depth() == 3
        assert c.two_qubit_depth() == 1

    def test_depth_empty(self):
        assert Circuit(3).depth() == 0
        assert Circuit(3).two_qubit_depth() == 0

    def test_single_qubit_gates_block_packing(self):
        c = Circuit(2)
        c.add("H", 0)
        c.add("CNOT", 0, 1)
        c.add("H", 1)
        c.add("CNOT", 0, 1)
        # layers: [H0], [CNOT], [H1], [CNOT]
        assert c.two_qubit_depth() == 2
        assert c.depth() == 4

    def test_layers_partition_gates(self):
        c = Circuit(3)
        c.add("CNOT", 0, 1)
        c.add("H", 2)
        c.add("CNOT", 1, 2)
        layers = c.layers()
        assert sum(len(layer) for layer in layers) == 3
        assert [g.name for g in layers[0]] == ["CNOT", "H"]


class TestUnitary:
    def test_bell_state(self):
        u = bell_circuit().unitary()
        state = u @ np.eye(4)[0]
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_gate_order_matters(self):
        c1 = Circuit(1)
        c1.add("X", 0)
        c1.add("S", 0)
        c2 = Circuit(1)
        c2.add("S", 0)
        c2.add("X", 0)
        assert not np.allclose(c1.unitary(), c2.unitary())

    def test_unitary_on_nonadjacent_qubits(self):
        c = Circuit(3)
        c.add("CNOT", 0, 2)
        u = c.unitary()
        # |100> -> |101>
        state = np.zeros(8)
        state[4] = 1
        assert np.allclose(u @ state, np.eye(8)[5])

    def test_reversed_qubit_order_gate(self):
        c = Circuit(2)
        c.add("CNOT", 1, 0)  # control qubit 1
        u = c.unitary()
        state = np.zeros(4)
        state[1] = 1  # |01>: control set
        assert np.allclose(u @ state, np.eye(4)[3])

    def test_unitary_is_unitary(self):
        c = Circuit(3)
        c.add("H", 0)
        c.add("SYC", 1, 2)
        c.add("RZ", 0, params=(0.7,))
        c.add("SWAP", 0, 2)
        u = c.unitary()
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-12)

    def test_large_unitary_rejected(self):
        with pytest.raises(ValueError):
            Circuit(13).unitary()

    @given(st.lists(
        st.tuples(st.sampled_from(["H", "X", "S", "T"]), st.integers(0, 2)),
        min_size=1, max_size=8,
    ))
    @settings(max_examples=25, deadline=None)
    def test_unitary_composition_property(self, gates):
        """Circuit unitary equals the product of expanded gate unitaries."""
        c = Circuit(3)
        expected = np.eye(8, dtype=complex)
        for name, qubit in gates:
            c.add(name, qubit)
            factors = [np.eye(2, dtype=complex)] * 3
            factors[qubit] = standard_gate_unitary(name)
            expanded = np.kron(np.kron(factors[0], factors[1]), factors[2])
            expected = expanded @ expected
        assert np.allclose(c.unitary(), expected)


class TestReversedOrder:
    def test_two_qubit_gates_reversed(self):
        c = Circuit(3)
        c.add("CNOT", 0, 1)
        c.add("SWAP", 1, 2)
        c.add("H", 0)
        r = c.reversed_two_qubit_order()
        two_q = [g.name for g in r if g.n_qubits == 2]
        assert two_q == ["SWAP", "CNOT"]

    def test_single_qubit_gates_preserved(self):
        c = Circuit(2)
        c.add("H", 0)
        c.add("CNOT", 0, 1)
        r = c.reversed_two_qubit_order()
        assert r.count("H") == 1
