"""Tests for gate objects and standard unitaries."""

import math

import numpy as np
import pytest

from repro.quantum.gates import Gate, standard_gate_unitary


class TestStandardUnitaries:
    @pytest.mark.parametrize("name", [
        "I", "X", "Y", "Z", "H", "S", "SDG", "T",
        "CNOT", "CZ", "SWAP", "ISWAP", "SYC",
    ])
    def test_fixed_gates_unitary(self, name):
        u = standard_gate_unitary(name)
        assert np.allclose(u @ u.conj().T, np.eye(u.shape[0]))

    def test_case_insensitive(self):
        assert np.allclose(
            standard_gate_unitary("cnot"), standard_gate_unitary("CNOT")
        )

    def test_s_sdg_inverse(self):
        s = standard_gate_unitary("S")
        sdg = standard_gate_unitary("SDG")
        assert np.allclose(s @ sdg, np.eye(2))

    def test_h_squares_to_identity(self):
        h = standard_gate_unitary("H")
        assert np.allclose(h @ h, np.eye(2))

    def test_cnot_action(self):
        cnot = standard_gate_unitary("CNOT")
        # |10> -> |11>
        state = np.zeros(4)
        state[2] = 1
        assert np.allclose(cnot @ state, np.eye(4)[3])

    def test_swap_action(self):
        swap = standard_gate_unitary("SWAP")
        state = np.zeros(4)
        state[1] = 1  # |01>
        assert np.allclose(swap @ state, np.eye(4)[2])  # |10>

    def test_syc_is_fsim(self):
        syc = standard_gate_unitary("SYC")
        fsim = standard_gate_unitary("FSIM", (math.pi / 2, math.pi / 6))
        assert np.allclose(syc, fsim)

    def test_rz_diagonal(self):
        rz = standard_gate_unitary("RZ", (0.8,))
        assert abs(rz[0, 1]) == 0 and abs(rz[1, 0]) == 0

    def test_rx_ry_rz_unitary(self):
        for name in ("RX", "RY", "RZ"):
            u = standard_gate_unitary(name, (1.1,))
            assert np.allclose(u @ u.conj().T, np.eye(2))

    def test_rotation_composition(self):
        a = standard_gate_unitary("RZ", (0.3,))
        b = standard_gate_unitary("RZ", (0.5,))
        assert np.allclose(a @ b, standard_gate_unitary("RZ", (0.8,)))

    def test_u3_general(self):
        u = standard_gate_unitary("U3", (0.4, 1.1, -0.2))
        assert np.allclose(u @ u.conj().T, np.eye(2))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            standard_gate_unitary("RX", (0.1, 0.2))
        with pytest.raises(ValueError):
            standard_gate_unitary("CNOT", (0.1,))

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            standard_gate_unitary("FOO")


class TestGateObject:
    def test_unitary_resolved_from_name(self):
        g = Gate("H", (0,))
        assert np.allclose(g.unitary(), standard_gate_unitary("H"))

    def test_explicit_matrix_wins(self):
        matrix = np.eye(2, dtype=complex) * 1j
        g = Gate("CUSTOM", (0,), matrix=matrix)
        assert np.allclose(g.unitary(), matrix)

    def test_matrix_shape_checked(self):
        with pytest.raises(ValueError):
            Gate("BAD", (0, 1), matrix=np.eye(2, dtype=complex))

    def test_repeated_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("CNOT", (1, 1))

    def test_on_relocates(self):
        g = Gate("CNOT", (0, 1)).on(3, 5)
        assert g.qubits == (3, 5)

    def test_with_meta_merges(self):
        g = Gate("H", (0,), meta={"a": 1}).with_meta(b=2)
        assert g.meta == {"a": 1, "b": 2}

    def test_is_two_qubit(self):
        assert Gate("CNOT", (0, 1)).is_two_qubit
        assert not Gate("H", (0,)).is_two_qubit

    def test_str_formats(self):
        assert str(Gate("RZ", (2,), (0.5,))) == "RZ(0.5)[2]"
        assert str(Gate("CNOT", (0, 1))) == "CNOT[0,1]"
