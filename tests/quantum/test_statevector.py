"""Tests for the statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.statevector import Statevector, simulate
from repro.quantum.unitaries import random_unitary


class TestStates:
    def test_zero_state(self):
        s = Statevector.zero(3)
        assert s.amplitudes[0] == 1
        assert np.allclose(np.linalg.norm(s.amplitudes), 1)

    def test_plus_state_uniform(self):
        s = Statevector.plus(2)
        assert np.allclose(s.probabilities(), 0.25)

    def test_copy_independent(self):
        s = Statevector.zero(1)
        t = s.copy()
        t.amplitudes[0] = 0
        assert s.amplitudes[0] == 1


class TestGateApplication:
    def test_x_flips(self):
        s = Statevector.zero(2)
        s.apply_gate(Gate("X", (1,)))
        assert abs(s.amplitudes[1]) == 1  # |01>

    def test_cnot_msb_control(self):
        s = Statevector.zero(2)
        s.apply_gate(Gate("X", (0,)))
        s.apply_gate(Gate("CNOT", (0, 1)))
        assert abs(s.amplitudes[3]) == 1  # |11>

    def test_gate_out_of_range(self):
        s = Statevector.zero(2)
        with pytest.raises(ValueError):
            s.apply_gate(Gate("X", (2,)))

    def test_matches_dense_unitary(self, rng):
        c = Circuit(4)
        c.add("H", 0)
        c.add("SYC", 1, 3)
        c.add("CNOT", 0, 2)
        c.add("SWAP", 2, 3)
        c.add("RZ", 1, params=(0.9,))
        state = simulate(c)
        expected = c.unitary() @ np.eye(16)[:, 0]
        assert np.allclose(state.amplitudes, expected)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_norm_preserved(self, seed):
        rng = np.random.default_rng(seed)
        c = Circuit(3)
        for _ in range(5):
            q = int(rng.integers(3))
            c.add("RX", q, params=(float(rng.uniform(0, 6)),))
            a, b = rng.choice(3, size=2, replace=False)
            c.add("CNOT", int(a), int(b))
        state = simulate(c)
        assert np.isclose(np.linalg.norm(state.amplitudes), 1.0)

    def test_random_two_qubit_matrix_gate(self, rng):
        u = random_unitary(4, rng)
        c = Circuit(2)
        c.append(Gate("APP2Q", (0, 1), matrix=u))
        state = simulate(c)
        assert np.allclose(state.amplitudes, u[:, 0])


class TestObservables:
    def test_expectation_diagonal(self):
        s = Statevector.zero(2)
        diag = np.array([1.0, -1.0, -1.0, 1.0])  # ZZ
        assert s.expectation_diagonal(diag) == 1.0

    def test_expectation_diagonal_plus_state(self):
        s = Statevector.plus(2)
        diag = np.array([1.0, -1.0, -1.0, 1.0])
        assert np.isclose(s.expectation_diagonal(diag), 0.0)

    def test_expectation_dense(self):
        s = Statevector.zero(1)
        z = np.diag([1.0, -1.0]).astype(complex)
        assert np.isclose(s.expectation(z), 1.0)

    def test_dimension_mismatch(self):
        s = Statevector.zero(2)
        with pytest.raises(ValueError):
            s.expectation_diagonal(np.zeros(3))

    def test_fidelity_self(self):
        s = Statevector.plus(3)
        assert np.isclose(s.fidelity(s), 1.0)

    def test_fidelity_orthogonal(self):
        a = Statevector.zero(1)
        b = Statevector.zero(1)
        b.apply_gate(Gate("X", (0,)))
        assert np.isclose(a.fidelity(b), 0.0)


class TestPermutation:
    def test_permute_roundtrip(self, rng):
        c = Circuit(3)
        c.add("H", 0)
        c.add("CNOT", 0, 1)
        c.add("RY", 2, params=(0.4,))
        state = simulate(c)
        perm = {0: 2, 1: 0, 2: 1}
        inverse = {v: k for k, v in perm.items()}
        roundtrip = state.permute(perm).permute(inverse)
        assert np.allclose(roundtrip.amplitudes, state.amplitudes)

    def test_permute_matches_swap_gates(self):
        c = Circuit(2)
        c.add("X", 0)
        state = simulate(c)             # |10>
        swapped = state.permute({0: 1, 1: 0})
        assert abs(swapped.amplitudes[1]) == 1  # |01>

    def test_partial_permutation_rejected(self):
        state = Statevector.zero(3)
        with pytest.raises(ValueError, match="bijection|distinct"):
            state.permute({0: 1, 1: 0})          # qubit 2 missing

    def test_non_bijective_permutation_rejected(self):
        state = Statevector.zero(2)
        with pytest.raises(ValueError):
            state.permute({0: 1, 1: 1})          # two qubits -> one slot

    def test_out_of_range_permutation_rejected(self):
        state = Statevector.zero(2)
        with pytest.raises(ValueError):
            state.permute({0: 2, 1: 0})

    def test_identity_permutation_ok(self):
        state = Statevector.plus(2)
        same = state.permute({0: 0, 1: 1})
        assert np.allclose(same.amplitudes, state.amplitudes)


class TestCircuitApplication:
    def test_size_mismatch(self):
        s = Statevector.zero(2)
        with pytest.raises(ValueError):
            s.apply_circuit(Circuit(3))

    def test_simulate_with_initial(self):
        c = Circuit(1)
        c.add("X", 0)
        initial = Statevector.plus(1)
        out = simulate(c, initial)
        # X|+> = |+>
        assert np.allclose(out.amplitudes, initial.amplitudes)
