"""The symbolic-parameter IR: affine Params, factors, symbolic unitaries.

These pin the exact semantics the bind-after-compile bit-identity rests
on: Param arithmetic stays affine, evaluation mirrors the concrete
float path bit for bit, and a SymbolicUnitary binds to the same bytes
as folding the factor matrices by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.quantum.params import (
    Param,
    PauliExponential,
    SymbolicUnitary,
    UnboundParameterError,
    exp_pauli,
    exp_x,
    exp_zz,
    factor_template_key,
    is_symbolic_value,
    parameter_names,
    probe_binding,
    resolve_value,
)


class TestParamArithmetic:
    def test_affine_chain(self):
        p = -2 * Param("t") + 1
        assert (p.name, p.scale, p.shift) == ("t", -2.0, 1.0)
        assert p.evaluate({"t": 0.25}) == -2 * 0.25 + 1

    def test_neg_mul_div_sub(self):
        p = Param("g")
        assert (-p).evaluate({"g": 0.3}) == -0.3
        assert (p * 4).evaluate({"g": 0.3}) == (4 * p).evaluate({"g": 0.3})
        assert (p / 2).evaluate({"g": 0.3}) == 0.15
        assert (p - 1).evaluate({"g": 0.3}) == 0.3 - 1
        assert (1 - p).evaluate({"g": 0.3}) == 1 - 0.3

    def test_param_times_param_rejected(self):
        with pytest.raises(TypeError):
            Param("a") * Param("b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Param("")

    def test_pure_product_matches_concrete_float_path_bitwise(self):
        # the weighted-QAOA expression: (-gamma) * w == -(gamma * w)
        for gamma in (0.35, -0.7, 1.2345678901, 3.0):
            for w in (0.5, 1.5, 2.0, 0.1):
                symbolic = (-Param("gamma")) * w
                assert symbolic.evaluate({"gamma": gamma}) == -(gamma * w)

    def test_evaluate_missing_name_raises(self):
        with pytest.raises(UnboundParameterError) as err:
            Param("gamma").evaluate({"beta": 1.0})
        assert "gamma" in str(err.value)

    def test_helpers(self):
        assert is_symbolic_value(Param("x")) and not is_symbolic_value(0.5)
        assert resolve_value(Param("x"), {"x": 2.0}) == 2.0
        assert resolve_value(0.5, None) == 0.5
        assert parameter_names(Param("x")) == frozenset({"x"})
        assert parameter_names(1.0) == frozenset()

    def test_str_forms(self):
        assert str(Param("t")) == "t"
        assert str(-2 * Param("t") + 1) == "-2*t+1"


class TestFactors:
    def test_factor_matrix_matches_builder(self):
        zz = PauliExponential("zz", "", 0.7)
        assert zz.matrix().tobytes() == exp_zz(0.7).tobytes()
        x = PauliExponential("x", "", -0.39)
        assert x.matrix().tobytes() == exp_x(-0.39).tobytes()
        xy = PauliExponential("pauli", "XY", 1.1)
        assert xy.matrix().tobytes() == exp_pauli("XY", 1.1).tobytes()

    def test_symbolic_factor_resolves_through_binding(self):
        factor = PauliExponential("zz", "", -Param("gamma"))
        assert factor.parameters == frozenset({"gamma"})
        assert factor.matrix({"gamma": 0.4}).tobytes() == \
            exp_zz(-0.4).tobytes()
        with pytest.raises(UnboundParameterError):
            factor.matrix({})

    def test_signature_carries_kind_and_label(self):
        assert PauliExponential("zz", "", 0.1).signature() == "zz:"
        assert PauliExponential("pauli", "XX", 0.1).signature() == "pauli:XX"


class TestSymbolicUnitary:
    def test_bind_equals_manual_fold(self):
        factors = (PauliExponential("pauli", "XX", Param("t")),
                   PauliExponential("pauli", "ZZ", 2 * Param("t")))
        unitary = SymbolicUnitary(factors)
        bound = unitary.bind({"t": 0.3})
        manual = exp_pauli("ZZ", 0.6) @ exp_pauli("XX", 0.3)
        assert bound.tobytes() == manual.tobytes()

    def test_parameters_union(self):
        unitary = SymbolicUnitary((
            PauliExponential("zz", "", -Param("gamma")),
            PauliExponential("x", "", Param("beta")),
        ))
        assert unitary.parameters == frozenset({"gamma", "beta"})

    def test_template_key_hashes_structure_and_binding(self):
        factors = (PauliExponential("zz", "", -Param("gamma")),)
        unitary = SymbolicUnitary(factors)
        k1 = unitary.template_key({"gamma": 0.4})
        k2 = unitary.template_key({"gamma": 0.4})
        k3 = unitary.template_key({"gamma": 0.5})
        assert k1 == k2 and k1 != k3

    def test_factor_template_key_orientation_flags(self):
        factors = (PauliExponential("zz", "", 0.4),)
        plain = factor_template_key(factors)
        conj = factor_template_key(factors, conjugated=True)
        dressed = factor_template_key(factors, dressed=True)
        assert len({plain, conj, dressed}) == 3


def test_probe_binding_is_deterministic_and_distinct():
    binding = probe_binding(("beta", "gamma"))
    assert binding == probe_binding(("gamma", "beta"))
    assert len(set(binding.values())) == 2
