"""Unit and property tests for Pauli-string algebra."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.pauli import PauliString, pauli_matrix

LABELS = "IXYZ"


def random_string(draw_labels, qubits):
    return PauliString.from_label("".join(draw_labels), tuple(qubits))


pauli_labels = st.lists(
    st.sampled_from("IXYZ"), min_size=1, max_size=4
)


class TestConstruction:
    def test_from_label_dense(self):
        p = PauliString.from_label("XIZ")
        assert p.label_on(0) == "X"
        assert p.label_on(1) == "I"
        assert p.label_on(2) == "Z"

    def test_from_label_with_qubits(self):
        p = PauliString.from_label("XZ", (2, 5))
        assert p.qubits == (2, 5)

    def test_identities_dropped(self):
        p = PauliString.from_label("IXI")
        assert p.qubits == (1,)
        assert p.weight == 1

    def test_sorted_by_qubit(self):
        p = PauliString(((5, "X"), (2, "Z")))
        assert p.qubits == (2, 5)

    def test_duplicate_qubit_rejected(self):
        with pytest.raises(ValueError):
            PauliString(((0, "X"), (0, "Z")))

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            PauliString(((0, "Q"),))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError):
            PauliString(((-1, "X"),))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XX", (0,))

    def test_str(self):
        assert str(PauliString.from_label("XZ", (0, 3))) == "X0*Z3"
        assert str(PauliString()) == "I"

    def test_hashable(self):
        a = PauliString.from_label("XX", (0, 1))
        b = PauliString.from_label("XX", (0, 1))
        assert a == b
        assert hash(a) == hash(b)


class TestMatrices:
    def test_single_qubit_matrices(self):
        for label in "IXYZ":
            matrix = pauli_matrix(label)
            assert matrix.shape == (2, 2)
            assert np.allclose(matrix @ matrix, np.eye(2))

    def test_unknown_matrix_label(self):
        with pytest.raises(ValueError):
            pauli_matrix("A")

    def test_to_matrix_xx(self):
        p = PauliString.from_label("XX")
        x = pauli_matrix("X")
        assert np.allclose(p.to_matrix(2), np.kron(x, x))

    def test_to_matrix_embeds_identity(self):
        p = PauliString.from_label("Z", (1,))
        z = pauli_matrix("Z")
        expected = np.kron(np.kron(np.eye(2), z), np.eye(2))
        assert np.allclose(p.to_matrix(3), expected)

    def test_to_matrix_out_of_range(self):
        p = PauliString.from_label("Z", (4,))
        with pytest.raises(ValueError):
            p.to_matrix(3)

    def test_to_matrix_hermitian_unitary(self):
        p = PauliString.from_label("XYZ")
        matrix = p.to_matrix(3)
        assert np.allclose(matrix, matrix.conj().T)
        assert np.allclose(matrix @ matrix, np.eye(8))


class TestExponential:
    @pytest.mark.parametrize("label", ["XX", "YY", "ZZ", "XZ", "YX"])
    @pytest.mark.parametrize("theta", [0.0, 0.3, -1.2, np.pi / 2])
    def test_exp_matches_expm(self, label, theta):
        p = PauliString.from_label(label)
        expected = sla.expm(1j * theta * p.to_matrix(2))
        assert np.allclose(p.exp(theta), expected)

    def test_exp_single_qubit(self):
        p = PauliString.from_label("X", (3,))
        expected = sla.expm(1j * 0.7 * pauli_matrix("X"))
        assert np.allclose(p.exp(0.7), expected)

    def test_exp_identity_is_phase(self):
        p = PauliString()
        assert np.allclose(p.exp(0.5), np.exp(0.5j) * np.eye(1))

    def test_exp_is_unitary(self):
        p = PauliString.from_label("YZ")
        u = p.exp(1.234)
        assert np.allclose(u @ u.conj().T, np.eye(4))

    def test_exp_on_sparse_support(self):
        # support (0, 2): compact matrix acts on 2 qubits
        p = PauliString.from_label("XZ", (0, 2))
        assert p.exp(0.4).shape == (4, 4)


class TestCommutation:
    def test_xx_commutes_zz(self):
        a = PauliString.from_label("XX", (0, 1))
        b = PauliString.from_label("ZZ", (0, 1))
        assert a.commutes_with(b)

    def test_anticommuting_overlap(self):
        a = PauliString.from_label("XX", (0, 1))
        b = PauliString.from_label("YY", (1, 2))
        assert not a.commutes_with(b)

    def test_disjoint_always_commute(self):
        a = PauliString.from_label("XY", (0, 1))
        b = PauliString.from_label("ZZ", (2, 3))
        assert a.commutes_with(b)

    @given(
        la=st.sampled_from(["XX", "YY", "ZZ", "XY", "ZX"]),
        lb=st.sampled_from(["XX", "YY", "ZZ", "XY", "ZX"]),
        qa=st.sampled_from([(0, 1), (1, 2), (0, 2)]),
        qb=st.sampled_from([(0, 1), (1, 2), (0, 2)]),
    )
    @settings(max_examples=60, deadline=None)
    def test_commutation_matches_matrices(self, la, lb, qa, qb):
        a = PauliString.from_label(la, qa)
        b = PauliString.from_label(lb, qb)
        ma, mb = a.to_matrix(3), b.to_matrix(3)
        commutator_zero = np.allclose(ma @ mb, mb @ ma)
        assert a.commutes_with(b) == commutator_zero

    @given(
        la=st.sampled_from(["X", "Y", "Z", "XX", "YZ"]),
        lb=st.sampled_from(["X", "Y", "Z", "XX", "YZ"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_commutation_symmetric(self, la, lb):
        a = PauliString.from_label(la)
        b = PauliString.from_label(lb)
        assert a.commutes_with(b) == b.commutes_with(a)


class TestProduct:
    @given(
        la=st.sampled_from(["XX", "YY", "ZZ", "XZ", "YX", "XI"]),
        lb=st.sampled_from(["XX", "YY", "ZZ", "XZ", "YX", "IZ"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_product_matches_matrices(self, la, lb):
        a = PauliString.from_label(la)
        b = PauliString.from_label(lb)
        phase, product = a * b
        expected = a.to_matrix(2) @ b.to_matrix(2)
        assert np.allclose(phase * product.to_matrix(2), expected)

    def test_product_disjoint_supports(self):
        a = PauliString.from_label("X", (0,))
        b = PauliString.from_label("Z", (2,))
        phase, product = a * b
        assert phase == 1
        assert product.qubits == (0, 2)

    def test_self_product_is_identity(self):
        a = PauliString.from_label("XYZ")
        phase, product = a * a
        assert phase == 1
        assert product.weight == 0
