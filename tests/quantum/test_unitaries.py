"""Tests for unitary helper functions."""

import numpy as np
import pytest

from repro.quantum.unitaries import (
    allclose_up_to_global_phase,
    average_gate_fidelity,
    closest_kron_factors,
    process_fidelity,
    random_su2,
    random_unitary,
    to_su2,
    to_su4,
)


class TestGlobalPhase:
    def test_equal_matrices(self, rng):
        u = random_unitary(4, rng)
        assert allclose_up_to_global_phase(u, u)

    def test_phase_rotated(self, rng):
        u = random_unitary(4, rng)
        assert allclose_up_to_global_phase(np.exp(0.7j) * u, u)

    def test_different_matrices(self, rng):
        u, v = random_unitary(4, rng), random_unitary(4, rng)
        assert not allclose_up_to_global_phase(u, v)

    def test_shape_mismatch(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.eye(4))

    def test_scaled_not_equal(self, rng):
        u = random_unitary(2, rng)
        assert not allclose_up_to_global_phase(2.0 * u, u)


class TestFidelities:
    def test_process_fidelity_identical(self, rng):
        u = random_unitary(4, rng)
        assert np.isclose(process_fidelity(u, u), 1.0)

    def test_process_fidelity_phase_invariant(self, rng):
        u = random_unitary(4, rng)
        assert np.isclose(process_fidelity(np.exp(1j) * u, u), 1.0)

    def test_average_fidelity_range(self, rng):
        u, v = random_unitary(4, rng), random_unitary(4, rng)
        f = average_gate_fidelity(u, v)
        assert 0.0 <= f <= 1.0

    def test_average_fidelity_identity(self, rng):
        u = random_unitary(4, rng)
        assert np.isclose(average_gate_fidelity(u, u), 1.0)


class TestKronFactors:
    def test_exact_product_recovered(self, rng):
        a, b = random_unitary(2, rng), random_unitary(2, rng)
        fa, fb = closest_kron_factors(np.kron(a, b))
        assert np.allclose(np.kron(fa, fb), np.kron(a, b))

    def test_non_product_approximated(self, rng):
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
        fa, fb = closest_kron_factors(cnot)
        # CNOT is entangling: no tensor product reproduces it
        assert not np.allclose(np.kron(fa, fb), cnot)

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            closest_kron_factors(np.eye(2))


class TestSpecialization:
    def test_to_su2(self, rng):
        u = random_unitary(2, rng)
        su, phase = to_su2(u)
        assert np.isclose(np.linalg.det(su), 1.0)
        assert np.allclose(phase * su, u)

    def test_to_su4(self, rng):
        u = random_unitary(4, rng)
        su, phase = to_su4(u)
        assert np.isclose(np.linalg.det(su), 1.0)
        assert np.allclose(phase * su, u)

    def test_random_su2_determinant(self, rng):
        for _ in range(5):
            assert np.isclose(np.linalg.det(random_su2(rng)), 1.0)

    def test_random_unitary_is_unitary(self, rng):
        u = random_unitary(8, rng)
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-10)
