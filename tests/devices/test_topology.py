"""Tests for the device model."""

import numpy as np
import pytest

from repro.devices.topology import Device


def path3():
    return Device("path3", 3, ((0, 1), (1, 2)))


class TestConstruction:
    def test_normalized_edges(self):
        d = Device("d", 3, ((1, 0), (2, 1)))
        assert d.edges == ((0, 1), (1, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Device("d", 2, ((0, 0),))

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            Device("d", 2, ((0, 1), (1, 0)))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Device("d", 2, ((0, 2),))


class TestNeighbors:
    def test_adjacency(self):
        d = path3()
        assert d.neighbors(1) == {0, 2}
        assert d.neighbors(0) == {1}

    def test_are_neighbors(self):
        d = path3()
        assert d.are_neighbors(0, 1)
        assert not d.are_neighbors(0, 2)

    def test_max_degree(self):
        assert path3().max_degree == 2


class TestDistances:
    def test_path_distances(self):
        d = path3()
        assert d.distance[0, 2] == 2
        assert d.distance[0, 1] == 1
        assert d.distance[1, 1] == 0

    def test_symmetric(self):
        d = path3()
        assert np.allclose(d.distance, d.distance.T)

    def test_triangle_inequality(self):
        d = Device("ring5", 5, tuple((i, (i + 1) % 5) for i in range(5)))
        dist = d.distance
        for a in range(5):
            for b in range(5):
                for c in range(5):
                    assert dist[a, c] <= dist[a, b] + dist[b, c] + 1e-9

    def test_ring_diameter(self):
        d = Device("ring6", 6, tuple((i, (i + 1) % 6) for i in range(6)))
        assert d.diameter == 3

    def test_disconnected_rejected(self):
        d = Device("disc", 4, ((0, 1), (2, 3)))
        with pytest.raises(ValueError):
            _ = d.distance

    def test_distance_cached(self):
        d = path3()
        assert d.distance is d.distance

    def test_str(self):
        text = str(path3())
        assert "3 qubits" in text and "2 edges" in text


class TestIntegerDistances:
    def test_hop_count_devices_are_integer(self):
        assert path3().integer_distances

    def test_weighted_devices_are_not(self):
        d = Device("w", 3, ((0, 1), (1, 2)),
                   edge_weights={(0, 1): 1.5, (1, 2): 1.0})
        assert not d.integer_distances

    def test_cached(self):
        d = path3()
        assert d.integer_distances is d.integer_distances


class TestAdjacencyMatrix:
    def test_matches_are_neighbors(self):
        d = path3()
        mat = d.adjacency_matrix
        for a in range(3):
            for b in range(3):
                assert mat[a, b] == d.are_neighbors(a, b)

    def test_cached(self):
        d = path3()
        assert d.adjacency_matrix is d.adjacency_matrix


class TestScaledIntegerDistances:
    def test_hop_count_devices_scale_one(self):
        d = path3()
        rows, scale = d.scaled_integer_distances
        assert scale == 1
        assert rows == [[0, 1, 2], [1, 0, 1], [2, 1, 0]]
        assert all(isinstance(x, int) for row in rows for x in row)

    def test_dyadic_weights_scale_exactly(self):
        d = Device("w", 3, ((0, 1), (1, 2)),
                   edge_weights={(0, 1): 1.5, (1, 2): 0.5})
        rows, scale = d.scaled_integer_distances
        assert scale == 2
        dist = d.distance
        for a in range(3):
            for b in range(3):
                assert float(dist[a, b]) * scale == rows[a][b]

    def test_non_dyadic_weights_return_none(self):
        # 0.1 has a 2**55 denominator in binary: over the scale cap
        d = Device("w", 3, ((0, 1), (1, 2)),
                   edge_weights={(0, 1): 0.1, (1, 2): 1.0})
        assert d.scaled_integer_distances is None

    def test_nonpositive_weight_returns_none(self):
        d = Device("w", 3, ((0, 1), (1, 2)),
                   edge_weights={(0, 1): -0.5, (1, 2): 1.0})
        assert d.scaled_integer_distances is None

    def test_zero_weight_is_exact_via_integer_valued_distances(self):
        # a 0.0 weight keeps the float matrix integer-valued, so the
        # hop-count fast path already represents it exactly at scale 1
        d = Device("w", 3, ((0, 1), (1, 2)),
                   edge_weights={(0, 1): 0.0, (1, 2): 1.0})
        rows, scale = d.scaled_integer_distances
        assert scale == 1
        dist = d.distance
        assert all(float(dist[i, j]) == rows[i][j]
                   for i in range(3) for j in range(3))

    def test_cached(self):
        d = path3()
        assert d.scaled_integer_distances is d.scaled_integer_distances

    def test_survives_pickling(self):
        # devices are shipped to worker processes by the parallel sweep
        # engine; the memo cache must stay usable after a round trip,
        # whether it was populated before pickling or not
        import pickle

        d = path3()
        fresh = pickle.loads(pickle.dumps(d))
        assert fresh.scaled_integer_distances == d.scaled_integer_distances
        _ = d.scaled_integer_distances
        warmed = pickle.loads(pickle.dumps(d))
        rows, scale = warmed.scaled_integer_distances
        assert (rows, scale) == d.scaled_integer_distances
