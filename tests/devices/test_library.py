"""Tests for the paper's device topologies."""

import pytest

from repro.devices.library import (
    all_to_all,
    aspen,
    by_name,
    grid,
    heavy_hex,
    line,
    manhattan,
    montreal,
    sycamore,
)


class TestMontreal:
    def test_size(self):
        d = montreal()
        assert d.n_qubits == 27
        assert len(d.edges) == 28

    def test_heavy_hex_degrees(self):
        """Heavy-hex lattices have degree at most 3."""
        assert montreal().max_degree == 3

    def test_known_couplings(self):
        d = montreal()
        assert d.are_neighbors(0, 1)
        assert d.are_neighbors(25, 26)
        assert not d.are_neighbors(0, 26)


class TestSycamore:
    def test_size_54(self):
        d = sycamore()
        assert d.n_qubits == 54

    def test_grid_degree(self):
        assert sycamore().max_degree == 4

    def test_connected(self):
        assert sycamore().diameter > 0


class TestAspen:
    def test_two_octagons(self):
        d = aspen()
        assert d.n_qubits == 16
        assert len(d.edges) == 18  # 8 + 8 ring edges + 2 bridges

    def test_ring_structure(self):
        d = aspen()
        assert d.are_neighbors(0, 7)      # octagon A closes
        assert d.are_neighbors(8, 15)     # octagon B closes
        assert d.are_neighbors(1, 14)     # bridge
        assert d.are_neighbors(2, 13)     # bridge

    def test_max_degree_three(self):
        assert aspen().max_degree == 3


class TestManhattan:
    def test_size_65(self):
        d = manhattan()
        assert d.n_qubits == 65

    def test_heavy_hex_degree(self):
        assert manhattan().max_degree <= 3

    def test_connected(self):
        assert manhattan().diameter > 10


class TestGenerics:
    def test_grid_2x3_fig3(self):
        d = grid(2, 3)
        assert d.n_qubits == 6
        assert len(d.edges) == 7

    def test_line_edges(self):
        assert len(line(10).edges) == 9

    def test_all_to_all_diameter_one(self):
        assert all_to_all(8).diameter == 1

    def test_heavy_hex_generator(self):
        d = heavy_hex(3, 6)
        assert d.max_degree <= 3
        assert d.diameter > 0


class TestLookup:
    @pytest.mark.parametrize("name,size", [
        ("montreal", 27), ("sycamore", 54), ("aspen", 16), ("manhattan", 65),
    ])
    def test_by_name(self, name, size):
        assert by_name(name).n_qubits == size

    def test_unknown(self):
        with pytest.raises(ValueError):
            by_name("nonexistent")
