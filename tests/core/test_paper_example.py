"""The paper's worked example (Figure 3): a 6-qubit 2-local Hamiltonian
compiled onto a 2x3 grid.

The paper's generic compiler needs 3 SWAPs (12 two-qubit gates, depth 7);
the application-specific flow needs 2 SWAPs, both mergeable, giving 9
two-qubit gates and depth 5.  Our instance differs (the paper does not
fully specify its Hamiltonian), but the *qualitative* facts must hold:
2QAN inserts at most 2 SWAPs beyond the 7 NN-schedulable operators, every
inserted SWAP can dress, and the application-level gate total stays at
(number of pairs) + (undressed SWAPs).
"""

import numpy as np

from repro.core.compiler import TwoQANCompiler
from repro.core.unify import unify_circuit_operators
from repro.devices import grid
from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.trotter import trotter_step
from repro.verification import verify_compilation, verify_operator_conservation


def figure3_hamiltonian() -> TwoLocalHamiltonian:
    """A 6-qubit 2-local Hamiltonian with 9 interactions like Figure 3a.

    Nine two-qubit operators on six qubits (the R gates of Fig. 3a) plus
    a layer of single-qubit operators; XX+YY terms make the operators
    genuinely non-commuting, so gate-level reordering would be illegal.
    """
    h = TwoLocalHamiltonian(6)
    pairs = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (3, 5),
             (4, 5), (0, 5)]
    rng = np.random.default_rng(7)
    for u, v in pairs:
        h.add(float(rng.uniform(0.2, 1.0)), "XX", (u, v))
        h.add(float(rng.uniform(0.2, 1.0)), "YY", (u, v))
    for k in range(6):
        h.add(float(rng.uniform(0.2, 1.0)), "X", (k,))
    return h


class TestFigure3:
    def test_two_swaps_suffice(self):
        step = trotter_step(figure3_hamiltonian())
        compiler = TwoQANCompiler(grid(2, 3), "CNOT", seed=3)
        result = compiler.compile(step)
        assert result.n_swaps <= 2

    def test_application_gate_total(self):
        """App-level 2q blocks = 9 pairs + undressed SWAPs (paper: 9+2
        with both SWAPs merged -> 9 blocks, vs 12 for the generic flow)."""
        step = trotter_step(figure3_hamiltonian())
        compiler = TwoQANCompiler(grid(2, 3), "CNOT", seed=3)
        result = compiler.compile(step)
        app = result.scheduled.to_circuit()
        blocks = sum(1 for g in app if g.n_qubits == 2)
        assert blocks == 9 + (result.n_swaps - result.n_dressed)
        assert blocks <= 11

    def test_generic_compiler_worse(self):
        from repro.baselines import compile_tket_like
        step = trotter_step(figure3_hamiltonian())
        ours = TwoQANCompiler(grid(2, 3), "CNOT", seed=3).compile(step)
        generic = compile_tket_like(step, grid(2, 3), "CNOT", seed=3)
        assert ours.metrics.n_two_qubit_gates <= \
            generic.metrics.n_two_qubit_gates

    def test_unitary_semantics(self):
        step = unify_circuit_operators(trotter_step(figure3_hamiltonian()))
        compiler = TwoQANCompiler(grid(2, 3), "CNOT", seed=3,
                                  solve_angles=True)
        result = compiler.compile(step)
        assert verify_operator_conservation(result, step)
        assert verify_compilation(result, step)
