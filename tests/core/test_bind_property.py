"""Property: binding after a structural compile is bit-identical to
compiling the concrete circuit -- for every registered compiler and
arbitrary angle draws.

This is the contract the whole structure/parameter split rests on: the
passes before ``binding`` never look at angle values, and the suffix
(binding + decomposition) folds exactly the factor matrices the
concrete front end builds.  Identity is asserted at the strongest
level available: gate-by-gate unitary *bytes* plus the full metrics
tuple, not just counts.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harness import build_symbolic_step
from repro.core.bind import compile_structural
from repro.core.registry import compiler_names, get_compiler, resolve_spec
from repro.devices.library import all_to_all, by_name

BENCHMARK = "QAOA-REG-3"   # every compiler accepts it (incl. ic_qaoa)
N_QUBITS = 6


def _compiler(name: str):
    spec = resolve_spec(name)
    device = by_name("montreal") if spec.requires_device \
        else all_to_all(N_QUBITS)
    return get_compiler(name, device=device, gateset="CNOT", seed=0)


@pytest.fixture(scope="module")
def structurals():
    """One structural compilation per registered compiler (shared by
    every angle draw: that is the whole point of the split)."""
    symbolic = build_symbolic_step(BENCHMARK, N_QUBITS, 0)
    return {name: compile_structural(_compiler(name), symbolic)
            for name in compiler_names()}


def assert_bit_identical(warm, cold, context: str) -> None:
    assert warm.metrics == cold.metrics, context
    a, b = warm.circuit, cold.circuit
    assert a.n_qubits == b.n_qubits, context
    assert len(a.gates) == len(b.gates), context
    for ga, gb in zip(a.gates, b.gates):
        assert ga.name == gb.name, context
        assert ga.qubits == gb.qubits, context
        assert ga.unitary().tobytes() == gb.unitary().tobytes(), context
    if not (math.isnan(warm.qap_cost) and math.isnan(cold.qap_cost)):
        assert warm.qap_cost == cold.qap_cost, context


angles = st.floats(min_value=-10.0, max_value=10.0,
                   allow_nan=False, allow_infinity=False)


@given(gamma=angles, beta=angles)
@settings(max_examples=8, deadline=None)
def test_bind_after_structural_compile_matches_concrete(structurals,
                                                        gamma, beta):
    binding = {"gamma": gamma, "beta": beta}
    symbolic = build_symbolic_step(BENCHMARK, N_QUBITS, 0)
    concrete = symbolic.bind(binding)
    for name, structural in structurals.items():
        warm = structural.bind(binding)
        cold = _compiler(name).compile(concrete)
        assert_bit_identical(warm, cold,
                             f"{name} diverges at {binding}")
