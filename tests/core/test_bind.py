"""The bind pass and the compile-once / bind-per-request split.

Covers the seams the end-to-end property test does not isolate: the
pass is a no-op on concrete circuits, missing names fail loudly,
structural compilations are reusable (binding never mutates them), and
pipelines without a binding pass are rejected up front.
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import build_symbolic_step
from repro.core.bind import (
    bind_scheduled,
    compile_structural,
    scheduled_parameters,
)
from repro.core.pipeline import PassPipeline
from repro.core.registry import get_compiler
from repro.devices.library import by_name
from repro.hamiltonians.models import nnn_ising
from repro.hamiltonians.trotter import trotter_step
from repro.quantum.params import Param, UnboundParameterError

N = 6


def _compiler():
    return get_compiler("2qan", device=by_name("montreal"),
                        gateset="CNOT", seed=0)


def test_bind_pass_is_noop_on_concrete_steps():
    step = trotter_step(nnn_ising(N, seed=0))
    result = _compiler().compile(step)
    assert "binding" in result.timings
    assert result.metrics.n_two_qubit_gates > 0


def test_unbound_compile_raises_with_names():
    step = trotter_step(nnn_ising(N, seed=0), t=Param("t"))
    with pytest.raises(UnboundParameterError) as err:
        _compiler().compile(step)
    assert "t" in str(err.value)


def test_partial_binding_reports_missing_names():
    step = build_symbolic_step("QAOA-REG-3", N, 0)
    with pytest.raises(UnboundParameterError) as err:
        _compiler().compile(step, binding={"gamma": 0.4})
    assert "beta" in str(err.value)


def test_unused_binding_names_are_ignored():
    step = trotter_step(nnn_ising(N, seed=0), t=Param("t"))
    concrete = _compiler().compile(step.bind({"t": 0.5}))
    extra = _compiler().compile(step, binding={"t": 0.5, "unused": 9.9})
    assert extra.metrics == concrete.metrics


def test_structural_compilation_is_reusable():
    structural = compile_structural(
        _compiler(), build_symbolic_step("QAOA-REG-3", N, 0))
    assert structural.parameters == frozenset({"gamma", "beta"})
    assert structural.prefix_names == ("unify", "mapping", "routing",
                                       "scheduling")
    first = structural.bind({"gamma": 0.4, "beta": 1.1})
    again = structural.bind({"gamma": 0.4, "beta": 1.1})
    other = structural.bind({"gamma": -2.0, "beta": 0.3})
    assert first.metrics == again.metrics
    assert [g.unitary().tobytes() for g in first.circuit.gates] == \
        [g.unitary().tobytes() for g in again.circuit.gates]
    # a different binding flows through the same structure
    assert other.metrics.n_swaps == first.metrics.n_swaps
    # the structural schedule stays symbolic after any number of binds
    assert scheduled_parameters(structural.ctx.scheduled) == \
        frozenset({"gamma", "beta"})


def test_bind_structural_missing_name_raises():
    structural = compile_structural(
        _compiler(), build_symbolic_step("QAOA-REG-3", N, 0))
    with pytest.raises(UnboundParameterError):
        structural.bind({"gamma": 0.4})


def test_pipeline_without_binding_pass_rejected():
    class NoBindCompiler:
        gateset = None
        seed = 0
        cache = None

        def build_pipeline(self):
            return PassPipeline([])

    with pytest.raises(ValueError) as err:
        compile_structural(NoBindCompiler(),
                           trotter_step(nnn_ising(N, seed=0)))
    assert "binding" in str(err.value)


def test_bind_scheduled_shares_concrete_items_and_keeps_input():
    structural = compile_structural(
        _compiler(), build_symbolic_step("QAOA-REG-3", N, 0))
    scheduled = structural.ctx.scheduled
    bound = bind_scheduled(scheduled, {"gamma": 0.4, "beta": 1.1})
    assert scheduled_parameters(bound) == frozenset()
    # the input schedule is untouched (it is bound many times)
    assert scheduled_parameters(scheduled) == frozenset({"gamma", "beta"})
    assert len(bound.items) == len(scheduled.items)
