"""Equivalence tests for the incremental routing engine.

The incremental candidate-scoring engine (per-logical `_CostIndex`
deltas + pair-keyed `_DressIndex`) is pinned *bit-for-bit* (`==`, not
`isclose`) against the retained scalar references
(`_remaining_cost` rescans, `_find_dressable` list scans) on randomized
steps and devices.  The index works on the device's scaled-integer
distance rows, so the delta-updated running total is exact integer
arithmetic on hop-count *and* dyadically weighted devices alike -- same
candidate scores, same tie-breaks, same RNG draws, same routed problem.
Covered shapes: square grids with and without spare qubits, duplicate-
pair (un-unified) operator lists, dress on/off, every criteria order
including the noise-aware "error" criterion, and dyadic edge-weighted
grids; mirrors ``tests/mapping/test_delta_kernel.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import (
    QubitMap,
    _CostIndex,
    _MapMirror,
    _remaining_cost,
    route,
)
from repro.core.routing_perf_smoke import routed_equal
from repro.devices.library import grid
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep, TwoQubitOperator

#: Dyadic edge weights: exact in float64 and cheap to scale (x2).
DYADIC_WEIGHTS = (0.5, 1.0, 1.5, 2.0)


def with_dyadic_weights(device, seed: int):
    """The same topology with random dyadic edge weights attached."""
    rng = np.random.default_rng(seed)
    weights = {
        edge: float(DYADIC_WEIGHTS[int(rng.integers(len(DYADIC_WEIGHTS)))])
        for edge in device.edges
    }
    return Device(f"{device.name}-weighted", device.n_qubits, device.edges,
                  edge_errors=device.edge_errors, edge_weights=weights)

CRITERIA_ORDERS = (
    ("count",),
    ("count", "depth"),
    ("count", "depth", "dress"),
    ("dress", "count", "depth"),
    ("depth", "dress", "count"),
    ("count", "error", "depth", "dress"),
    ("error", "count"),
)


def random_problem(seed: int):
    """A random step + square-grid device + initial placement.

    Every third seed leaves no spare qubits (logical count == device
    size); every fifth keeps duplicate interaction pairs (an un-unified
    step).  Every second device carries random edge errors so criteria
    orders with ``"error"`` are exercised.
    """
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(2, 5))
    cols = int(rng.integers(2, 5))
    device = grid(rows, cols)
    if seed % 2 == 0:
        from repro.noise.device_noise import with_random_edge_errors

        device = with_random_edge_errors(device, seed=seed)
    m = device.n_qubits
    n = m if seed % 3 == 0 else int(rng.integers(2, m + 1))
    n_ops = int(rng.integers(1, 2 * n + 1))
    ops = []
    for k in range(n_ops):
        u, v = sorted(int(q) for q in rng.choice(n, size=2, replace=False))
        ops.append(TwoQubitOperator((u, v), np.eye(4), label=f"g{k}"))
    if seed % 5 != 0:
        # unify-style unique pairs (the usual router input)
        seen, unique = set(), []
        for op in ops:
            if op.qubits not in seen:
                seen.add(op.qubits)
                unique.append(op)
        ops = unique
    step = TrotterStep(n, ops, [])
    initial = np.array(rng.permutation(m)[:n])
    dress = bool(rng.integers(2))
    criteria = CRITERIA_ORDERS[int(rng.integers(len(CRITERIA_ORDERS)))]
    if "error" in criteria and not device.edge_errors:
        criteria = tuple(c for c in criteria if c != "error")
    return step, device, initial, dress, criteria


class TestIncrementalVsReferenceRoute:
    @given(st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_routed_problems_identical(self, seed):
        """The full routed trajectory is pinned engine-to-engine."""
        step, device, initial, dress, criteria = random_problem(seed)
        kwargs = dict(seed=seed % 17, dress=dress, criteria=criteria)
        incremental = route(step, device, initial,
                            engine="incremental", **kwargs)
        reference = route(step, device, initial,
                          engine="reference", **kwargs)
        assert routed_equal(incremental, reference)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_auto_engine_matches_reference_on_hop_devices(self, seed):
        step, device, initial, dress, criteria = random_problem(seed)
        assert device.integer_distances
        auto = route(step, device, initial, seed=1, dress=dress,
                     criteria=criteria)
        reference = route(step, device, initial, seed=1, dress=dress,
                          criteria=criteria, engine="reference")
        assert routed_equal(auto, reference)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_weighted_devices_identical(self, seed):
        """Dyadic edge weights: the scaled-integer cost rows keep the
        incremental engine bit-identical to the float reference."""
        step, device, initial, dress, criteria = random_problem(seed)
        device = with_dyadic_weights(device, seed + 7)
        kwargs = dict(seed=seed % 17, dress=dress, criteria=criteria)
        incremental = route(step, device, initial,
                            engine="incremental", **kwargs)
        reference = route(step, device, initial,
                          engine="reference", **kwargs)
        assert routed_equal(incremental, reference)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_auto_engine_is_incremental_on_weighted_devices(self, seed):
        """ROADMAP leftover: auto no longer falls back to the scalar
        rescan just because the device carries edge weights."""
        step, device, initial, dress, criteria = random_problem(seed)
        device = with_dyadic_weights(device, seed + 7)
        assert device.scaled_integer_distances is not None
        auto = route(step, device, initial, seed=1, dress=dress,
                     criteria=criteria)
        incremental = route(step, device, initial, seed=1, dress=dress,
                            criteria=criteria, engine="incremental")
        assert routed_equal(auto, incremental)


class TestCostIndexDeltas:
    @given(st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_candidate_cost_matches_scalar_rescan(self, seed):
        """candidate_cost == _remaining_cost of the trial map, bit for
        bit, across a random swap walk with random op removals."""
        step, device, initial, _, _ = random_problem(seed)
        rng = np.random.default_rng(seed + 1)
        qmap = QubitMap.from_assignment(initial, n_physical=device.n_qubits)
        unrouted = list(step.two_qubit_ops)
        mirror = _MapMirror(qmap)
        index = _CostIndex(device, qmap, unrouted, mirror)
        edges = list(device.edges)
        for _ in range(8):
            assert index.total == _remaining_cost(device, qmap, unrouted)
            for edge in edges:
                trial = qmap.after_swap(edge)
                assert index.candidate_cost(edge) == \
                    _remaining_cost(device, trial, unrouted)   # bit-for-bit
            # walk: commit a random edge, sometimes absorb an operator
            edge = edges[int(rng.integers(len(edges)))]
            index.commit(edge)
            qmap = qmap.after_swap(edge)
            mirror.apply_swap(edge)
            if unrouted and rng.integers(2):
                op = unrouted.pop(int(rng.integers(len(unrouted))))
                u, v = op.qubits
                index.discard(op, qmap.physical(u), qmap.physical(v))

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_weighted_candidate_cost_is_scaled_rescan(self, seed):
        """On a dyadically weighted device the integer candidate cost
        equals the float rescan times the scale, exactly."""
        step, device, initial, _, _ = random_problem(seed)
        device = with_dyadic_weights(device, seed + 7)
        qmap = QubitMap.from_assignment(initial, n_physical=device.n_qubits)
        unrouted = list(step.two_qubit_ops)
        mirror = _MapMirror(qmap)
        index = _CostIndex(device, qmap, unrouted, mirror)
        scale = index.scale
        assert index.total == _remaining_cost(device, qmap, unrouted) * scale
        for edge in device.edges:
            trial = qmap.after_swap(edge)
            assert index.candidate_cost(edge) == \
                _remaining_cost(device, trial, unrouted) * scale


class TestErrorCriterionValidation:
    def test_error_without_edge_errors_rejected(self):
        step = TrotterStep(2, [TwoQubitOperator((0, 1), np.eye(4))], [])
        device = grid(2, 2)
        assert not device.edge_errors
        with pytest.raises(ValueError, match="edge-error"):
            route(step, device, np.arange(2), criteria=("count", "error"))

    def test_rejected_even_when_nothing_to_route(self):
        """The silent-no-op configuration fails loudly up front, not
        only once a SWAP has to be scored."""
        step = TrotterStep(2, [], [])
        with pytest.raises(ValueError, match="edge-error"):
            route(step, grid(2, 2), np.arange(2), criteria=("error",))

    def test_error_with_edge_errors_accepted(self):
        from repro.noise.device_noise import with_random_edge_errors

        step = TrotterStep(2, [TwoQubitOperator((0, 1), np.eye(4))], [])
        device = with_random_edge_errors(grid(2, 2), seed=0)
        routed = route(step, device, np.arange(2),
                       criteria=("count", "error"))
        assert routed.n_swaps == 0


class TestUnknownEngineRejected:
    def test_bogus_engine(self):
        step = TrotterStep(2, [TwoQubitOperator((0, 1), np.eye(4))], [])
        with pytest.raises(ValueError, match="engine"):
            route(step, grid(2, 2), np.arange(2), engine="bogus")
