"""The CI bind perf smoke stays runnable and honest.

The strict >= 5x timing assertion lives in the dedicated CI job
(`python -m repro.core.bind_perf_smoke`); here we only pin what must
never flake: the smoke runs, every bound circuit is bit-identical to
its cold-compiled twin, and both timings are real measurements.
"""

from repro.core import bind_perf_smoke


def test_measure_bound_circuits_bit_identical():
    warm_s, cold_s, identical = bind_perf_smoke.measure(
        bindings=bind_perf_smoke.angle_sets(3))
    assert identical
    assert warm_s > 0
    assert cold_s > 0


def test_main_runs_end_to_end(capsys, monkeypatch):
    """main() exercised with the timing bar lowered to zero: the strict
    >= 5x assertion belongs to the dedicated CI job, not to tier-1,
    where a contended runner could flake it."""
    monkeypatch.setattr(bind_perf_smoke, "MIN_RATIO", 0.0)
    assert bind_perf_smoke.main() == 0
    assert "ratio" in capsys.readouterr().out
