"""Property-based tests: compiler invariants over random problems/devices.

These fuzz the whole routing + scheduling stack with random 2-local
Hamiltonians on random connected devices and assert the invariants that
make a compilation *correct* regardless of quality:

* every operator is executed exactly once (as a gate or inside a dressed
  SWAP) and only when its qubits are physically adjacent;
* SWAPs appear in routing order and only on hardware edges;
* no two same-cycle items share a qubit;
* the map evolution implied by the schedule ends at the router's final map.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import route
from repro.core.scheduling import schedule_alap
from repro.core.unify import unify_circuit_operators
from repro.devices.topology import Device
from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.trotter import trotter_step


def random_device(rng: np.random.Generator, n_qubits: int) -> Device:
    """A random connected device: a spanning tree plus extra edges."""
    order = rng.permutation(n_qubits)
    edges = set()
    for i in range(1, n_qubits):
        a = int(order[i])
        b = int(order[rng.integers(i)])
        edges.add((min(a, b), max(a, b)))
    n_extra = int(rng.integers(0, n_qubits))
    for _ in range(n_extra):
        a, b = rng.choice(n_qubits, size=2, replace=False)
        edges.add((min(int(a), int(b)), max(int(a), int(b))))
    return Device("random", n_qubits, tuple(sorted(edges)))


def random_hamiltonian(rng: np.random.Generator,
                       n_qubits: int) -> TwoLocalHamiltonian:
    h = TwoLocalHamiltonian(n_qubits)
    n_terms = int(rng.integers(3, 4 * n_qubits))
    labels = ["XX", "YY", "ZZ", "XY", "ZX"]
    for _ in range(n_terms):
        a, b = rng.choice(n_qubits, size=2, replace=False)
        label = labels[int(rng.integers(len(labels)))]
        h.add(float(rng.uniform(0.1, 3.0)), label,
              (int(min(a, b)), int(max(a, b))))
    return h


@given(st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_routing_and_scheduling_invariants(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 10))
    device = random_device(rng, n)
    step = unify_circuit_operators(trotter_step(random_hamiltonian(rng, n)))
    initial = np.array(rng.permutation(n))

    routed = route(step, device, initial, seed=seed)
    scheduled = schedule_alap(routed, seed=seed)

    # conservation
    executed = []
    for item in scheduled.items:
        if item.kind == "op":
            executed.append(item.operator.label)
        elif item.kind == "dressed":
            executed.append(item.swap.dressed_with.label)
    assert sorted(executed) == sorted(op.label for op in step.two_qubit_ops)

    # per-cycle exclusivity
    by_cycle: dict[int, list] = {}
    for item in scheduled.items:
        by_cycle.setdefault(item.cycle, []).append(item)
    for items in by_cycle.values():
        qubits = [q for item in items for q in item.physical_pair]
        assert len(qubits) == len(set(qubits))

    # forward replay: adjacency at execution + final map agreement
    current = scheduled.initial_map
    for item in sorted(scheduled.items,
                       key=lambda i: (i.cycle, i.physical_pair)):
        p, q = item.physical_pair
        assert device.are_neighbors(p, q)
        if item.kind == "op":
            u, v = item.operator.pair
            assert {current.physical(u), current.physical(v)} == {p, q}
        else:
            if item.kind == "dressed":
                u, v = item.swap.dressed_with.pair
                assert {current.physical(u), current.physical(v)} == {p, q}
            current = current.after_swap((p, q))
    assert current.logical_to_physical == \
        scheduled.final_map.logical_to_physical

    # swap ordering
    swap_positions = {}
    for item in scheduled.items:
        if item.kind in ("swap", "dressed"):
            swap_positions[id(item.swap)] = item.cycle
    cycles = [swap_positions[id(s)] for s in routed.swaps]
    assert cycles == sorted(cycles)


@given(st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_dressing_never_increases_app_blocks(seed):
    """Dressed compilation never has more two-qubit blocks than undressed."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    device = random_device(rng, n)
    step = unify_circuit_operators(trotter_step(random_hamiltonian(rng, n)))
    initial = np.array(rng.permutation(n))
    dressed = route(step, device, initial, seed=seed, dress=True)
    plain = route(step, device, initial, seed=seed, dress=False)
    blocks_dressed = len(dressed.gates) + dressed.n_swaps
    blocks_plain = len(plain.gates) + plain.n_swaps
    # dressing merges blocks pairwise; with equal swap counts it strictly
    # helps, and even with different routes it should not blow up
    assert blocks_dressed <= blocks_plain + 2


@given(st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_schedule_depth_bounded_by_sequence_length(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    device = random_device(rng, n)
    step = unify_circuit_operators(trotter_step(random_hamiltonian(rng, n)))
    routed = route(step, device, np.array(rng.permutation(n)), seed=seed)
    scheduled = schedule_alap(routed, seed=seed)
    n_items = len(scheduled.items)
    assert scheduled.n_cycles <= n_items
    if n_items:
        assert scheduled.n_cycles >= 1
