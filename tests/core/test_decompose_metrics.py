"""Tests for the decomposition pass and circuit metrics."""

import numpy as np
import pytest

from repro.core.decompose import DecomposeCache, decompose_circuit
from repro.core.metrics import CircuitMetrics, OverheadReport, overhead_reduction
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.synthesis.gateset import get_gateset

from tests.conftest import pauli_exponential


def app_circuit():
    c = Circuit(4)
    c.append(Gate("APP2Q", (0, 1), matrix=pauli_exponential(0, 0, 0.8)))
    c.append(Gate("SWAP", (1, 2)))
    c.append(Gate("APP2Q", (2, 3), matrix=pauli_exponential(0.5, 0.3, 0.2)))
    c.append(Gate("APP1Q", (0,), matrix=standard_gate_unitary("H")))
    return c


class TestDecompose:
    def test_counts_cnot_basis(self):
        lowered = decompose_circuit(app_circuit(), get_gateset("CNOT"))
        # ZZ: 2, SWAP: 3, Heisenberg: 3
        assert lowered.n_two_qubit_gates == 8

    def test_qubit_mapping_preserved(self):
        lowered = decompose_circuit(app_circuit(), get_gateset("CNOT"))
        touched = {q for g in lowered if g.n_qubits == 2 for q in g.qubits}
        assert touched == {0, 1, 2, 3}

    def test_exact_mode_unitary(self):
        c = Circuit(2)
        u = pauli_exponential(0.4, 0.2, 0.1)
        c.append(Gate("APP2Q", (0, 1), matrix=u))
        lowered = decompose_circuit(c, get_gateset("CNOT"), solve=True)
        from repro.quantum.unitaries import allclose_up_to_global_phase
        assert allclose_up_to_global_phase(lowered.unitary(), u, atol=1e-6)

    def test_three_qubit_gate_rejected(self):
        c = Circuit(3)
        c.append(Gate("CCX", (0, 1, 2), matrix=np.eye(8, dtype=complex)))
        with pytest.raises(ValueError):
            decompose_circuit(c, get_gateset("CNOT"))

    def test_cache_reused(self):
        cache = DecomposeCache()
        c = Circuit(4)
        for pair in ((0, 1), (2, 3), (1, 2)):
            c.append(Gate("SWAP", pair))
        decompose_circuit(c, get_gateset("CNOT"), cache=cache)
        assert len(cache._store) == 1  # one unique unitary


class TestMetrics:
    def test_from_circuit(self):
        lowered = decompose_circuit(app_circuit(), get_gateset("CNOT"))
        m = CircuitMetrics.from_circuit(lowered, n_swaps=1)
        assert m.n_two_qubit_gates == 8
        assert m.n_swaps == 1
        assert m.total_depth >= m.two_qubit_depth

    def test_overhead_report(self):
        compiled = CircuitMetrics(30, 12, 20, n_swaps=3)
        baseline = CircuitMetrics(24, 8, 14)
        report = OverheadReport(compiled, baseline)
        assert report.gate_overhead == 6
        assert report.depth_overhead == 4
        assert np.isclose(report.gate_ratio(), 30 / 24)

    def test_overhead_reduction_ratio(self):
        base = CircuitMetrics(24, 8, 14)
        ours = OverheadReport(CircuitMetrics(27, 10, 16), base)
        theirs = OverheadReport(CircuitMetrics(36, 16, 24), base)
        assert np.isclose(overhead_reduction(ours, theirs, "gates"), 4.0)
        assert np.isclose(overhead_reduction(ours, theirs, "depth"), 4.0)

    def test_zero_overhead_infinite_reduction(self):
        base = CircuitMetrics(24, 8, 14)
        ours = OverheadReport(CircuitMetrics(24, 8, 14), base)
        theirs = OverheadReport(CircuitMetrics(36, 16, 24), base)
        assert overhead_reduction(ours, theirs, "gates") == float("inf")

    def test_unknown_quantity(self):
        base = CircuitMetrics(24, 8, 14)
        report = OverheadReport(base, base)
        with pytest.raises(ValueError):
            overhead_reduction(report, report, "bogus")
