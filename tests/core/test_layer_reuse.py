"""Multi-layer reuse: the paper's odd/even layer-reversal scheme.

Section V-C compiles only the first layer; odd layers reuse its circuit
and even layers reverse the two-qubit gate order, so every layer must
contribute identical gate counts and depth.
"""

import pytest

from repro.core.compiler import TwoQANCompiler
from repro.core.metrics import CircuitMetrics
from repro.devices import aspen
from repro.hamiltonians.models import nnn_ising
from repro.hamiltonians.trotter import trotter_step

LAYERS = 3


@pytest.fixture(scope="module")
def compiled():
    compiler = TwoQANCompiler(device=aspen(), gateset="CNOT", seed=0,
                              mapping_trials=1)
    step = trotter_step(nnn_ising(6, seed=0))
    first = compiler.compile(step)
    multi = compiler.compile_layers([step] * LAYERS)
    return first, multi


def test_two_qubit_count_scales_linearly(compiled):
    first, multi = compiled
    assert multi.metrics.n_two_qubit_gates == \
        LAYERS * first.metrics.n_two_qubit_gates


def test_swap_and_dressed_counts_scale_linearly(compiled):
    first, multi = compiled
    assert multi.metrics.n_swaps == LAYERS * first.metrics.n_swaps
    assert multi.metrics.n_dressed == LAYERS * first.metrics.n_dressed


def test_total_gate_count_scales_linearly(compiled):
    first, multi = compiled
    assert len(multi.circuit) == LAYERS * len(first.circuit)


def test_reversed_layers_keep_counts_and_depth(compiled):
    """Even layers reverse gate order; counts and depth must not change."""
    first, _ = compiled
    reversed_layer = first.circuit.reversed_two_qubit_order()
    forward = CircuitMetrics.from_circuit(first.circuit)
    backward = CircuitMetrics.from_circuit(reversed_layer)
    assert len(reversed_layer) == len(first.circuit)
    assert backward.n_two_qubit_gates == forward.n_two_qubit_gates
    # two-qubit depth is reversal-invariant; total depth may shift by a
    # little as single-qubit gates interleave differently.
    assert backward.two_qubit_depth == forward.two_qubit_depth


def test_single_layer_is_plain_compile(compiled):
    first, _ = compiled
    compiler = TwoQANCompiler(device=aspen(), gateset="CNOT", seed=0,
                              mapping_trials=1)
    single = compiler.compile_layers([trotter_step(nnn_ising(6, seed=0))])
    assert single.metrics.n_two_qubit_gates == first.metrics.n_two_qubit_gates


def test_empty_layers_rejected():
    compiler = TwoQANCompiler(device=aspen(), gateset="CNOT", seed=0)
    with pytest.raises(ValueError):
        compiler.compile_layers([])
