"""Tests for the pass-pipeline substrate (repro.core.pipeline)."""

import math

import numpy as np
import pytest

from repro.core.compiler import TwoQANCompiler
from repro.core.pipeline import (
    CompilationContext,
    CompilationResult,
    DecomposePass,
    MapPass,
    Pass,
    PassPipeline,
    RoutePass,
    UnifyPass,
    repeat_layers,
    result_from_context,
    run_pipeline,
)
from repro.hamiltonians.models import nnn_ising
from repro.hamiltonians.trotter import trotter_step
from repro.mapping.qap import qap_from_problem
from repro.quantum.circuit import Circuit
from repro.synthesis.gateset import get_gateset


class TestPassPipeline:
    def test_default_2qan_pass_order(self, grid23):
        pipeline = TwoQANCompiler(grid23, "CNOT").build_pipeline()
        assert pipeline.names() == (
            "unify", "mapping", "routing", "scheduling", "binding",
            "decomposition"
        )

    def test_passes_satisfy_protocol(self, grid23):
        pipeline = TwoQANCompiler(grid23, "CNOT").build_pipeline()
        for stage in pipeline.passes:
            assert isinstance(stage, Pass)

    def test_one_timing_entry_per_pass(self, grid23):
        compiler = TwoQANCompiler(grid23, "CNOT", seed=0)
        result = compiler.compile(trotter_step(nnn_ising(6, seed=0)))
        assert set(result.timings) == set(
            compiler.build_pipeline().names()
        )

    def test_replaced_swaps_one_stage(self, grid23):
        pipeline = TwoQANCompiler(grid23, "CNOT").build_pipeline()
        swapped = pipeline.replaced("mapping", _IdentityMapPass())
        assert swapped.names() == pipeline.names()
        assert isinstance(swapped.passes[1], _IdentityMapPass)
        # the original pipeline is untouched
        assert isinstance(pipeline.passes[1], MapPass)

    def test_replaced_unknown_name_raises(self, grid23):
        pipeline = TwoQANCompiler(grid23, "CNOT").build_pipeline()
        with pytest.raises(ValueError, match="no pass named"):
            pipeline.replaced("bogus", _IdentityMapPass())

    def test_without_removes_stage(self, grid23):
        pipeline = TwoQANCompiler(grid23, "CNOT").build_pipeline()
        assert "unify" not in pipeline.without("unify").names()
        with pytest.raises(ValueError):
            pipeline.without("bogus")

    def test_custom_pass_swap_changes_result(self, grid23):
        """run_pipeline with a swapped mapping pass honours the swap."""
        step = trotter_step(nnn_ising(6, seed=0))
        compiler = TwoQANCompiler(grid23, "CNOT", seed=0)
        custom = compiler.build_pipeline().replaced(
            "mapping", _IdentityMapPass()
        )
        result = run_pipeline(custom, step, gateset="CNOT", device=grid23,
                              seed=0)
        assert result.initial_map.physical(0) == 0
        assert result.metrics.n_two_qubit_gates > 0

    def test_missing_artifact_fails_loudly(self, grid23):
        """Routing without mapping reports the missing context field."""
        broken = PassPipeline([UnifyPass(), RoutePass()])
        ctx = CompilationContext(
            step=trotter_step(nnn_ising(6, seed=0)),
            gateset=get_gateset("CNOT"), device=grid23,
        )
        with pytest.raises(ValueError, match="context.assignment"):
            broken.run(ctx)

    def test_pass_returning_none_names_the_culprit(self, grid23):
        class ForgetfulPass:
            name = "forgetful"

            def run(self, ctx):
                ctx.working = ctx.step  # mutates but forgets to return

        pipeline = PassPipeline([ForgetfulPass()])
        ctx = CompilationContext(
            step=trotter_step(nnn_ising(4, seed=0)),
            gateset=get_gateset("CNOT"),
        )
        with pytest.raises(TypeError, match="'forgetful' returned None"):
            pipeline.run(ctx)

    def test_incomplete_context_rejected_at_packaging(self):
        ctx = CompilationContext(
            step=trotter_step(nnn_ising(4, seed=0)),
            gateset=get_gateset("CNOT"),
        )
        with pytest.raises(ValueError, match="hardware circuit"):
            result_from_context(ctx)


class _IdentityMapPass:
    """Trivial mapping stage used by the swap tests."""

    name = "mapping"

    def run(self, ctx):
        instance = qap_from_problem(ctx.working, ctx.device)
        ctx.assignment = np.arange(ctx.working.n_qubits)
        ctx.qap_cost = float(instance.cost(ctx.assignment))
        return ctx


class TestMergedResult:
    def test_baseline_result_is_deprecated_alias(self):
        with pytest.deprecated_call():
            from repro.baselines.base import BaselineResult
        assert BaselineResult is CompilationResult

    def test_package_level_alias(self):
        import repro.baselines as baselines

        assert baselines.BaselineResult is CompilationResult

    def test_baseline_fields_typed_defaults(self, grid23):
        """Baselines fill the merged result without the old type lies."""
        from repro.baselines import compile_nomap

        result = compile_nomap(trotter_step(nnn_ising(6, seed=0)), "CNOT")
        assert isinstance(result, CompilationResult)
        assert isinstance(result.app_circuit, Circuit)
        assert result.routed is None and result.scheduled is None
        assert math.isnan(result.qap_cost)
        assert result.n_dressed == 0
        assert result.initial_map.physical(0) == 0
        assert result.timings  # baselines record pass timings too

    def test_2qan_result_keeps_artifacts(self, grid23):
        result = TwoQANCompiler(grid23, "CNOT", seed=0).compile(
            trotter_step(nnn_ising(6, seed=0))
        )
        assert result.routed is not None
        assert result.scheduled is not None
        assert result.initial_map is result.scheduled.initial_map
        assert result.n_swaps == result.metrics.n_swaps


class TestRepeatLayers:
    def _first(self, grid23):
        return TwoQANCompiler(grid23, "CNOT", seed=0).compile(
            trotter_step(nnn_ising(6, seed=0))
        )

    def test_empty_layers_rejected(self, grid23):
        with pytest.raises(ValueError):
            repeat_layers(self._first(grid23), [], 6)

    def test_single_layer_passthrough(self, grid23):
        first = self._first(grid23)
        assert repeat_layers(first, [first.circuit], 6) is first

    def test_metrics_scale_with_layers(self, grid23):
        first = self._first(grid23)
        combined = repeat_layers(first, [first.circuit] * 3, 6)
        assert combined.n_swaps == 3 * first.n_swaps
        assert combined.n_dressed == 3 * first.n_dressed
        assert (combined.metrics.n_two_qubit_gates
                == 3 * first.metrics.n_two_qubit_gates)

    def test_relower_seconds_added_to_decomposition(self, grid23):
        first = self._first(grid23)
        combined = repeat_layers(first, [first.circuit] * 2, 6,
                                 relower_seconds=1.5)
        assert combined.timings["decomposition"] == pytest.approx(
            first.timings["decomposition"] + 1.5
        )
        # other pass timings are inherited unchanged
        assert combined.timings["mapping"] == first.timings["mapping"]

    def test_compile_layers_sums_relower_time(self, grid23):
        """The combined timings cover all layers, not just the first.

        Asserted by instrumentation rather than wall-clock deltas (which
        are cache-warmth dependent): the decomposition timing of the
        multi-layer result must exceed that of its own first-layer
        compilation, because every reused layer's re-lowering time is
        added on top.
        """
        compiler = TwoQANCompiler(grid23, "CNOT", seed=0)
        step = trotter_step(nnn_ising(6, seed=0))
        recorded = []
        original = TwoQANCompiler.compile

        def spying_compile(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            recorded.append(result.timings["decomposition"])
            return result

        TwoQANCompiler.compile = spying_compile
        try:
            triple = compiler.compile_layers([step] * 3)
        finally:
            TwoQANCompiler.compile = original
        assert len(recorded) == 1  # only the first layer is compiled
        assert triple.timings["decomposition"] > recorded[0]


class TestDecomposePassSharing:
    def test_shared_decompose_pass_matches_legacy_helper(self, grid23):
        """DecomposePass and lower_app_circuit produce identical circuits."""
        from repro.baselines.base import lower_app_circuit
        from repro.baselines.nomap import NoDeviceSchedulePass

        step = trotter_step(nnn_ising(6, seed=0))
        pipeline = PassPipeline([
            UnifyPass(), NoDeviceSchedulePass(), DecomposePass(),
        ])
        via_pipeline = run_pipeline(pipeline, step, gateset="CNOT", seed=0)
        identity = {q: q for q in range(6)}
        via_helper = lower_app_circuit(
            via_pipeline.app_circuit, "CNOT", n_swaps=0,
            initial_map=identity, final_map=identity, seed=0,
        )
        assert via_pipeline.metrics == via_helper.metrics
