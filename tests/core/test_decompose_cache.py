"""Tests for the LRU-bounded decomposition cache."""

import numpy as np

from repro.core.decompose import (
    DecomposeCache,
    cache_key,
    decompose_circuit,
    decompose_circuit_reference,
)
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.synthesis.gateset import get_gateset

from tests.conftest import pauli_exponential


def _rz_pair(theta: float) -> np.ndarray:
    """A distinct two-qubit unitary per angle (for filling the cache)."""
    return np.diag(np.exp(1j * theta * np.array([0.0, 1.0, 2.0, 3.0])))


class TestDecomposeCacheLRU:
    def test_hit_and_miss_counters(self):
        cache = DecomposeCache()
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        cache.get(gateset, swap, False, 0)
        cache.get(gateset, swap, False, 0)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1,
                                 "maxsize": cache.maxsize}

    def test_bounded_at_maxsize(self):
        cache = DecomposeCache(maxsize=4)
        gateset = get_gateset("CNOT")
        for k in range(10):
            cache.get(gateset, _rz_pair(0.1 * (k + 1)), False, 0)
        assert len(cache) == 4

    def test_eviction_is_least_recently_used(self):
        cache = DecomposeCache(maxsize=2)
        gateset = get_gateset("CNOT")
        a, b, c = _rz_pair(0.1), _rz_pair(0.2), _rz_pair(0.3)
        cache.get(gateset, a, False, 0)
        cache.get(gateset, b, False, 0)
        cache.get(gateset, a, False, 0)      # refresh a
        cache.get(gateset, c, False, 0)      # evicts b
        hits_before = cache.hits
        cache.get(gateset, a, False, 0)
        assert cache.hits == hits_before + 1  # a survived
        misses_before = cache.misses
        cache.get(gateset, b, False, 0)
        assert cache.misses == misses_before + 1  # b was evicted

    def test_new_entries_still_cached_when_full(self):
        """The pre-LRU cache refused new entries once full; the LRU
        cache keeps serving the hot set."""
        cache = DecomposeCache(maxsize=2)
        gateset = get_gateset("CNOT")
        for k in range(5):
            cache.get(gateset, _rz_pair(0.1 * (k + 1)), False, 0)
        latest = _rz_pair(0.5)
        hits_before = cache.hits
        cache.get(gateset, latest, False, 0)
        assert cache.hits == hits_before + 1

    def test_zero_maxsize_disables_storage(self):
        cache = DecomposeCache(maxsize=0)
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        cache.get(gateset, swap, False, 0)
        cache.get(gateset, swap, False, 0)
        assert len(cache) == 0
        assert cache.misses == 2

    def test_results_identical_across_cache_states(self):
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        bounded = DecomposeCache(maxsize=1)
        unbounded = DecomposeCache()
        circuit_a, phase_a = bounded.get(gateset, swap, True, 0)
        circuit_b, phase_b = unbounded.get(gateset, swap, True, 0)
        assert phase_a == phase_b
        assert [str(g) for g in circuit_a] == [str(g) for g in circuit_b]

    def test_cache_key_rounds_float_noise(self):
        swap = standard_gate_unitary("SWAP")
        assert cache_key(swap) == cache_key(swap + 1e-15)
        assert cache_key(swap) != cache_key(swap + 1e-9)

    def test_lookup_insert_compose_to_get(self):
        """The split lookup/insert API the two-phase walk uses must be
        behaviourally identical to the original get()."""
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        split, fused = DecomposeCache(), DecomposeCache()
        key = cache_key(swap)
        assert split.lookup(gateset, key, False) is None
        split.insert(gateset, key, False, gateset.decompose(swap, solve=False))
        hit = split.lookup(gateset, key, False)
        assert hit is not None
        fused.get(gateset, swap, False, 0)
        fused.get(gateset, swap, False, 0)
        assert split.stats() == fused.stats()


def _two_qubit_circuit():
    """Repeated and unique blocks interleaved, to exercise dedupe."""
    c = Circuit(4)
    hot = pauli_exponential(0.5, 0.3, 0.2)
    c.append(Gate("APP2Q", (0, 1), matrix=hot))
    c.append(Gate("APP2Q", (2, 3), matrix=pauli_exponential(0, 0, 0.8)))
    c.append(Gate("APP2Q", (1, 2), matrix=hot))
    c.append(Gate("SWAP", (0, 1)))
    c.append(Gate("APP2Q", (0, 1), matrix=pauli_exponential(0.1, 0.0, 0.4)))
    c.append(Gate("APP2Q", (2, 3), matrix=hot))
    c.append(Gate("APP1Q", (0,), matrix=standard_gate_unitary("H")))
    return c


def _circuits_identical(a: Circuit, b: Circuit) -> bool:
    if len(a.gates) != len(b.gates):
        return False
    for ga, gb in zip(a.gates, b.gates):
        if (ga.name != gb.name or ga.qubits != gb.qubits
                or ga.params != gb.params):
            return False
        ma = None if ga.matrix is None else ga.matrix.tobytes()
        mb = None if gb.matrix is None else gb.matrix.tobytes()
        if ma != mb:
            return False
    return True


class TestTwoPhaseCacheRegimes:
    """The batched two-phase walk under degenerate cache configurations.

    ``maxsize=0`` stores nothing, so every repeat of a block re-misses;
    eviction-boundary sizes evict entries *between* the plan and emission
    phases of a single call.  In both regimes the emitted circuit must
    stay bit-identical to the scalar reference walk, which hits exactly
    the same regimes gate by gate.
    """

    def test_maxsize_zero_matches_reference(self):
        gateset = get_gateset("CNOT")
        circuit = _two_qubit_circuit()
        batched = decompose_circuit(circuit, gateset,
                                    cache=DecomposeCache(maxsize=0))
        reference = decompose_circuit_reference(
            circuit, gateset, cache=DecomposeCache(maxsize=0))
        assert _circuits_identical(batched, reference)

    def test_maxsize_zero_counts_every_occurrence_as_miss(self):
        gateset = get_gateset("CNOT")
        circuit = _two_qubit_circuit()
        cache = DecomposeCache(maxsize=0)
        decompose_circuit(circuit, gateset, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 6   # all six 2q occurrences re-miss
        assert len(cache) == 0

    def test_eviction_boundary_sizes_match_reference(self):
        gateset = get_gateset("CNOT")
        circuit = _two_qubit_circuit()
        # 4 unique blocks in the circuit: sizes below, at, and above.
        for maxsize in (1, 2, 3, 4, 5):
            batched = decompose_circuit(
                circuit, gateset, cache=DecomposeCache(maxsize=maxsize))
            reference = decompose_circuit_reference(
                circuit, gateset, cache=DecomposeCache(maxsize=maxsize))
            assert _circuits_identical(batched, reference), maxsize

    def test_second_call_hits_across_phases(self):
        gateset = get_gateset("CNOT")
        circuit = _two_qubit_circuit()
        cache = DecomposeCache()
        first = decompose_circuit(circuit, gateset, cache=cache)
        misses_after_first = cache.misses
        second = decompose_circuit(circuit, gateset, cache=cache)
        assert cache.misses == misses_after_first  # all blocks now cached
        assert _circuits_identical(first, second)
