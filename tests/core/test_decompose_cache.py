"""Tests for the LRU-bounded decomposition cache."""

import numpy as np

from repro.core.decompose import DecomposeCache
from repro.quantum.gates import standard_gate_unitary
from repro.synthesis.gateset import get_gateset


def _rz_pair(theta: float) -> np.ndarray:
    """A distinct two-qubit unitary per angle (for filling the cache)."""
    return np.diag(np.exp(1j * theta * np.array([0.0, 1.0, 2.0, 3.0])))


class TestDecomposeCacheLRU:
    def test_hit_and_miss_counters(self):
        cache = DecomposeCache()
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        cache.get(gateset, swap, False, 0)
        cache.get(gateset, swap, False, 0)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1,
                                 "maxsize": cache.maxsize}

    def test_bounded_at_maxsize(self):
        cache = DecomposeCache(maxsize=4)
        gateset = get_gateset("CNOT")
        for k in range(10):
            cache.get(gateset, _rz_pair(0.1 * (k + 1)), False, 0)
        assert len(cache) == 4

    def test_eviction_is_least_recently_used(self):
        cache = DecomposeCache(maxsize=2)
        gateset = get_gateset("CNOT")
        a, b, c = _rz_pair(0.1), _rz_pair(0.2), _rz_pair(0.3)
        cache.get(gateset, a, False, 0)
        cache.get(gateset, b, False, 0)
        cache.get(gateset, a, False, 0)      # refresh a
        cache.get(gateset, c, False, 0)      # evicts b
        hits_before = cache.hits
        cache.get(gateset, a, False, 0)
        assert cache.hits == hits_before + 1  # a survived
        misses_before = cache.misses
        cache.get(gateset, b, False, 0)
        assert cache.misses == misses_before + 1  # b was evicted

    def test_new_entries_still_cached_when_full(self):
        """The pre-LRU cache refused new entries once full; the LRU
        cache keeps serving the hot set."""
        cache = DecomposeCache(maxsize=2)
        gateset = get_gateset("CNOT")
        for k in range(5):
            cache.get(gateset, _rz_pair(0.1 * (k + 1)), False, 0)
        latest = _rz_pair(0.5)
        hits_before = cache.hits
        cache.get(gateset, latest, False, 0)
        assert cache.hits == hits_before + 1

    def test_zero_maxsize_disables_storage(self):
        cache = DecomposeCache(maxsize=0)
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        cache.get(gateset, swap, False, 0)
        cache.get(gateset, swap, False, 0)
        assert len(cache) == 0
        assert cache.misses == 2

    def test_results_identical_across_cache_states(self):
        gateset = get_gateset("CNOT")
        swap = standard_gate_unitary("SWAP")
        bounded = DecomposeCache(maxsize=1)
        unbounded = DecomposeCache()
        circuit_a, phase_a = bounded.get(gateset, swap, True, 0)
        circuit_b, phase_b = unbounded.get(gateset, swap, True, 0)
        assert phase_a == phase_b
        assert [str(g) for g in circuit_a] == [str(g) for g in circuit_b]
