"""Tests for circuit unitary unifying (paper Section III-C)."""

import numpy as np

from repro.core.unify import DressedSwap, unify_circuit_operators
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising, nnn_xy
from repro.hamiltonians.trotter import trotter_step
from repro.quantum.gates import standard_gate_unitary
from repro.synthesis.gateset import get_gateset


class TestCircuitUnify:
    def test_heisenberg_pairs_merged(self):
        step = trotter_step(nnn_heisenberg(6, seed=0))
        unified = unify_circuit_operators(step)
        # 3 terms per pair collapse to 1 operator per pair
        assert len(unified.two_qubit_ops) == 2 * 6 - 3
        assert len(step.two_qubit_ops) == 3 * (2 * 6 - 3)

    def test_merged_unitary_is_product(self):
        step = trotter_step(nnn_heisenberg(4, seed=0))
        unified = unify_circuit_operators(step)
        pair = unified.two_qubit_ops[0].pair
        factors = [op for op in step.two_qubit_ops if op.pair == pair]
        product = np.eye(4, dtype=complex)
        for op in factors:
            product = op.unitary @ product
        assert np.allclose(unified.two_qubit_ops[0].unitary, product)

    def test_ising_unchanged_count(self):
        """One ZZ term per pair: unifying is the identity on Ising."""
        step = trotter_step(nnn_ising(6, seed=0))
        unified = unify_circuit_operators(step)
        assert len(unified.two_qubit_ops) == len(step.two_qubit_ops)

    def test_order_keeps_first_occurrence(self):
        step = trotter_step(nnn_xy(4, seed=0))
        unified = unify_circuit_operators(step)
        pairs = [op.pair for op in unified.two_qubit_ops]
        assert pairs == sorted(set(pairs), key=pairs.index)

    def test_single_qubit_ops_preserved(self):
        step = trotter_step(nnn_ising(5, seed=0))
        unified = unify_circuit_operators(step)
        assert len(unified.one_qubit_ops) == 5

    def test_cnot_savings_heisenberg(self):
        """Unified Heisenberg pair: 3 CNOTs instead of 6 (paper III-C)."""
        step = trotter_step(nnn_heisenberg(4, seed=0))
        unified = unify_circuit_operators(step)
        gs = get_gateset("CNOT")
        unified_cost = gs.gates_needed(unified.two_qubit_ops[0].unitary)
        pair = unified.two_qubit_ops[0].pair
        separate_cost = sum(
            gs.gates_needed(op.unitary)
            for op in step.two_qubit_ops if op.pair == pair
        )
        assert unified_cost == 3
        assert separate_cost == 6


class TestDressedSwap:
    def test_unitary_applies_term_then_swap(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(4, seed=0)))
        op = step.two_qubit_ops[0]
        dressed = DressedSwap((0, 1), op)
        swap = standard_gate_unitary("SWAP")
        assert np.allclose(dressed.unitary, swap @ op.unitary)

    def test_dressed_swap_costs_three_cnots(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(4, seed=0)))
        dressed = DressedSwap((0, 1), step.two_qubit_ops[0])
        assert get_gateset("CNOT").gates_needed(dressed.unitary) == 3
