"""Tests for multi-step Trotter compilation (odd/even reversal scheme)."""

from repro.core.compiler import TwoQANCompiler
from repro.devices import line
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising


class TestCompileTrotter:
    def test_single_step_is_plain_compile(self, montreal_device):
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=1)
        h = nnn_heisenberg(8, seed=0)
        one = compiler.compile_trotter(h, n_steps=1)
        assert one.metrics.n_swaps == one.routed.n_swaps

    def test_gates_scale_linearly(self, montreal_device):
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=1)
        h = nnn_heisenberg(8, seed=0)
        one = compiler.compile_trotter(h, n_steps=1)
        four = compiler.compile_trotter(h, n_steps=4)
        assert four.metrics.n_two_qubit_gates == \
            4 * one.metrics.n_two_qubit_gates
        assert four.metrics.n_swaps == 4 * one.metrics.n_swaps

    def test_even_steps_reversed(self, montreal_device):
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=1)
        h = nnn_ising(6, seed=0)
        two = compiler.compile_trotter(h, n_steps=2)
        one = compiler.compile_trotter(h, n_steps=1)
        n1 = one.metrics.n_two_qubit_gates
        first = [g for g in two.circuit if g.n_qubits == 2][:n1]
        second = [g for g in two.circuit if g.n_qubits == 2][n1:]
        first_pairs = [g.qubits for g in first]
        second_pairs = [g.qubits for g in second]
        assert second_pairs == list(reversed(first_pairs))

    def test_reversed_step_is_valid_hardware_circuit(self):
        """Reversed two-qubit order must still respect connectivity."""
        device = line(5)
        compiler = TwoQANCompiler(device, "CNOT", seed=0)
        result = compiler.compile_trotter(nnn_ising(5, seed=0), n_steps=2)
        for gate in result.circuit:
            if gate.n_qubits == 2:
                assert device.are_neighbors(*gate.qubits)

    def test_depth_scales_roughly_linearly(self, montreal_device):
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=1)
        h = nnn_heisenberg(10, seed=0)
        one = compiler.compile_trotter(h, n_steps=1)
        three = compiler.compile_trotter(h, n_steps=3)
        ratio = three.metrics.two_qubit_depth / one.metrics.two_qubit_depth
        assert 2.0 <= ratio <= 3.5
