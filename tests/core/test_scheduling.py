"""Tests for hybrid ALAP scheduling (Algorithm 2) and NoMap scheduling."""

import numpy as np

from repro.core.routing import route
from repro.core.scheduling import schedule_alap, schedule_no_device
from repro.core.unify import unify_circuit_operators
from repro.devices import line, montreal
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising, nnn_xy
from repro.hamiltonians.trotter import trotter_step


def routed_problem(n=8, device=None, seed=0):
    device = device or montreal()
    step = unify_circuit_operators(trotter_step(nnn_heisenberg(n, seed=seed)))
    return route(step, device, np.arange(n), seed=seed), step


class TestAlapBasics:
    def test_everything_scheduled(self):
        routed, step = routed_problem()
        scheduled = schedule_alap(routed)
        ops = sum(1 for i in scheduled.items if i.kind == "op")
        dressed = sum(1 for i in scheduled.items if i.kind == "dressed")
        swaps = sum(1 for i in scheduled.items if i.kind == "swap")
        assert ops + dressed == len(step.two_qubit_ops)
        assert swaps + dressed == routed.n_swaps

    def test_no_qubit_conflicts_per_cycle(self):
        routed, _ = routed_problem()
        scheduled = schedule_alap(routed)
        by_cycle: dict[int, list] = {}
        for item in scheduled.items:
            by_cycle.setdefault(item.cycle, []).append(item)
        for cycle_items in by_cycle.values():
            used = [q for item in cycle_items for q in item.physical_pair]
            assert len(used) == len(set(used))

    def test_cycles_contiguous(self):
        routed, _ = routed_problem()
        scheduled = schedule_alap(routed)
        cycles = {item.cycle for item in scheduled.items}
        assert cycles == set(range(max(cycles) + 1))

    def test_swap_order_preserved(self):
        """SWAPs must appear in routing order in forward time."""
        routed, _ = routed_problem(10)
        scheduled = schedule_alap(routed)
        swap_cycles = []
        for swap in routed.swaps:
            for item in scheduled.items:
                if item.kind in ("swap", "dressed") and item.swap is swap:
                    swap_cycles.append(item.cycle)
        assert swap_cycles == sorted(swap_cycles)

    def test_gates_nn_at_execution(self):
        """Each operator must be adjacent in the map at its cycle."""
        routed, _ = routed_problem(10, seed=3)
        scheduled = schedule_alap(routed)
        device = routed.device
        current = scheduled.initial_map
        ordered = sorted(scheduled.items,
                         key=lambda i: (i.cycle, i.physical_pair))
        for item in ordered:
            if item.kind == "op":
                u, v = item.operator.pair
                pu, pv = current.physical(u), current.physical(v)
                assert device.are_neighbors(pu, pv)
                assert {pu, pv} == set(item.physical_pair)
            else:
                current = current.after_swap(item.physical_pair)
        assert current.logical_to_physical == \
            scheduled.final_map.logical_to_physical


class TestDeadlockDetection:
    """The no-progress branch raises an honest deadlock immediately.

    ``occupied`` only fills when something is emitted, so a cycle that
    emits nothing cannot be waiting on busy qubits -- the old "advance
    time (frees qubits)" branch was unreachable and the scheduler must
    (and now does, with a precise message) fail fast instead of looping.
    """

    def _stalling_routed(self):
        """Routed data whose only gate is never NN in its own map: the
        generic (hybrid=False) scheduler stalls after undoing the SWAP."""
        import numpy as np

        from repro.core.routing import RoutedGate, RoutedProblem, RoutedSwap
        from repro.core.routing import QubitMap
        from repro.hamiltonians.trotter import TrotterStep, TwoQubitOperator

        device = line(3)
        op = TwoQubitOperator((0, 2), np.eye(4), label="stall")
        step = TrotterStep(3, [op], [])
        initial = QubitMap.from_assignment(np.arange(3))
        # the gate claims map 0, where logicals (0, 2) sit at distance 2
        gate = RoutedGate(op, map_index=0, physical_pair=(0, 2))
        swap = RoutedSwap((0, 1), map_index=0)
        maps = [initial, initial.after_swap((0, 1))]
        return RoutedProblem(device, maps, [gate], [swap], step)

    def test_generic_stall_raises_precise_deadlock(self):
        import pytest

        routed = self._stalling_routed()
        with pytest.raises(RuntimeError, match="deadlock"):
            schedule_alap(routed, hybrid=False)

    def test_deadlock_message_names_remaining_work(self):
        import pytest

        routed = self._stalling_routed()
        with pytest.raises(RuntimeError,
                           match=r"1 operator\(s\) and 0 SWAP\(s\)"):
            schedule_alap(routed, hybrid=False)

    def test_hybrid_schedules_the_same_data(self):
        """The stall is a hybrid=False artifact: the permutation-aware
        scheduler executes the gate in the map where it *is* NN."""
        routed = self._stalling_routed()
        scheduled = schedule_alap(routed, hybrid=True)
        assert sum(1 for i in scheduled.items if i.kind == "op") == 1


class TestHybridVsGeneric:
    def test_hybrid_no_deeper_than_generic(self):
        routed, _ = routed_problem(10, seed=1)
        hybrid = schedule_alap(routed, hybrid=True)
        generic = schedule_alap(routed, hybrid=False)
        assert hybrid.n_cycles <= generic.n_cycles

    def test_generic_schedules_everything_too(self):
        routed, step = routed_problem(8, seed=2)
        generic = schedule_alap(routed, hybrid=False)
        ops = sum(1 for i in generic.items if i.kind in ("op", "dressed"))
        assert ops == len(step.two_qubit_ops)


class TestToCircuit:
    def test_circuit_gate_counts(self):
        routed, step = routed_problem(8)
        scheduled = schedule_alap(routed)
        circuit = scheduled.to_circuit()
        app2q = sum(1 for g in circuit if g.name == "APP2Q")
        dressed = sum(1 for g in circuit if g.name == "DRESSED_SWAP")
        swaps = circuit.count("SWAP")
        assert app2q + dressed == len(step.two_qubit_ops)
        assert swaps + dressed == routed.n_swaps

    def test_one_qubit_ops_at_final_positions(self):
        device = line(5)
        step = unify_circuit_operators(trotter_step(nnn_ising(5, seed=0)))
        routed = route(step, device, np.arange(5))
        scheduled = schedule_alap(routed)
        circuit = scheduled.to_circuit()
        final = scheduled.final_map
        one_q = [g for g in circuit if g.name == "APP1Q"]
        assert len(one_q) == 5
        positions = {g.qubits[0] for g in one_q}
        expected = {final.physical(q) for q in range(5)}
        assert positions == expected


class TestNoDevice:
    def test_all_operators_scheduled(self):
        step = unify_circuit_operators(trotter_step(nnn_xy(8, seed=0)))
        circuit = schedule_no_device(step)
        assert sum(1 for g in circuit if g.name == "APP2Q") == \
            len(step.two_qubit_ops)

    def test_valid_coloring_layers(self):
        step = unify_circuit_operators(trotter_step(nnn_heisenberg(8, seed=0)))
        circuit = schedule_no_device(step)
        for layer in circuit.layers():
            used = [q for g in layer for q in g.qubits]
            assert len(used) == len(set(used))

    def test_depth_near_optimal_for_chain(self):
        """NN+NNN chain interactions colour with ~4 colours."""
        step = unify_circuit_operators(trotter_step(nnn_ising(12, seed=0)))
        circuit = schedule_no_device(step)
        assert circuit.two_qubit_depth() <= 6


class TestSchedulingEdgeCases:
    def test_empty_step_schedules(self):
        from repro.hamiltonians.trotter import TrotterStep
        from repro.core.routing import route
        import numpy as np
        step = TrotterStep(3, [], [])
        routed = route(step, line(3), np.arange(3))
        scheduled = schedule_alap(routed)
        assert scheduled.n_cycles == 0
        assert len(scheduled.to_circuit()) == 0

    def test_single_operator(self):
        from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
        import numpy as np
        h = TwoLocalHamiltonian(3)
        h.add(0.5, "ZZ", (0, 1))
        step = unify_circuit_operators(trotter_step(h))
        routed = route(step, line(3), np.arange(3))
        scheduled = schedule_alap(routed)
        assert scheduled.n_cycles == 1

    def test_no_device_single_qubit_only(self):
        from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
        h = TwoLocalHamiltonian(2)
        h.add(1.0, "X", (0,))
        circuit = schedule_no_device(trotter_step(h))
        assert circuit.count("APP1Q") == 1
        assert circuit.n_two_qubit_gates == 0
