"""Tests for the end-to-end 2QAN compiler driver."""

import numpy as np
import pytest

from repro.core.compiler import TwoQANCompiler, compile_step
from repro.devices import all_to_all
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.qaoa import QAOAProblem, random_regular_graph
from repro.hamiltonians.trotter import trotter_step


class TestBasics:
    def test_compiles_heisenberg(self, montreal_device):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        result = compile_step(step, montreal_device, "CNOT", seed=1)
        assert result.metrics.n_two_qubit_gates > 0
        assert result.metrics.two_qubit_depth > 0

    def test_gateset_by_name_or_object(self, montreal_device):
        from repro.synthesis.gateset import get_gateset
        step = trotter_step(nnn_ising(6, seed=0))
        by_name = TwoQANCompiler(montreal_device, "CNOT", seed=0).compile(step)
        by_obj = TwoQANCompiler(
            montreal_device, get_gateset("CNOT"), seed=0
        ).compile(step)
        assert by_name.metrics == by_obj.metrics

    def test_all_to_all_no_swaps(self):
        step = trotter_step(nnn_heisenberg(6, seed=0))
        result = compile_step(step, all_to_all(6), "CNOT", seed=0)
        assert result.n_swaps == 0
        # 9 unified pairs x 3 CNOTs
        assert result.metrics.n_two_qubit_gates == 27

    def test_explicit_initial_mapping(self, grid23):
        step = trotter_step(nnn_ising(6, seed=0))
        compiler = TwoQANCompiler(grid23, "CNOT", seed=0)
        result = compiler.compile(step, initial=np.arange(6))
        assert result.initial_map.physical(0) == 0

    def test_timings_recorded(self, grid23):
        step = trotter_step(nnn_ising(6, seed=0))
        result = compile_step(step, grid23, "CNOT")
        assert set(result.timings) == {
            "unify", "mapping", "routing", "scheduling", "binding",
            "decomposition"
        }

    def test_qap_cost_reported(self, grid23):
        step = trotter_step(nnn_ising(6, seed=0))
        result = compile_step(step, grid23, "CNOT")
        assert result.qap_cost > 0


class TestCacheInjection:
    def test_public_cache_field_used(self, montreal_device):
        from repro.core.decompose import DecomposeCache
        cache = DecomposeCache()
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=0,
                                  cache=cache)
        assert compiler.cache is cache
        compiler.compile(trotter_step(nnn_ising(6, seed=0)))
        assert len(cache._store) > 0

    def test_default_cache_created(self, montreal_device):
        from repro.core.decompose import DecomposeCache
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=0)
        assert isinstance(compiler.cache, DecomposeCache)

    def test_shared_cache_across_compilers(self, montreal_device):
        from repro.core.decompose import DecomposeCache
        cache = DecomposeCache()
        step = trotter_step(nnn_ising(6, seed=0))
        TwoQANCompiler(montreal_device, "CNOT", seed=0,
                       cache=cache).compile(step)
        warm = len(cache._store)
        TwoQANCompiler(montreal_device, "CNOT", seed=0,
                       cache=cache).compile(step)
        assert len(cache._store) == warm


class TestHeadlineBehaviour:
    """The properties the paper's abstract claims."""

    def test_heisenberg_zero_gate_overhead_when_dressed(self, grid23):
        """Dressed SWAPs make Heisenberg gate overhead ~zero (Fig 7a-b)."""
        step = trotter_step(nnn_heisenberg(6, seed=0))
        result = compile_step(step, grid23, "CNOT", seed=1)
        baseline_gates = (2 * 6 - 3) * 3  # unified pairs x 3 CNOTs
        overhead = result.metrics.n_two_qubit_gates - baseline_gates
        assert overhead == (result.n_swaps - result.n_dressed) * 3

    def test_dressing_reduces_gates(self, montreal_device):
        step = trotter_step(nnn_heisenberg(10, seed=0))
        with_dress = TwoQANCompiler(montreal_device, "CNOT", seed=1).compile(step)
        without = TwoQANCompiler(montreal_device, "CNOT", seed=1,
                                 dress=False).compile(step)
        assert with_dress.metrics.n_two_qubit_gates <= \
            without.metrics.n_two_qubit_gates

    def test_unify_reduces_gates(self, montreal_device):
        step = trotter_step(nnn_heisenberg(8, seed=0))
        unified = TwoQANCompiler(montreal_device, "CNOT", seed=1).compile(step)
        raw = TwoQANCompiler(montreal_device, "CNOT", seed=1,
                             unify=False).compile(step)
        assert unified.metrics.n_two_qubit_gates < \
            raw.metrics.n_two_qubit_gates

    def test_hybrid_schedule_no_deeper(self, montreal_device):
        step = trotter_step(nnn_heisenberg(10, seed=0))
        hybrid = TwoQANCompiler(montreal_device, "CNOT", seed=1).compile(step)
        generic = TwoQANCompiler(montreal_device, "CNOT", seed=1,
                                 hybrid_schedule=False).compile(step)
        assert hybrid.metrics.two_qubit_depth <= \
            generic.metrics.two_qubit_depth

    @pytest.mark.parametrize("gateset", ["CNOT", "CZ", "SYC", "ISWAP"])
    def test_retargets_all_gatesets(self, grid23, gateset):
        step = trotter_step(nnn_ising(6, seed=0))
        result = compile_step(step, grid23, gateset, seed=0)
        names = {g.name for g in result.circuit if g.n_qubits == 2}
        expected = {"CNOT"} if gateset == "CNOT" else {gateset}
        assert names <= expected


class TestMultiLayer:
    def test_three_layers_triple_size(self, montreal_device):
        g = random_regular_graph(3, 8, seed=0)
        problem = QAOAProblem(g, (0.3, 0.5, 0.7), (0.4, 0.2, 0.1))
        steps = [problem.layer_step(i) for i in range(3)]
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=1)
        single = compiler.compile(steps[0])
        triple = compiler.compile_layers(steps)
        ratio = triple.metrics.n_two_qubit_gates / \
            single.metrics.n_two_qubit_gates
        assert 2.9 <= ratio <= 3.1
        assert triple.metrics.n_swaps == 3 * single.metrics.n_swaps

    def test_single_layer_passthrough(self, montreal_device):
        g = random_regular_graph(3, 6, seed=0)
        problem = QAOAProblem(g, (0.3,), (0.4,))
        compiler = TwoQANCompiler(montreal_device, "CNOT", seed=1)
        a = compiler.compile(problem.layer_step(0))
        b = compiler.compile_layers([problem.layer_step(0)])
        assert a.metrics == b.metrics

    def test_empty_layers_rejected(self, montreal_device):
        compiler = TwoQANCompiler(montreal_device, "CNOT")
        with pytest.raises(ValueError):
            compiler.compile_layers([])
