"""Tests for the compiler registry (repro.core.registry)."""

import pytest

from repro.core.decompose import DecomposeCache
from repro.core.registry import (
    CompilerSpec,
    compiler_names,
    compiler_specs,
    get_compiler,
    register_compiler,
    resolve_spec,
)
from repro.hamiltonians.models import nnn_ising
from repro.hamiltonians.trotter import trotter_step


class TestLookup:
    def test_canonical_names(self):
        assert set(compiler_names()) == {
            "2qan", "2qan_nodress", "tket", "qiskit", "ic_qaoa", "nomap",
            "paulihedral",
        }

    def test_aliases_resolve_to_canonical(self):
        assert resolve_spec("order").name == "tket"
        assert resolve_spec("qaoa_ic").name == "ic_qaoa"
        assert resolve_spec("paulihedral_like").name == "paulihedral"

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown compiler 'bogus'"):
            resolve_spec("bogus")

    def test_specs_carry_device_metadata(self):
        by_name = {spec.name: spec for spec in compiler_specs()}
        assert by_name["2qan"].requires_device
        assert not by_name["nomap"].requires_device
        assert not by_name["paulihedral"].requires_device

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_compiler(CompilerSpec(
                name="duplicate-test", summary="", factory=lambda **k: None,
                aliases=("2qan",),
            ))


class TestConstruction:
    def test_every_compiler_compiles(self, aspen_device):
        step = trotter_step(nnn_ising(6, seed=0))
        for name in compiler_names():
            result = get_compiler(name, device=aspen_device,
                                  gateset="CNOT", seed=0).compile(step)
            assert result.metrics.n_two_qubit_gates > 0, name
            assert result.timings, name

    def test_alias_and_canonical_agree(self, aspen_device):
        step = trotter_step(nnn_ising(6, seed=0))
        via_alias = get_compiler("order", device=aspen_device,
                                 gateset="CNOT", seed=0).compile(step)
        canonical = get_compiler("tket", device=aspen_device,
                                 gateset="CNOT", seed=0).compile(step)
        assert via_alias.metrics == canonical.metrics

    def test_knobs_forwarded(self, aspen_device):
        compiler = get_compiler("2qan", device=aspen_device, gateset="CNOT",
                                mapping_trials=1, dress=False)
        assert compiler.mapping_trials == 1
        assert compiler.dress is False

    def test_unknown_knob_raises(self, aspen_device):
        with pytest.raises(TypeError):
            get_compiler("2qan", device=aspen_device, gateset="CNOT",
                         bogus_knob=3)

    def test_cache_injected(self, aspen_device):
        cache = DecomposeCache()
        compiler = get_compiler("2qan", device=aspen_device, gateset="CNOT",
                                cache=cache)
        assert compiler.cache is cache

    def test_nodress_variant_preconfigured(self, aspen_device):
        compiler = get_compiler("2qan_nodress", device=aspen_device,
                                gateset="CNOT")
        assert compiler.dress is False
