"""Tests for permutation-aware routing (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.routing import QubitMap, route
from repro.core.unify import unify_circuit_operators
from repro.devices import all_to_all, line, montreal
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.trotter import trotter_step
from repro.mapping.placement import identity_mapping


def unified(h):
    return unify_circuit_operators(trotter_step(h))


class TestQubitMap:
    def test_roundtrip(self):
        m = QubitMap.from_assignment(np.array([2, 0, 1]))
        assert m.physical(0) == 2
        assert m.logical(2) == 0
        assert m.logical(5) is None

    def test_after_swap(self):
        m = QubitMap.from_assignment(np.array([0, 1, 2]))
        swapped = m.after_swap((0, 1))
        assert swapped.physical(0) == 1
        assert swapped.physical(1) == 0
        assert swapped.physical(2) == 2

    def test_swap_with_empty_slot(self):
        m = QubitMap({0: 0, 1: 1})       # physical 2 unoccupied
        swapped = m.after_swap((1, 2))
        assert swapped.physical(1) == 2
        assert swapped.logical(1) is None

    def test_swap_involution(self):
        m = QubitMap.from_assignment(np.array([3, 1, 0, 2]))
        assert m.after_swap((0, 3)).after_swap((0, 3)).logical_to_physical \
            == m.logical_to_physical

    def test_unmapped_logical_raises(self):
        m = QubitMap({0: 2, 1: 0})
        with pytest.raises(KeyError):
            m.physical(5)

    def test_from_assignment_with_spare_physicals(self):
        m = QubitMap.from_assignment(np.array([1, 0]), n_physical=4)
        assert m.logical(3) is None
        swapped = m.after_swap((1, 3))          # move into a spare slot
        assert swapped.physical(0) == 3
        assert swapped.logical(1) is None

    def test_equality_and_repr(self):
        a = QubitMap({0: 1, 1: 0})
        b = QubitMap.from_assignment(np.array([1, 0]), n_physical=5)
        assert a == b                            # p2l padding is not content
        assert "QubitMap" in repr(a)

    def test_inverse(self):
        m = QubitMap.from_assignment(np.array([2, 0, 1]))
        assert m.inverse() == {2: 0, 0: 1, 1: 2}


class TestRouting:
    def test_all_to_all_needs_no_swaps(self):
        step = unified(nnn_heisenberg(6, seed=0))
        routed = route(step, all_to_all(6), identity_mapping(6, all_to_all(6)))
        assert routed.n_swaps == 0
        assert len(routed.gates) == len(step.two_qubit_ops)

    def test_all_gates_routed(self):
        step = unified(nnn_heisenberg(8, seed=0))
        device = montreal()
        routed = route(step, device, np.arange(8))
        total = len(routed.gates) + routed.n_dressed
        assert total == len(step.two_qubit_ops)

    def test_routed_gates_are_nn(self):
        """Every gate must be adjacent in the map it is assigned to."""
        step = unified(nnn_heisenberg(8, seed=0))
        device = montreal()
        routed = route(step, device, np.arange(8))
        for gate in routed.gates:
            qmap = routed.maps[gate.map_index]
            u, v = gate.operator.pair
            assert device.are_neighbors(qmap.physical(u), qmap.physical(v))

    def test_maps_evolve_by_swaps(self):
        step = unified(nnn_ising(8, seed=0))
        device = line(8)
        routed = route(step, device, np.arange(8))
        assert len(routed.maps) == routed.n_swaps + 1
        for i, swap in enumerate(routed.swaps):
            expected = routed.maps[i].after_swap(swap.physical_pair)
            assert expected.logical_to_physical == \
                routed.maps[i + 1].logical_to_physical

    def test_swaps_on_hardware_edges(self):
        step = unified(nnn_ising(8, seed=0))
        device = montreal()
        routed = route(step, device, np.arange(8))
        for swap in routed.swaps:
            assert device.are_neighbors(*swap.physical_pair)

    def test_line_chain_nnn_needs_swaps(self):
        """NNN interactions on a line device require SWAPs."""
        step = unified(nnn_ising(6, seed=0))
        routed = route(step, line(6), np.arange(6))
        assert routed.n_swaps > 0

    def test_deterministic_given_seed(self):
        step = unified(nnn_heisenberg(8, seed=0))
        a = route(step, montreal(), np.arange(8), seed=5)
        b = route(step, montreal(), np.arange(8), seed=5)
        assert a.n_swaps == b.n_swaps
        assert [s.physical_pair for s in a.swaps] == \
            [s.physical_pair for s in b.swaps]

    def test_physical_pairs_are_plain_ints(self):
        """Routing artifacts must not leak numpy integer scalars."""
        step = unified(nnn_ising(8, seed=0))
        routed = route(step, line(8), np.arange(8))
        for gate in routed.gates:
            assert all(type(q) is int for q in gate.physical_pair)
        for swap in routed.swaps:
            assert all(type(q) is int for q in swap.physical_pair)

    def test_weighted_device_uses_reference_engine(self):
        """Non-integer (noise-weighted) distances must route exactly as
        the scalar reference: the auto engine falls back to it."""
        from repro.core.routing_perf_smoke import routed_equal
        from repro.noise.device_noise import (
            with_noise_weighted_distance,
            with_random_edge_errors,
        )

        device = with_noise_weighted_distance(
            with_random_edge_errors(montreal(), seed=3))
        assert not device.integer_distances
        step = unified(nnn_heisenberg(8, seed=0))
        auto = route(step, device, np.arange(8), seed=2)
        reference = route(step, device, np.arange(8), seed=2,
                          engine="reference")
        assert routed_equal(auto, reference)


class TestDressing:
    def test_dressing_absorbs_gates(self):
        step = unified(nnn_heisenberg(8, seed=0))
        routed = route(step, montreal(), np.arange(8), dress=True)
        if routed.n_swaps:
            assert routed.n_dressed > 0

    def test_dressing_disabled(self):
        step = unified(nnn_heisenberg(8, seed=0))
        routed = route(step, montreal(), np.arange(8), dress=False)
        assert routed.n_dressed == 0
        assert len(routed.gates) == len(step.two_qubit_ops)

    def test_dressed_operators_not_double_counted(self):
        step = unified(nnn_heisenberg(8, seed=0))
        routed = route(step, montreal(), np.arange(8), dress=True)
        routed_labels = [g.operator.label for g in routed.gates]
        dressed_labels = [
            s.dressed_with.label for s in routed.swaps if s.is_dressed
        ]
        combined = sorted(routed_labels + dressed_labels)
        assert combined == sorted(op.label for op in step.two_qubit_ops)

    def test_dressed_count_bounded_by_swaps(self):
        step = unified(nnn_heisenberg(10, seed=1))
        routed = route(step, montreal(), np.arange(10))
        assert 0 <= routed.n_dressed <= routed.n_swaps


class TestCriteria:
    def test_count_only_criteria(self):
        step = unified(nnn_heisenberg(8, seed=0))
        routed = route(step, montreal(), np.arange(8),
                       criteria=("count",))
        assert routed.n_swaps > 0  # still converges

    def test_unknown_criterion_rejected(self):
        step = unified(nnn_ising(6, seed=0))
        with pytest.raises(ValueError):
            route(step, line(6), np.arange(6), criteria=("bogus",))

    def test_full_criteria_no_worse_than_count_only(self):
        step = unified(nnn_heisenberg(10, seed=0))
        full = route(step, montreal(), np.arange(10), seed=1)
        count_only = route(step, montreal(), np.arange(10), seed=1,
                           criteria=("count",), dress=False)
        assert full.n_swaps <= count_only.n_swaps + 2
