"""The CI routing perf smoke stays runnable and honest.

The strict >= 3x timing assertion lives in the dedicated CI job
(`python -m repro.core.routing_perf_smoke`); here we only pin what must
never flake: the smoke runs, the two engines agree swap-for-swap, and
both timings are real measurements.
"""

from repro.core import routing_perf_smoke


def test_measure_engines_agree_bit_for_bit():
    incremental_s, reference_s, identical = routing_perf_smoke.measure(rounds=1)
    assert identical
    assert incremental_s > 0
    assert reference_s > 0


def test_main_runs_end_to_end(capsys, monkeypatch):
    """main() exercised with the timing bar lowered to zero: the strict
    >= 3x assertion belongs to the dedicated CI job, not to tier-1,
    where a contended runner could flake it."""
    monkeypatch.setattr(routing_perf_smoke, "MIN_RATIO", 0.0)
    assert routing_perf_smoke.main() == 0
    assert "ratio" in capsys.readouterr().out
