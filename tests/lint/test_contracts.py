"""RPR001 fixtures: pass reads/writes declarations vs run() bodies."""

HEADER = """\
from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class DemoPass:
    name: str = "demo"

"""


def pass_module(reads, writes, body):
    lines = "\n".join(f"        {line}" for line in body)
    return (HEADER
            + f"    reads: ClassVar[tuple[str, ...]] = {reads!r}\n"
            + f"    writes: ClassVar[tuple[str, ...]] = {writes!r}\n\n"
            + "    def run(self, ctx):\n"
            + lines + "\n"
            + "        return ctx\n")


def project(source):
    return {"src/repro/baselines/demo.py": source}


class TestUndeclaredAccess:
    def test_undeclared_read_is_an_error(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ["ctx.routed = (ctx.working, ctx.seed)"])
        findings = lint_files(project(source), "RPR001")
        assert [f.severity for f in findings] == ["error"]
        assert "'seed'" in findings[0].message
        assert "cache key" in findings[0].message

    def test_undeclared_write_is_an_error(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ["ctx.routed = ctx.working",
                              "ctx.n_swaps = 0"])
        findings = lint_files(project(source), "RPR001")
        assert len(findings) == 1
        assert "'n_swaps'" in findings[0].message

    def test_require_counts_as_a_read(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ['ctx.routed = ctx.require("assignment")'])
        findings = lint_files(project(source), "RPR001")
        assert any("'assignment'" in f.message and f.severity == "error"
                   for f in findings)

    def test_getattr_literal_counts_as_a_read(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ['ctx.routed = getattr(ctx, "device")'])
        findings = lint_files(project(source), "RPR001")
        assert any("'device'" in f.message for f in findings)

    def test_dynamic_access_is_a_warning(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ["name = str(ctx.working)",
                              "ctx.routed = getattr(ctx, name)"])
        findings = lint_files(project(source), "RPR001")
        assert [f.severity for f in findings] == ["warning"]
        assert "dynamic" in findings[0].message


class TestOverDeclaration:
    def test_unused_declared_read_is_a_warning(self, lint_files):
        source = pass_module(("working", "seed"), ("routed",),
                             ["ctx.routed = ctx.working"])
        findings = lint_files(project(source), "RPR001")
        assert [f.severity for f in findings] == ["warning"]
        assert "'seed'" in findings[0].message
        assert "fragments the cache" in findings[0].message

    def test_unused_declared_write_is_a_warning(self, lint_files):
        source = pass_module(("working",), ("routed", "n_swaps"),
                             ["ctx.routed = ctx.working"])
        findings = lint_files(project(source), "RPR001")
        assert len(findings) == 1
        assert "'n_swaps'" in findings[0].message


class TestInterprocedural:
    def test_module_helper_receiving_ctx_is_followed(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ["_route(ctx)"]) + (
            "\n\ndef _route(context):\n"
            "    context.routed = context.device\n"
        )
        findings = lint_files(project(source), "RPR001")
        assert any("'device'" in f.message and f.severity == "error"
                   for f in findings)

    def test_sibling_method_receiving_ctx_is_followed(self, lint_files):
        source = (HEADER
                  + "    reads: ClassVar[tuple[str, ...]] = ('working',)\n"
                  + "    writes: ClassVar[tuple[str, ...]] = ('routed',)\n\n"
                  + "    def run(self, ctx):\n"
                  + "        self._inner(ctx)\n"
                  + "        return ctx\n\n"
                  + "    def _inner(self, ctx):\n"
                  + "        ctx.routed = ctx.assignment\n")
        findings = lint_files(project(source), "RPR001")
        assert any("'assignment'" in f.message for f in findings)

    def test_helper_non_ctx_args_are_not_confused(self, lint_files):
        """A helper receiving (working, ctx) must not count accesses on
        its first parameter as context accesses."""
        source = pass_module(("working",), ("routed",),
                             ["ctx.routed = _route(ctx.working, ctx)"]) + (
            "\n\ndef _route(working, context):\n"
            "    length = working.metrics\n"  # not a ctx access
            "    return context.working\n"
        )
        findings = lint_files(project(source), "RPR001")
        assert findings == []


class TestCleanAndExempt:
    def test_matching_declaration_is_clean(self, lint_files):
        source = pass_module(("working", "device"), ("routed",),
                             ["ctx.routed = (ctx.working, ctx.device)"])
        assert lint_files(project(source), "RPR001") == []

    def test_infra_fields_need_no_declaration(self, lint_files):
        source = pass_module(("working",), ("routed",),
                             ["ctx.timings['demo'] = 0.0",
                              "ctx.cache_events['demo'] = 'miss'",
                              "token = ctx.cancel",
                              "memo = ctx.cache",
                              "ctx.routed = ctx.working"])
        assert lint_files(project(source), "RPR001") == []

    def test_classes_without_declarations_are_ignored(self, lint_files):
        source = ("class NotAPass:\n"
                  "    def run(self, ctx):\n"
                  "        return ctx.anything\n")
        assert lint_files(project(source), "RPR001") == []

    def test_real_tree_predicted_finding_stays_fixed(self, lint_files):
        """Regression for the finding this checker surfaced on the real
        tree: InstructionGainRoutePass declared ``seed`` in reads but
        never consumed it, fragmenting the cache across seeds.  The
        declaration was trimmed; this pins the checker still proving
        that class clean."""
        from pathlib import Path

        real = Path(__file__).resolve().parents[2] / \
            "src/repro/baselines/qaoa_ic.py"
        files = {"src/repro/baselines/qaoa_ic.py": real.read_text()}
        findings = lint_files(files, "RPR001")
        assert findings == []
