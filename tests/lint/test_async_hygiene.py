"""RPR005 fixtures: blocking calls and lock misuse on the event loop."""


def service_module(body, prelude=""):
    return {"src/repro/service/server.py": (
        "import asyncio\n"
        "import subprocess\n"
        "import threading\n"
        "import time\n\n"
        + prelude
        + "\n\nclass Server:\n"
        + "    def __init__(self):\n"
        + "        self._lock = threading.Lock()\n\n"
        + "    async def handle(self):\n"
        + "".join(f"        {line}\n" for line in body)
    )}


class TestBlockingCalls:
    def test_time_sleep_is_flagged(self, lint_files):
        findings = lint_files(service_module(["time.sleep(0.1)"]), "RPR005")
        assert len(findings) == 1
        assert "asyncio.sleep" in findings[0].message

    def test_subprocess_run_is_flagged(self, lint_files):
        findings = lint_files(
            service_module(["subprocess.run(['ls'])"]), "RPR005")
        assert len(findings) == 1
        assert "subprocess" in findings[0].message

    def test_from_import_alias_is_still_caught(self, lint_files):
        files = {"src/repro/service/server.py": (
            "from time import sleep as snooze\n\n\n"
            "async def pause():\n"
            "    snooze(1)\n"
        )}
        findings = lint_files(files, "RPR005")
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_awaited_asyncio_sleep_is_clean(self, lint_files):
        assert lint_files(
            service_module(["await asyncio.sleep(0.1)"]), "RPR005") == []

    def test_sync_def_may_block(self, lint_files):
        files = {"src/repro/service/worker.py": (
            "import time\n\n\n"
            "def compute():\n"
            "    time.sleep(1)\n"
        )}
        assert lint_files(files, "RPR005") == []

    def test_nested_sync_def_is_not_the_loop(self, lint_files):
        """An inner def runs wherever it is called (typically in an
        executor), so its body is outside this contract."""
        findings = lint_files(service_module([
            "def blocking():",
            "    time.sleep(1)",
            "await loop.run_in_executor(None, blocking)",
        ]), "RPR005")
        assert findings == []

    def test_non_service_modules_are_out_of_scope(self, lint_files):
        files = {"src/repro/analysis/demo.py": (
            "import time\n\n\n"
            "async def tick():\n"
            "    time.sleep(1)\n"
        )}
        assert lint_files(files, "RPR005") == []


class TestLockAcquire:
    def test_untimed_acquire_is_flagged(self, lint_files):
        findings = lint_files(
            service_module(["self._lock.acquire()"]), "RPR005")
        assert len(findings) == 1
        assert "timeout" in findings[0].message

    def test_acquire_with_timeout_is_clean(self, lint_files):
        assert lint_files(
            service_module(["self._lock.acquire(timeout=1.0)"]),
            "RPR005") == []

    def test_awaited_acquire_is_clean(self, lint_files):
        """An awaited acquire is an asyncio primitive, not a block."""
        assert lint_files(
            service_module(["await self._alock.acquire()"]), "RPR005") == []


class TestAwaitUnderLock:
    def test_await_while_holding_threading_lock_is_flagged(self, lint_files):
        findings = lint_files(service_module([
            "with self._lock:",
            "    await asyncio.sleep(0)",
        ]), "RPR005")
        assert len(findings) == 1
        assert "deadlock" in findings[0].message

    def test_await_after_lock_released_is_clean(self, lint_files):
        assert lint_files(service_module([
            "with self._lock:",
            "    x = 1",
            "await asyncio.sleep(0)",
        ]), "RPR005") == []

    def test_async_with_is_clean(self, lint_files):
        """``async with`` context managers are asyncio-aware even when
        the attribute name collides with a threading lock's."""
        files = service_module(
            ["async with self._alock:",
             "    await asyncio.sleep(0)"],
        )
        assert lint_files(files, "RPR005") == []

    def test_module_level_lock_variable_is_tracked(self, lint_files):
        files = {"src/repro/service/state.py": (
            "import asyncio\n"
            "import threading\n\n"
            "GUARD = threading.RLock()\n\n\n"
            "async def mutate():\n"
            "    with GUARD:\n"
            "        await asyncio.sleep(0)\n"
        )}
        findings = lint_files(files, "RPR005")
        assert len(findings) == 1
