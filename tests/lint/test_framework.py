"""Tests for the lint substrate: findings, projects, registry, run_lint."""

import pytest

from repro.lint import Finding, Project, all_checkers, run_lint


class TestFinding:
    def test_render_format(self):
        finding = Finding(path="src/repro/x.py", line=7, check="RPR001",
                          message="boom")
        assert finding.render() == "src/repro/x.py:7: RPR001 [error] boom"

    def test_to_dict_is_the_stable_schema(self):
        finding = Finding(path="p.py", line=1, check="RPR004",
                          message="m", severity="warning")
        assert finding.to_dict() == {
            "check": "RPR004", "path": "p.py", "line": 1,
            "message": "m", "severity": "warning",
        }

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(path="p.py", line=1, check="RPR001", message="m",
                    severity="fatal")

    def test_sort_order_is_path_then_line(self):
        low = Finding(path="a.py", line=2, check="RPR001", message="m")
        high = Finding(path="b.py", line=1, check="RPR001", message="m")
        later = Finding(path="a.py", line=9, check="RPR001", message="m")
        assert sorted([high, later, low]) == [low, later, high]


class TestProject:
    def test_module_by_unique_suffix(self):
        project = Project({"src/repro/a/mod.py": "x = 1",
                           "src/repro/b/other.py": "y = 2"})
        module = project.module("a/mod.py")
        assert module is not None and module.tree is not None

    def test_ambiguous_suffix_returns_none(self):
        project = Project({"src/repro/a/mod.py": "", "src/repro/b/mod.py": ""})
        assert project.module("mod.py") is None

    def test_modules_filters_to_python_under_prefix(self):
        project = Project({"src/repro/a.py": "", "docs/guide.md": "# hi",
                           "src/other/b.py": ""})
        assert [m.path for m in project.modules()] == ["src/repro/a.py"]


class TestRunLint:
    def test_all_five_checkers_registered(self):
        assert list(all_checkers()) == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
        ]

    def test_unknown_select_id_raises(self):
        with pytest.raises(ValueError, match="RPR999"):
            run_lint(Project({}), select=["RPR999"])

    def test_unknown_ignore_id_raises(self):
        with pytest.raises(ValueError, match="unknown check id"):
            run_lint(Project({}), ignore=["bogus"])

    def test_syntax_error_becomes_rpr000_finding(self):
        findings = run_lint(Project({"src/repro/bad.py": "def f(:\n"}))
        assert len(findings) == 1
        assert findings[0].check == "RPR000"
        assert findings[0].severity == "error"

    def test_empty_project_is_clean(self):
        assert run_lint(Project({})) == []
