"""RPR002 fixtures: fingerprint dispatch coverage and field drift."""


def fixture_project(*, widget_fields="    name: str\n    size: int\n",
                    hashed=("name", "size"),
                    context_extra="", extra_modules=None):
    """A minimal cache layer: one hand-fingerprinted Widget class, a
    CompilationContext caching a ``step`` input and ``working``
    artifact, and the dispatch functions the checker cross-references."""
    update_lines = "".join(f"        h(obj.{attr})\n" for attr in hashed)
    files = {
        "src/repro/things.py": (
            "from dataclasses import dataclass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class Widget:\n" + widget_fields
        ),
        "src/repro/core/pipeline.py": (
            "from dataclasses import dataclass\n"
            "from repro.things import Widget\n\n\n"
            "@dataclass\n"
            "class CompilationContext:\n"
            "    step: Widget | None = None\n"
            "    working: Widget | None = None\n"
            + context_extra
        ),
        "src/repro/cache/cached.py": (
            'INPUT_FIELDS = ("step",)\n'
            'ARTIFACT_FIELDS = ("working",)\n'
        ),
        "src/repro/cache/fingerprint.py": (
            "from repro.things import Widget\n\n\n"
            "def _is_known_class(obj):\n"
            "    return isinstance(obj, (Widget,))\n\n\n"
            "def _update_known(h, obj):\n"
            "    if isinstance(obj, Widget):\n"
            + (update_lines or "        pass\n")
        ),
    }
    files.update(extra_modules or {})
    return files


class TestFieldDrift:
    def test_unhashed_field_on_known_class_is_an_error(self, lint_files):
        files = fixture_project(
            widget_fields="    name: str\n    size: int\n    color: str\n",
            hashed=("name", "size"),
        )
        findings = lint_files(files, "RPR002")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "Widget.color" in findings[0].message
        assert "invalidate" in findings[0].message

    def test_fully_hashed_known_class_is_clean(self, lint_files):
        assert lint_files(fixture_project(), "RPR002") == []

    def test_drift_checked_even_when_unreachable_from_context(
            self, lint_files):
        """A class in _is_known_class is cached somewhere; drift matters
        even if no context annotation mentions it."""
        files = fixture_project()
        files["src/repro/extra.py"] = (
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\n"
            "class Orphan:\n    tag: str\n"
        )
        files["src/repro/cache/fingerprint.py"] = (
            "from repro.things import Widget\n"
            "from repro.extra import Orphan\n\n\n"
            "def _is_known_class(obj):\n"
            "    return isinstance(obj, (Widget, Orphan))\n\n\n"
            "def _update_known(h, obj):\n"
            "    if isinstance(obj, Widget):\n"
            "        h(obj.name)\n"
            "        h(obj.size)\n"
            "    elif isinstance(obj, Orphan):\n"
            "        pass\n"
        )
        findings = lint_files(files, "RPR002")
        assert len(findings) == 1
        assert "Orphan.tag" in findings[0].message


class TestReachability:
    def test_unfingerprintable_reachable_type_is_an_error(self, lint_files):
        files = fixture_project(context_extra="    thing: 'Opaque' = None\n")
        files["src/repro/cache/cached.py"] = (
            'INPUT_FIELDS = ("step",)\n'
            'ARTIFACT_FIELDS = ("working", "thing")\n'
        )
        files["src/repro/opaque.py"] = (
            "class Opaque:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        )
        findings = lint_files(files, "RPR002")
        assert any(f.severity == "error" and "Opaque" in f.message
                   and "TypeError" in f.message for f in findings)

    def test_uncached_context_fields_are_not_walked(self, lint_files):
        """A field outside INPUT_FIELDS/ARTIFACT_FIELDS never enters the
        cache, so its type needs no fingerprint coverage."""
        files = fixture_project(
            context_extra="    scratch: 'Opaque' = None\n")
        files["src/repro/opaque.py"] = "class Opaque:\n    pass\n"
        assert lint_files(files, "RPR002") == []

    def test_bare_container_field_is_a_warning(self, lint_files):
        files = fixture_project(extra_modules={
            "src/repro/things.py": (
                "from dataclasses import dataclass, field\n\n\n"
                "@dataclass(frozen=True)\n"
                "class Widget:\n"
                "    name: str\n"
                "    size: int\n"
                "    parts: list = field(default_factory=list)\n"
            ),
        }, hashed=("name", "size", "parts"))
        findings = lint_files(files, "RPR002")
        assert [f.severity for f in findings] == ["warning"]
        assert "bare container" in findings[0].message

    def test_pass_config_fields_are_walked(self, lint_files):
        files = fixture_project()
        files["src/repro/baselines/demo.py"] = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n\n\n"
            "class Knob:\n    pass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class DemoPass:\n"
            "    knob: Knob = None\n"
            "    reads: ClassVar[tuple[str, ...]] = ('step',)\n"
            "    writes: ClassVar[tuple[str, ...]] = ('working',)\n\n"
            "    def run(self, ctx):\n"
            "        ctx.working = ctx.step\n"
            "        return ctx\n"
        )
        findings = lint_files(files, "RPR002")
        assert any("Knob" in f.message and "pass config" in f.message
                   for f in findings)

    def test_fingerprint_ignore_exempts_config_fields(self, lint_files):
        files = fixture_project()
        files["src/repro/baselines/demo.py"] = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n\n\n"
            "class Knob:\n    pass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class DemoPass:\n"
            "    knob: Knob = None\n"
            "    reads: ClassVar[tuple[str, ...]] = ('step',)\n"
            "    writes: ClassVar[tuple[str, ...]] = ('working',)\n"
            "    fingerprint_ignore: ClassVar[tuple[str, ...]] = ('knob',)\n\n"
            "    def run(self, ctx):\n"
            "        ctx.working = ctx.step\n"
            "        return ctx\n"
        )
        assert lint_files(files, "RPR002") == []

    def test_fixture_without_cache_layer_is_skipped(self, lint_files):
        files = {"src/repro/solo.py": "class Anything:\n    pass\n"}
        assert lint_files(files, "RPR002") == []
