"""Shared helpers: run one checker over an in-memory fixture project."""

from __future__ import annotations

import pytest

from repro.lint import Project, run_lint


@pytest.fixture
def lint_files():
    """Run a single checker over a literal ``{path: source}`` project."""

    def _run(files: dict[str, str], check_id: str):
        return run_lint(Project(files), select=[check_id])

    return _run
