"""The ``python -m repro lint`` surface: exit codes, JSON schema,
selection -- and the meta-test that the real tree lints clean."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


class TestRealTree:
    def test_real_tree_is_clean_and_schema_is_stable(self):
        """The acceptance gate: all five checkers over src/repro exit 0,
        and --json emits the documented schema."""
        proc = run_lint_cli("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["version"] == 1
        assert [c["id"] for c in payload["checks"]] == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
        ]
        assert payload["findings"] == []
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["warnings"] == 0
        assert payload["summary"]["files"] > 50

    def test_list_checks(self):
        proc = run_lint_cli("--list-checks")
        assert proc.returncode == 0
        for check_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert check_id in proc.stdout


class TestExitCodes:
    def test_seeded_violation_exits_one(self, tmp_path):
        """A deliberately-broken tree proves the non-zero exit path."""
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text(
            "import numpy as np\n\n\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        proc = run_lint_cli("--root", str(tmp_path), "--json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [f["check"] for f in payload["findings"]] == ["RPR004"]
        assert payload["findings"][0]["path"] == "src/repro/core/bad.py"
        assert payload["findings"][0]["line"] == 5
        assert payload["summary"]["errors"] == 1

    def test_select_scopes_the_run(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        proc = run_lint_cli("--root", str(tmp_path), "--select", "RPR001")
        assert proc.returncode == 0
        proc = run_lint_cli("--root", str(tmp_path), "--ignore", "RPR004")
        assert proc.returncode == 0

    def test_unknown_check_id_exits_two(self):
        proc = run_lint_cli("--select", "RPR999")
        assert proc.returncode == 2
        assert "unknown check id" in proc.stderr

    def test_bad_root_exits_two(self, tmp_path):
        proc = run_lint_cli("--root", str(tmp_path))
        assert proc.returncode == 2
        assert "src/repro" in proc.stderr

    def test_bad_diff_base_exits_two(self):
        proc = run_lint_cli("--diff-base", "no-such-ref-anywhere")
        assert proc.returncode == 2

    def test_diff_base_filters_to_changed_files(self):
        """Against HEAD the clean tree stays clean (and the plumbing --
        git diff + path filtering -- actually runs)."""
        proc = run_lint_cli("--diff-base", "HEAD")
        assert proc.returncode == 0, proc.stdout + proc.stderr
