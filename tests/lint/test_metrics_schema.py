"""RPR003 fixtures: counter schema membership, liveness, doc coverage."""


def fixture_project(*, counters=("compiled", "failed"),
                    server_body=None, doc=None):
    names = "".join(f'    "{name}",\n' for name in counters)
    body = server_body if server_body is not None else [
        'self.metrics.increment("compiled")',
        'self.metrics.increment("failed")',
    ]
    lines = "".join(f"        {line}\n" for line in body)
    files = {
        "src/repro/service/metrics.py": (
            "COUNTER_NAMES = (\n" + names + ")\n"
        ),
        "src/repro/service/server.py": (
            "class Server:\n"
            "    def observe(self):\n" + lines
        ),
    }
    if doc is not None:
        files["docs/architecture.md"] = doc
    return files


class TestSchemaMembership:
    def test_undeclared_increment_is_an_error(self, lint_files):
        files = fixture_project(server_body=[
            'self.metrics.increment("compiled")',
            'self.metrics.increment("failed")',
            'self.metrics.increment("exploded")',
        ])
        findings = lint_files(files, "RPR003")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'exploded'" in findings[0].message
        assert "KeyError" in findings[0].message
        assert findings[0].path == "src/repro/service/server.py"

    def test_undeclared_subscript_use_is_an_error(self, lint_files):
        files = fixture_project(server_body=[
            'self.metrics.increment("compiled")',
            'self.metrics.increment("failed")',
            'snapshot.counters["ghost"] += 1',
        ])
        findings = lint_files(files, "RPR003")
        assert len(findings) == 1
        assert "'ghost'" in findings[0].message

    def test_matching_schema_is_clean(self, lint_files):
        assert lint_files(fixture_project(), "RPR003") == []


class TestLiveness:
    def test_dead_counter_is_a_warning(self, lint_files):
        files = fixture_project(counters=("compiled", "failed", "unused"))
        findings = lint_files(files, "RPR003")
        assert [f.severity for f in findings] == ["warning"]
        assert "'unused'" in findings[0].message
        assert findings[0].path == "src/repro/service/metrics.py"


class TestDocCoverage:
    def test_undocumented_counter_is_a_warning(self, lint_files):
        files = fixture_project(doc="Counters: `compiled` only.\n")
        findings = lint_files(files, "RPR003")
        assert [f.severity for f in findings] == ["warning"]
        assert "`failed`" in findings[0].message
        assert findings[0].path == "docs/architecture.md"

    def test_documented_counters_are_clean(self, lint_files):
        files = fixture_project(doc="Counters: `compiled` and `failed`.\n")
        assert lint_files(files, "RPR003") == []

    def test_missing_doc_skips_the_doc_check(self, lint_files):
        assert lint_files(fixture_project(), "RPR003") == []


def test_fixture_without_metrics_module_is_skipped(lint_files):
    files = {"src/repro/service/server.py":
             'class S:\n    def f(self):\n        m.increment("x")\n'}
    assert lint_files(files, "RPR003") == []
