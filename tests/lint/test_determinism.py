"""RPR004 fixtures: unseeded RNGs and wall-clock values on the compile path."""


def compile_module(body, path="src/repro/core/demo.py",
                   imports="import numpy as np\nimport random\nimport time\n"):
    return {path: imports + "\n\ndef f(seed):\n"
            + "".join(f"    {line}\n" for line in body)}


class TestUnseededRngs:
    def test_unseeded_default_rng_is_an_error(self, lint_files):
        findings = lint_files(
            compile_module(["rng = np.random.default_rng()"]), "RPR004")
        assert [f.severity for f in findings] == ["error"]
        assert "without a seed" in findings[0].message

    def test_seeded_default_rng_is_clean(self, lint_files):
        assert lint_files(
            compile_module(["rng = np.random.default_rng(seed)"]),
            "RPR004") == []

    def test_global_numpy_rng_call_is_an_error(self, lint_files):
        findings = lint_files(
            compile_module(["np.random.shuffle([1, 2, 3])"]), "RPR004")
        assert len(findings) == 1
        assert "global" in findings[0].message

    def test_aliased_import_is_still_caught(self, lint_files):
        files = compile_module(
            ["npr.shuffle([1, 2])"],
            imports="import numpy.random as npr\n")
        findings = lint_files(files, "RPR004")
        assert len(findings) == 1
        assert "numpy.random.shuffle" in findings[0].message

    def test_stdlib_random_module_is_an_error(self, lint_files):
        findings = lint_files(
            compile_module(["x = random.random()"]), "RPR004")
        assert len(findings) == 1
        assert "global state" in findings[0].message

    def test_seeded_stdlib_random_instance_is_clean(self, lint_files):
        assert lint_files(
            compile_module(["rng = random.Random(seed)"]), "RPR004") == []


class TestClocks:
    def test_time_time_is_an_error(self, lint_files):
        findings = lint_files(
            compile_module(["stamp = time.time()"]), "RPR004")
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_perf_counter_is_exempt(self, lint_files):
        """Timings metadata is outside every fingerprint and golden."""
        assert lint_files(
            compile_module(["start = time.perf_counter()"]), "RPR004") == []

    def test_uuid4_is_an_error(self, lint_files):
        files = compile_module(["tag = uuid.uuid4()"],
                               imports="import uuid\n")
        findings = lint_files(files, "RPR004")
        assert len(findings) == 1


class TestScope:
    def test_service_layer_may_use_clocks(self, lint_files):
        """The contract covers the compile path only; the serving layer
        legitimately timestamps jobs."""
        files = compile_module(["stamp = time.time()"],
                               path="src/repro/service/demo.py")
        assert lint_files(files, "RPR004") == []

    def test_all_compile_path_packages_are_covered(self, lint_files):
        for package in ("core", "mapping", "synthesis", "baselines"):
            files = compile_module(
                ["rng = np.random.default_rng()"],
                path=f"src/repro/{package}/demo.py")
            assert lint_files(files, "RPR004"), package
