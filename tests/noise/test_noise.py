"""Tests for noise calibration, the fidelity proxy, and Monte Carlo."""

import numpy as np
import pytest

from repro.core.compiler import TwoQANCompiler
from repro.core.metrics import CircuitMetrics
from repro.core.unify import unify_circuit_operators
from repro.devices import grid
from repro.hamiltonians.qaoa import (
    QAOAProblem,
    cost_diagonal,
    minimum_cost,
    random_regular_graph,
)
from repro.noise.estimator import (
    circuit_duration_us,
    circuit_fidelity_proxy,
    noisy_normalized_cost,
)
from repro.noise.model import MONTREAL_CALIBRATION, NoiseCalibration
from repro.noise.montecarlo import monte_carlo_normalized_cost
from repro.quantum.statevector import Statevector


class TestCalibration:
    def test_paper_values(self):
        cal = MONTREAL_CALIBRATION
        assert np.isclose(cal.two_qubit_error, 0.01241)
        assert np.isclose(cal.readout_error, 0.01832)
        assert np.isclose(cal.t1_us, 87.75)
        assert np.isclose(cal.t2_us, 72.65)

    def test_effective_coherence_between_t1_t2(self):
        cal = MONTREAL_CALIBRATION
        assert cal.t2_us <= cal.effective_coherence_us <= cal.t1_us


class TestProxy:
    def test_fidelity_in_unit_interval(self):
        m = CircuitMetrics(50, 20, 40)
        f = circuit_fidelity_proxy(m, 10)
        assert 0.0 < f < 1.0

    def test_more_gates_lower_fidelity(self):
        small = CircuitMetrics(20, 10, 15)
        large = CircuitMetrics(80, 10, 15)
        assert circuit_fidelity_proxy(large, 8) < \
            circuit_fidelity_proxy(small, 8)

    def test_deeper_lower_fidelity(self):
        shallow = CircuitMetrics(40, 10, 15)
        deep = CircuitMetrics(40, 60, 80)
        assert circuit_fidelity_proxy(deep, 8) < \
            circuit_fidelity_proxy(shallow, 8)

    def test_more_qubits_lower_fidelity(self):
        m = CircuitMetrics(40, 15, 25)
        assert circuit_fidelity_proxy(m, 20) < circuit_fidelity_proxy(m, 4)

    def test_duration_combines_layers(self):
        m = CircuitMetrics(10, 5, 9)
        cal = MONTREAL_CALIBRATION
        expected = 5 * cal.two_qubit_time_us + 4 * cal.single_qubit_time_us
        assert np.isclose(circuit_duration_us(m, cal), expected)

    def test_noisy_cost_shrinks_toward_zero(self):
        m = CircuitMetrics(100, 40, 70)
        noisy = noisy_normalized_cost(0.6, m, 12)
        assert 0.0 < noisy < 0.6


class TestMonteCarlo:
    @pytest.fixture
    def compiled_qaoa(self):
        g = random_regular_graph(3, 6, seed=4)
        problem = QAOAProblem(g, (0.35,), (-0.39,))
        step = unify_circuit_operators(problem.layer_step(0))
        compiler = TwoQANCompiler(grid(2, 3), "CNOT", seed=1,
                                  solve_angles=True)
        result = compiler.compile(step)
        return result, problem, g

    def test_noiseless_limit_matches_ideal(self, compiled_qaoa):
        result, problem, g = compiled_qaoa
        ideal = problem.normalized_cost()
        quiet = NoiseCalibration(0, 0, 0, 1e9, 1e9, 0.1, 0.01)
        diag = cost_diagonal(g, 6)
        # permute cost to physical qubit positions via the final map
        perm_diag = _permuted_diag(diag, result.final_map, 6)
        initial = _embedded_plus(result.initial_map, 6)
        value = monte_carlo_normalized_cost(
            result.circuit, perm_diag, minimum_cost(g, 6),
            n_trajectories=8, seed=0, calibration=quiet, initial=initial,
        )
        assert abs(value - ideal) < 0.15  # shot noise only

    def test_noise_degrades_performance(self, compiled_qaoa):
        result, problem, g = compiled_qaoa
        diag = cost_diagonal(g, 6)
        perm_diag = _permuted_diag(diag, result.final_map, 6)
        initial = _embedded_plus(result.initial_map, 6)
        noisy_cal = NoiseCalibration(0.05, 0.001, 0.05, 50, 50, 0.4, 0.035)
        noisy = monte_carlo_normalized_cost(
            result.circuit, perm_diag, minimum_cost(g, 6),
            n_trajectories=40, seed=1, calibration=noisy_cal,
            initial=initial,
        )
        assert noisy < problem.normalized_cost()


def _permuted_diag(diag, final_map, n):
    """Re-index a logical diagonal observable to physical positions."""
    indices = np.arange(2**n)
    physical_of_logical = final_map.logical_to_physical
    source = np.zeros_like(indices)
    for logical in range(n):
        bit = (indices >> (n - 1 - physical_of_logical[logical])) & 1
        source |= bit << (n - 1 - logical)
    return diag[source]


def _embedded_plus(initial_map, n):
    """|+>^n is permutation invariant; embedding is trivial."""
    return Statevector.plus(n)


class TestProxyValidation:
    """The analytic fidelity proxy must agree with Monte-Carlo trajectories
    on what it models (gate depolarising + readout; no decoherence)."""

    def test_proxy_matches_monte_carlo_ordering(self):
        from repro.baselines import compile_tket_like
        from repro.core.compiler import TwoQANCompiler
        from repro.core.unify import unify_circuit_operators
        from repro.devices import grid

        g = random_regular_graph(3, 6, seed=4)
        problem = QAOAProblem(g, (0.35,), (-0.39,))
        step = unify_circuit_operators(problem.layer_step(0))
        device = grid(2, 3)
        ours = TwoQANCompiler(device, "CNOT", seed=1,
                              solve_angles=True).compile(step)
        theirs = compile_tket_like(step, device, "CNOT", seed=1, solve=True)

        # gate+readout noise only (no decoherence term in the MC model)
        cal = NoiseCalibration(0.03, 0.0, 0.03, 1e9, 1e9, 0.4, 0.035)
        diag = cost_diagonal(g, 6)
        cmin = minimum_cost(g, 6)

        def run(result):
            perm = result.final_map.logical_to_physical if hasattr(
                result.final_map, "logical_to_physical"
            ) else result.final_map
            indices = np.arange(2**6)
            source = np.zeros_like(indices)
            for logical in range(6):
                bit = (indices >> (6 - 1 - perm[logical])) & 1
                source |= bit << (6 - 1 - logical)
            return monte_carlo_normalized_cost(
                result.circuit, diag[source], cmin, n_trajectories=150,
                seed=3, calibration=cal, initial=Statevector.plus(6),
            )

        mc_ours = run(ours)
        mc_theirs = run(theirs)
        # The smaller circuit must keep more signal, in MC as in the proxy.
        assert mc_ours > mc_theirs
        proxy_ours = circuit_fidelity_proxy(ours.metrics, 6, calibration=cal)
        ideal = problem.normalized_cost()
        # MC value within a factor-2 band of proxy * ideal (shot noise,
        # Pauli-error micro-structure).
        assert 0.3 * proxy_ours * ideal < mc_ours < min(
            1.0, 3.0 * proxy_ours * ideal + 0.15
        )
