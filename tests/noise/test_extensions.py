"""Tests for noise-aware routing, GRASP mapping, and readout mitigation."""

import numpy as np
import pytest

from repro.core.routing import route
from repro.core.unify import unify_circuit_operators
from repro.devices import line, montreal
from repro.devices.topology import Device
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising
from repro.hamiltonians.trotter import trotter_step
from repro.mapping.grasp import grasp_search
from repro.mapping.qap import qap_from_problem
from repro.mapping.tabu import tabu_search
from repro.noise.device_noise import edge_aware_success, with_random_edge_errors
from repro.noise.mitigation import (
    confusion_matrix,
    mitigate_distribution,
    mitigate_expectation_zz,
)


class TestEdgeErrors:
    def test_attach_random_errors(self):
        noisy = with_random_edge_errors(montreal(), seed=1)
        assert noisy.edge_errors is not None
        assert len(noisy.edge_errors) == len(noisy.edges)
        assert all(0 < e <= 0.5 for e in noisy.edge_errors.values())

    def test_edge_error_lookup(self):
        device = Device("d", 3, ((0, 1), (1, 2)),
                        edge_errors={(1, 0): 0.02, (1, 2): 0.01})
        assert device.edge_error(0, 1) == 0.02   # normalised key
        assert device.edge_error(2, 1) == 0.01

    def test_non_edge_error_rejected(self):
        with pytest.raises(ValueError):
            Device("d", 3, ((0, 1),), edge_errors={(0, 2): 0.1})

    def test_default_when_uncalibrated(self):
        assert line(3).edge_error(0, 1, default=0.05) == 0.05

    def test_edge_aware_success(self):
        from repro.quantum.circuit import Circuit
        device = Device("d", 2, ((0, 1),), edge_errors={(0, 1): 0.1})
        c = Circuit(2)
        c.add("CNOT", 0, 1)
        c.add("CNOT", 0, 1)
        assert np.isclose(edge_aware_success(c, device), 0.81)


class TestNoiseAwareRouting:
    def test_error_criterion_accepted(self):
        device = with_random_edge_errors(montreal(), seed=2)
        step = unify_circuit_operators(trotter_step(nnn_heisenberg(8, seed=0)))
        routed = route(step, device, np.arange(8), seed=1,
                       criteria=("count", "error", "depth", "dress"))
        assert routed.n_swaps >= 0

    def test_error_criterion_prefers_good_edges(self):
        """With cost-tied candidates the router must take the better edge."""
        # diamond: 0-1, 0-2, 1-3, 2-3; gate (0,3) sits at distance 2 and
        # every incident swap ties on remaining cost; edge errors break
        # the tie in favour of the pristine (0,2) edge.
        device = Device("d", 4, ((0, 1), (0, 2), (1, 3), (2, 3)),
                        edge_errors={(0, 1): 0.3, (0, 2): 0.001,
                                     (1, 3): 0.3, (2, 3): 0.3})
        from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
        h = TwoLocalHamiltonian(4)
        h.add(1.0, "ZZ", (0, 3))
        step = unify_circuit_operators(trotter_step(h))
        routed = route(step, device, np.arange(4), seed=0,
                       criteria=("count", "error"))
        assert routed.swaps[0].physical_pair == (0, 2)


class TestGrasp:
    def test_beats_random(self):
        step = unify_circuit_operators(trotter_step(nnn_heisenberg(8, seed=0)))
        instance = qap_from_problem(step, montreal())
        result = grasp_search(instance, seed=0, iterations=10)
        rng = np.random.default_rng(0)
        random_costs = [
            instance.cost(np.array(rng.permutation(27)[:8]))
            for _ in range(20)
        ]
        assert result.cost < np.mean(random_costs)

    def test_assignment_valid(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(8, seed=0)))
        instance = qap_from_problem(step, montreal())
        result = grasp_search(instance, seed=1, iterations=5)
        assert len(set(result.assignment.tolist())) == 8
        assert np.isclose(result.cost, instance.cost(result.assignment))

    def test_comparable_to_tabu_on_chain(self):
        step = unify_circuit_operators(trotter_step(nnn_ising(8, seed=0)))
        instance = qap_from_problem(step, line(8))
        grasp = grasp_search(instance, seed=0, iterations=10)
        tabu = tabu_search(instance, seed=0)
        assert grasp.cost <= tabu.cost * 1.5


class TestReadoutMitigation:
    def test_confusion_matrix_columns_sum_to_one(self):
        a = confusion_matrix(0.02, 0.05)
        assert np.allclose(a.sum(axis=0), 1.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            confusion_matrix(0.6, 0.1)

    def test_distribution_roundtrip(self, rng):
        """Applying the channel then mitigating recovers the original."""
        n = 3
        p = rng.dirichlet(np.ones(2**n))
        a = confusion_matrix(0.03, 0.06)
        noisy = p.reshape((2,) * n)
        for axis in range(n):
            noisy = np.moveaxis(
                np.tensordot(a, noisy, axes=(1, axis)), 0, axis
            )
        recovered = mitigate_distribution(noisy.reshape(-1), n, 0.03, 0.06,
                                          clip=False)
        assert np.allclose(recovered, p, atol=1e-10)

    def test_clip_keeps_simplex(self, rng):
        p = rng.dirichlet(np.ones(8))
        out = mitigate_distribution(p, 3, 0.04)
        assert np.all(out >= 0)
        assert np.isclose(out.sum(), 1.0)

    def test_wrong_dimension(self):
        with pytest.raises(ValueError):
            mitigate_distribution(np.ones(5) / 5, 3, 0.01)

    def test_zz_expectation_shortcut(self):
        # symmetric flips shrink <ZZ> by (1-2p)^2
        p = 0.05
        true_value = -0.8
        shrunk = true_value * (1 - 2 * p) ** 2
        assert np.isclose(
            mitigate_expectation_zz(shrunk, p, p), true_value
        )

    def test_too_noisy_rejected(self):
        with pytest.raises(ValueError):
            mitigate_expectation_zz(0.1, 0.5, 0.5)


class TestMitigationEndToEnd:
    def test_mitigation_improves_monte_carlo(self):
        """Readout mitigation recovers most of the readout loss."""
        from repro.hamiltonians.qaoa import (
            QAOAProblem, cost_diagonal, random_regular_graph,
        )
        from repro.quantum.statevector import Statevector

        g = random_regular_graph(3, 6, seed=0)
        problem = QAOAProblem(g, (0.35,), (-0.39,))
        state = Statevector.plus(6)
        circuit = problem.ideal_circuit()
        # drop the H layer (state already |+>^n)
        from repro.quantum.circuit import Circuit
        body = Circuit(6, [gate for gate in circuit
                           if gate.name != "H"])
        state.apply_circuit(body)
        p = state.probabilities()
        diag = cost_diagonal(g, 6)
        ideal = float(p @ diag)
        # apply readout channel
        a = confusion_matrix(0.05, 0.05)
        noisy = p.reshape((2,) * 6)
        for axis in range(6):
            noisy = np.moveaxis(
                np.tensordot(a, noisy, axes=(1, axis)), 0, axis
            )
        noisy = noisy.reshape(-1)
        degraded = float(noisy @ diag)
        recovered = float(mitigate_distribution(noisy, 6, 0.05) @ diag)
        assert abs(recovered - ideal) < abs(degraded - ideal) * 0.2


class TestWeightedDistance:
    def test_weighted_distance_changes_metric(self):
        from repro.noise.device_noise import with_noise_weighted_distance
        noisy = with_random_edge_errors(montreal(), seed=3)
        weighted = with_noise_weighted_distance(noisy)
        assert not np.allclose(weighted.distance, noisy.distance)
        # weights >= 1, so weighted distances dominate hop counts
        assert np.all(weighted.distance >= noisy.distance - 1e-12)

    def test_requires_calibration(self):
        from repro.noise.device_noise import with_noise_weighted_distance
        with pytest.raises(ValueError):
            with_noise_weighted_distance(montreal())

    def test_noise_aware_compilation_improves_success(self):
        """The headline of the noise-aware extension: better edge-aware
        success at a modest gate cost."""
        from repro.core.compiler import TwoQANCompiler
        from repro.noise.device_noise import with_noise_weighted_distance
        noisy = with_random_edge_errors(montreal(), spread=0.8, seed=5)
        step = trotter_step(nnn_ising(10, seed=0))
        blind = TwoQANCompiler(noisy, "CNOT", seed=1).compile(step)
        aware = TwoQANCompiler(
            with_noise_weighted_distance(noisy), "CNOT", seed=1,
            swap_criteria=("count", "error", "depth", "dress"),
        ).compile(step)
        blind_success = edge_aware_success(blind.circuit, noisy)
        aware_success = edge_aware_success(aware.circuit, noisy)
        assert aware_success > blind_success
