"""Monte-Carlo Pauli-error simulation of noisy compiled circuits.

Validates the analytic proxy of :mod:`repro.noise.estimator` on small
problems: each trajectory runs the exact compiled circuit and, after
every two-qubit gate, injects a uniformly random two-qubit Pauli error
with the calibrated probability (depolarising channel unravelled into
trajectories); readout error flips each measured bit independently.
The normalised cost estimate converges to the density-matrix value as
the number of trajectories grows.
"""

from __future__ import annotations

import numpy as np

from repro.noise.model import MONTREAL_CALIBRATION, NoiseCalibration
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.statevector import Statevector

_PAULIS = ("I", "X", "Y", "Z")


def _random_two_qubit_pauli(rng: np.random.Generator) -> tuple[str, str]:
    while True:
        pair = (_PAULIS[rng.integers(4)], _PAULIS[rng.integers(4)])
        if pair != ("I", "I"):
            return pair


def monte_carlo_normalized_cost(circuit: Circuit, cost_diag: np.ndarray,
                                cost_min: float, n_trajectories: int = 200,
                                seed: int = 0,
                                calibration: NoiseCalibration = MONTREAL_CALIBRATION,
                                initial: Statevector | None = None,
                                ) -> float:
    """Trajectory-averaged ``<C>/C_min`` of a noisy circuit run.

    ``circuit`` must be a hardware-level circuit with exact unitaries
    (compile with ``solve_angles=True``).  ``cost_diag`` is the diagonal
    of the cost observable over the circuit's physical qubits.
    """
    rng = np.random.default_rng(seed)
    n = circuit.n_qubits
    total = 0.0
    for _ in range(n_trajectories):
        state = (Statevector.plus(n) if initial is None else initial.copy())
        for gate in circuit:
            state.apply_gate(gate)
            if gate.n_qubits == 2 and rng.random() < calibration.two_qubit_error:
                labels = _random_two_qubit_pauli(rng)
                for qubit, label in zip(gate.qubits, labels):
                    if label != "I":
                        state.apply_gate(Gate(label, (qubit,)))
        probabilities = state.probabilities()
        expectation = _readout_noisy_expectation(
            probabilities, cost_diag, n, calibration.readout_error, rng
        )
        total += expectation
    return total / n_trajectories / cost_min


def _readout_noisy_expectation(probabilities: np.ndarray,
                               cost_diag: np.ndarray, n_qubits: int,
                               flip_probability: float,
                               rng: np.random.Generator,
                               n_shots: int = 256) -> float:
    """Sampled expectation with independent readout bit flips."""
    outcomes = rng.choice(len(probabilities), size=n_shots, p=probabilities)
    flips = rng.random((n_shots, n_qubits)) < flip_probability
    flip_masks = np.zeros(n_shots, dtype=np.int64)
    for bit in range(n_qubits):
        flip_masks |= flips[:, bit].astype(np.int64) << (n_qubits - 1 - bit)
    flipped = outcomes ^ flip_masks
    return float(cost_diag[flipped].mean())
