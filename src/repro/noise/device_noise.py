"""Per-edge device noise: calibration synthesis and edge-aware fidelity.

The paper's Section VII names noise-aware compilation (refs [24, 25, 56,
77]) as the natural extension of 2QAN -- NISQ devices have strongly
inhomogeneous two-qubit error rates, so a SWAP on a bad edge costs more
fidelity than one on a good edge.  This module provides

* :func:`with_random_edge_errors` -- attach a synthetic calibration (log
  normal spread around a mean, like real IBM calibration data) to any
  device;
* :func:`edge_aware_success` -- success probability of a hardware
  circuit as the product of its gates' edge survival rates, the metric
  a noise-aware router optimises.

The routing criterion ``"error"`` (see :mod:`repro.core.routing`) uses
the same calibration to prefer low-error SWAP edges.
"""

from __future__ import annotations

import math

import numpy as np

from repro.devices.topology import Device
from repro.quantum.circuit import Circuit


def with_random_edge_errors(device: Device, mean: float = 0.0124,
                            spread: float = 0.5, seed: int = 0) -> Device:
    """Copy of the device with log-normal per-edge error rates.

    ``spread`` is the sigma of the underlying normal; real devices show
    sigma ~ 0.4-0.7 around the mean CNOT error.
    """
    rng = np.random.default_rng(seed)
    errors = {}
    for edge in device.edges:
        rate = mean * float(rng.lognormal(mean=0.0, sigma=spread))
        errors[edge] = min(0.5, rate)
    return Device(device.name + "-noisy", device.n_qubits, device.edges,
                  edge_errors=errors)


def with_noise_weighted_distance(device: Device,
                                 penalty: float = 40.0) -> Device:
    """Fold edge errors into the distance metric used by mapping/routing.

    Each edge's routing weight becomes ``1 + penalty * error``, so the
    QAP objective and the router's distance criterion both steer qubits
    away from bad edges.  ``penalty ~ 1 / mean_error`` makes one average
    edge error cost about one extra hop.
    """
    if device.edge_errors is None:
        raise ValueError("device has no edge calibration")
    weights = {
        edge: 1.0 + penalty * rate
        for edge, rate in device.edge_errors.items()
    }
    return Device(device.name + "-weighted", device.n_qubits, device.edges,
                  edge_errors=dict(device.edge_errors),
                  edge_weights=weights)


def edge_aware_success(circuit: Circuit, device: Device,
                       default_error: float = 0.0124) -> float:
    """Product of per-gate edge survival probabilities."""
    log_success = 0.0
    for gate in circuit:
        if gate.n_qubits == 2:
            rate = device.edge_error(*gate.qubits, default=default_error)
            if rate >= 1.0:
                return 0.0
            log_success += math.log1p(-rate)
    return math.exp(log_success)
