"""Tensored readout-error mitigation (paper Section VII, refs [80, 81]).

Readout errors are the second-largest error source in the paper's
Montreal experiments (1.832 % average).  The standard mitigation builds
the per-qubit confusion matrix ``A_q = [[1-e0, e1], [e0, 1-e1]]`` and
applies ``A^-1 = (x)_q A_q^-1`` to measured probability distributions.
For a diagonal cost observable this reduces to correcting the expectation
directly; both forms are provided.
"""

from __future__ import annotations

import numpy as np


def confusion_matrix(p01: float, p10: float) -> np.ndarray:
    """Single-qubit readout confusion matrix.

    ``p01`` = P(read 1 | prepared 0), ``p10`` = P(read 0 | prepared 1).
    Columns are prepared states, rows are read-out results.
    """
    if not (0 <= p01 < 0.5 and 0 <= p10 < 0.5):
        raise ValueError("flip probabilities must lie in [0, 0.5)")
    return np.array([[1 - p01, p10], [p01, 1 - p10]])


def mitigate_distribution(probabilities: np.ndarray, n_qubits: int,
                          p01: float, p10: float | None = None,
                          clip: bool = True) -> np.ndarray:
    """Invert the tensored confusion channel on a sampled distribution.

    Applies ``A_q^{-1}`` along each qubit axis of the ``2**n`` vector --
    no ``2**n x 2**n`` matrix is ever formed.  Inversion can produce
    small negative quasi-probabilities; ``clip`` projects back onto the
    simplex (clip at zero and renormalise), the common practical choice.
    """
    if p10 is None:
        p10 = p01
    if probabilities.shape != (2**n_qubits,):
        raise ValueError("distribution has the wrong dimension")
    inverse = np.linalg.inv(confusion_matrix(p01, p10))
    tensor = probabilities.reshape((2,) * n_qubits).astype(float)
    for axis in range(n_qubits):
        tensor = np.tensordot(inverse, tensor, axes=(1, axis))
        # tensordot moves the contracted axis to the front; rotate back.
        tensor = np.moveaxis(tensor, 0, axis)
    mitigated = tensor.reshape(-1)
    if clip:
        mitigated = np.clip(mitigated, 0.0, None)
        total = mitigated.sum()
        if total > 0:
            mitigated = mitigated / total
    return mitigated


def mitigate_expectation_zz(raw_expectation: float, p01: float,
                            p10: float | None = None,
                            n_factors: int = 2) -> float:
    """Correct the expectation of a +/-1-valued Z-string observable.

    A symmetric bit flip with probability ``p`` shrinks ``<Z>`` by
    ``(1 - 2p)`` per measured qubit, so the inverse is a division --
    the scalar shortcut for cost functions like ``sum ZZ``.
    """
    if p10 is None:
        p10 = p01
    shrink = ((1 - p01 - p10)) ** n_factors
    if shrink <= 0:
        raise ValueError("readout noise too strong to invert")
    return raw_expectation / shrink
