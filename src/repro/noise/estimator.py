"""Analytic fidelity proxy for compiled circuits (Figure 10 substitute).

Without hardware access, the noisy normalised QAOA cost is modelled with
the standard global-depolarising picture::

    <C>_noisy = F * <C>_ideal + (1 - F) * <C>_random

with ``<C>_random = 0`` for MaxCut cost ``sum ZZ`` (random bitstrings cut
half the edges in expectation).  The circuit fidelity ``F`` multiplies

* per-gate depolarising survival ``(1 - e_2q)^(#2q) (1 - e_1q)^(#1q)``,
* per-qubit readout survival ``(1 - e_ro)^n``,
* decoherence survival ``exp(-sqrt(n) * T_circ / T_coh)`` with the
  circuit wall time from the depth metrics.  The ``sqrt(n)`` effective
  qubit count reflects that the cost observable is a sum of *local* ZZ
  terms: idle errors outside a term's light cone partially cancel, so
  the decay sits between the worst-qubit (``n^0``) and global-state
  (``n^1``) extremes; this calibration reproduces the magnitudes of the
  paper's measured curves.

This preserves exactly what Figure 10 demonstrates: the compiler that
produces fewer gates and shallower circuits keeps a measurably higher
normalised cost, and every curve decays toward zero (random guessing)
as the problem grows.
"""

from __future__ import annotations

import math

from repro.core.metrics import CircuitMetrics
from repro.noise.model import MONTREAL_CALIBRATION, NoiseCalibration


def circuit_duration_us(metrics: CircuitMetrics,
                        calibration: NoiseCalibration) -> float:
    """Wall-clock duration from the depth metrics."""
    two_q_layers = metrics.two_qubit_depth
    one_q_layers = max(0, metrics.total_depth - metrics.two_qubit_depth)
    return (
        two_q_layers * calibration.two_qubit_time_us
        + one_q_layers * calibration.single_qubit_time_us
    )


def circuit_fidelity_proxy(metrics: CircuitMetrics, n_qubits: int,
                           n_single_qubit_gates: int = 0,
                           calibration: NoiseCalibration = MONTREAL_CALIBRATION,
                           ) -> float:
    """Estimated probability that the circuit runs error-free."""
    gate_survival = (
        (1.0 - calibration.two_qubit_error) ** metrics.n_two_qubit_gates
        * (1.0 - calibration.single_qubit_error) ** n_single_qubit_gates
    )
    readout_survival = (1.0 - calibration.readout_error) ** n_qubits
    duration = circuit_duration_us(metrics, calibration)
    decoherence = math.exp(
        -math.sqrt(n_qubits) * duration / calibration.effective_coherence_us
    )
    return gate_survival * readout_survival * decoherence


def noisy_normalized_cost(ideal_normalized: float, metrics: CircuitMetrics,
                          n_qubits: int, n_single_qubit_gates: int = 0,
                          calibration: NoiseCalibration = MONTREAL_CALIBRATION,
                          ) -> float:
    """``F * ideal + (1-F) * 0``: the Figure-10 y-axis quantity."""
    fidelity = circuit_fidelity_proxy(
        metrics, n_qubits, n_single_qubit_gates, calibration
    )
    return fidelity * ideal_normalized
