"""Hardware noise modelling for the application-fidelity experiment."""

from repro.noise.model import MONTREAL_CALIBRATION, NoiseCalibration
from repro.noise.estimator import circuit_fidelity_proxy, noisy_normalized_cost
from repro.noise.montecarlo import monte_carlo_normalized_cost
from repro.noise.device_noise import edge_aware_success, with_random_edge_errors
from repro.noise.mitigation import (
    confusion_matrix,
    mitigate_distribution,
    mitigate_expectation_zz,
)

__all__ = [
    "NoiseCalibration",
    "MONTREAL_CALIBRATION",
    "circuit_fidelity_proxy",
    "noisy_normalized_cost",
    "monte_carlo_normalized_cost",
    "with_random_edge_errors",
    "edge_aware_success",
    "confusion_matrix",
    "mitigate_distribution",
    "mitigate_expectation_zz",
]
