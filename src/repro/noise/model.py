"""Noise calibration data (paper Section IV, Quantum computers).

The Montreal figures are the ones the paper reports for its experiment
date (29 Oct 2021): average CNOT error 1.241 %, average readout error
1.832 %, T1 = 87.75 us, T2 = 72.65 us.  Gate/readout durations are the
standard IBM Falcon values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseCalibration:
    """Average device noise figures used by the fidelity estimators."""

    two_qubit_error: float          # depolarising error per 2q gate
    single_qubit_error: float       # per 1q gate
    readout_error: float            # per measured qubit
    t1_us: float                    # relaxation time
    t2_us: float                    # dephasing time
    two_qubit_time_us: float        # duration of a 2q gate layer
    single_qubit_time_us: float     # duration of a 1q gate layer

    @property
    def effective_coherence_us(self) -> float:
        """Harmonic blend of T1 and T2 governing idle decay."""
        return 2.0 / (1.0 / self.t1_us + 1.0 / self.t2_us)


MONTREAL_CALIBRATION = NoiseCalibration(
    two_qubit_error=0.01241,
    single_qubit_error=0.0004,
    readout_error=0.01832,
    t1_us=87.75,
    t2_us=72.65,
    two_qubit_time_us=0.40,
    single_qubit_time_us=0.035,
)
