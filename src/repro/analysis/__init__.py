"""Evaluation harness: sweeps, overhead tables, runtime analysis."""

from repro.analysis.harness import (
    BenchmarkRow,
    SweepConfig,
    run_sweep,
    format_rows,
)
from repro.analysis.overhead import reduction_table, summarize_reductions

__all__ = [
    "BenchmarkRow",
    "SweepConfig",
    "run_sweep",
    "format_rows",
    "reduction_table",
    "summarize_reductions",
]
