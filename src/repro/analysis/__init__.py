"""Evaluation harness: sweeps, parallel engine, result store, tables."""

from repro.analysis.harness import (
    AmbiguousRowsError,
    BenchmarkRow,
    SweepConfig,
    aggregate,
    run_sweep,
    format_pass_timings,
    format_rows,
)
from repro.analysis.engine import (
    SweepTask,
    expand_tasks,
    open_store,
    parallel_map,
    run_engine,
)
from repro.analysis.overhead import reduction_table, summarize_reductions
from repro.analysis.store import ResultStore

__all__ = [
    "AmbiguousRowsError",
    "BenchmarkRow",
    "ResultStore",
    "SweepConfig",
    "SweepTask",
    "aggregate",
    "expand_tasks",
    "format_pass_timings",
    "format_rows",
    "open_store",
    "parallel_map",
    "reduction_table",
    "run_engine",
    "run_sweep",
    "summarize_reductions",
]
