"""Overhead-reduction tables (paper Tables I, II, IV, V).

The paper defines *overhead* as the increase of a metric over the NoMap
baseline and reports, per benchmark family, the average and maximum of
``overhead(other) / overhead(2QAN)`` across problem sizes.  SWAP counts
are compared directly (the baseline inserts none).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.harness import BenchmarkRow, aggregate


@dataclass(frozen=True)
class ReductionEntry:
    """avg/max reduction for one (benchmark, metric) cell."""

    benchmark: str
    metric: str
    average: float
    maximum: float

    def formatted(self) -> str:
        if np.isinf(self.average):
            return "--"
        return f"{self.average:.1f}x (max {self.maximum:.1f}x)"


def _per_size_ratio(rows: list[BenchmarkRow], ours: str, other: str,
                    n_qubits: int, metric: str) -> float:
    if metric == "swaps":
        our_val = aggregate(rows, ours, n_qubits, "n_swaps")
        other_val = aggregate(rows, other, n_qubits, "n_swaps")
    else:
        attribute = {
            "gates": "n_two_qubit_gates",
            "depth": "two_qubit_depth",
        }[metric]
        base = aggregate(rows, "nomap", n_qubits, attribute)
        our_val = aggregate(rows, ours, n_qubits, attribute) - base
        other_val = aggregate(rows, other, n_qubits, attribute) - base
    if our_val <= 0:
        return float("inf")
    return other_val / our_val


def reduction_table(rows: list[BenchmarkRow], other: str,
                    metrics: tuple[str, ...] = ("swaps", "gates", "depth"),
                    ours: str = "2qan") -> list[ReductionEntry]:
    """Tables I/II style entries for one comparison compiler."""
    entries: list[ReductionEntry] = []
    benchmarks = sorted({r.benchmark for r in rows})
    for benchmark in benchmarks:
        subset = [r for r in rows if r.benchmark == benchmark]
        sizes = sorted({r.n_qubits for r in subset})
        for metric in metrics:
            ratios = [
                _per_size_ratio(subset, ours, other, n, metric)
                for n in sizes
            ]
            finite = [r for r in ratios if np.isfinite(r)]
            if finite:
                entries.append(ReductionEntry(
                    benchmark, metric,
                    average=float(np.mean(finite)),
                    maximum=float(np.max(finite)),
                ))
            else:
                entries.append(ReductionEntry(
                    benchmark, metric, float("inf"), float("inf")
                ))
    return entries


def summarize_reductions(entries: list[ReductionEntry]) -> str:
    """Printable table."""
    lines = [f"{'benchmark':18s} {'metric':8s} {'avg':>10s} {'max':>10s}"]
    for e in entries:
        avg = "--" if np.isinf(e.average) else f"{e.average:.1f}x"
        mx = "--" if np.isinf(e.maximum) else f"{e.maximum:.1f}x"
        lines.append(f"{e.benchmark:18s} {e.metric:8s} {avg:>10s} {mx:>10s}")
    return "\n".join(lines)
