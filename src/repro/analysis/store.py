"""Persistent on-disk result store for experiment sweeps.

A :class:`ResultStore` is an append-only JSON-lines file: one line per
completed ``(benchmark, size, instance, compiler)`` task, written as soon
as the task finishes.  Interrupted sweeps therefore resume exactly where
they stopped -- the engine replays the file, skips every task whose key
is already present, and only computes the remainder.

Store files are named by a *config fingerprint* (a SHA-256 prefix over
the sweep's environment: benchmark family, device topology incl.
calibration, gate set, base seed), so sweeps with different
environments never share a file while re-runs and grid *extensions*
(more sizes, more compilers) of the same environment reuse every row
already on disk.

Caveat: resumed rows are returned verbatim, including their ``seconds``
wall time, which was measured under whatever parallelism/load the
original run had.  Metrics are deterministic; timings are informational.
Use :mod:`repro.analysis.runtime` (which never touches the store) for
paper-grade timing measurements.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.analysis.harness import BenchmarkRow

_ROW_FIELDS = tuple(f.name for f in dataclasses.fields(BenchmarkRow))


def row_to_dict(row: BenchmarkRow) -> dict:
    """Serialise one row to a plain JSON-compatible dict."""
    return dataclasses.asdict(row)


def row_from_dict(payload: dict) -> BenchmarkRow:
    """Inverse of :func:`row_to_dict`.

    Ignores unknown keys and tolerates keys with defaults being absent
    (rows stored before the field existed, e.g. per-pass ``timings``).
    """
    return BenchmarkRow(
        **{name: payload[name] for name in _ROW_FIELDS if name in payload}
    )


def config_fingerprint(payload: dict) -> str:
    """Stable short hash of a JSON-compatible config description."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def source_digest() -> str:
    """Digest of the installed ``repro`` sources.

    Stored rows depend on the compiler implementation as much as on the
    sweep config; salting a store key with this digest makes any code
    change invalidate the cache instead of silently replaying rows
    computed by an older compiler.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class ResultStore:
    """Append-only JSON-lines store mapping task keys to benchmark rows.

    ``__contains__``/``__len__`` re-parse the file on every call; for
    bulk membership checks call :meth:`load` once and query the dict
    (as the engine does).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> dict[str, BenchmarkRow]:
        """Read every stored row; tolerates a torn final line.

        A sweep killed mid-write leaves a truncated last line; it is
        dropped (that task simply reruns) instead of poisoning the store.
        """
        rows: dict[str, BenchmarkRow] = {}
        if not self.path.exists():
            return rows
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    rows[payload["task"]] = row_from_dict(payload["row"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue
        return rows

    def put(self, key: str, row: BenchmarkRow) -> None:
        """Append one completed task; durable immediately.

        If the file ends in a torn line (a previous writer died
        mid-write), a newline is inserted first so the new record never
        fuses with the corrupt tail -- otherwise both rows would be
        lost on the next :meth:`load`.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = False
        try:
            with self.path.open("rb") as handle:
                handle.seek(-1, 2)
                needs_newline = handle.read(1) != b"\n"
        except (OSError, ValueError):
            pass                         # missing or empty file
        line = json.dumps({"task": key, "row": row_to_dict(row)},
                          sort_keys=True)
        with self.path.open("a") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(line + "\n")
            handle.flush()

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())
