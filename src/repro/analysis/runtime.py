"""Compiler runtime / scalability measurement (paper Section V-D)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import get_compiler
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep


@dataclass(frozen=True)
class RuntimeRecord:
    """Pass-by-pass wall times for one compilation.

    Passes a compiler's pipeline does not run (e.g. baselines without a
    mapping search) report 0.0.  ``unify_s`` (stage 1, circuit unitary
    unifying) defaults to 0.0 so records built before the field existed
    keep loading; ``total_s`` includes it -- it used to be silently
    dropped, under-reporting every total.
    """

    label: str
    n_qubits: int
    n_operators: int
    mapping_s: float
    routing_s: float
    scheduling_s: float
    decomposition_s: float
    unify_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.unify_s + self.mapping_s + self.routing_s
                + self.scheduling_s + self.decomposition_s)


def measure_runtime(label: str, step: TrotterStep, device: Device,
                    gateset: str = "CNOT", seed: int = 0,
                    compiler: str = "2qan", **knobs) -> RuntimeRecord:
    """Compile once with a registry compiler and report per-pass timings."""
    instance = get_compiler(compiler, device=device, gateset=gateset,
                            seed=seed, **knobs)
    result = instance.compile(step)
    timings = result.timings
    return RuntimeRecord(
        label=label,
        n_qubits=step.n_qubits,
        n_operators=len(step.two_qubit_ops),
        unify_s=timings.get("unify", 0.0),
        mapping_s=timings.get("mapping", 0.0),
        routing_s=timings.get("routing", 0.0),
        scheduling_s=timings.get("scheduling", 0.0),
        decomposition_s=timings.get("decomposition", 0.0),
    )


@dataclass(frozen=True)
class RuntimeSpec:
    """A picklable description of one runtime measurement.

    Workers rebuild the Trotter step from the benchmark name and seed, so
    a list of specs can be fanned out across a process pool with
    :func:`repro.analysis.engine.parallel_map`.

    ``mapping_trials`` is a 2QAN-family knob (other compilers have no
    such parameter); to configure a baseline, put its constructor knobs
    in ``knobs`` -- they are forwarded verbatim, so a knob the compiler
    does not accept raises ``TypeError`` instead of being dropped.
    """

    label: str
    benchmark: str
    n_qubits: int
    device: Device
    gateset: str = "CNOT"
    seed: int = 0
    mapping_trials: int = 5
    qaoa_degree: int = 3
    compiler: str = "2qan"
    knobs: dict = field(default_factory=dict)


def measure_runtime_spec(spec: RuntimeSpec) -> RuntimeRecord:
    """Build the spec's problem and measure one compilation."""
    from repro.analysis.harness import build_step

    step = build_step(spec.benchmark, spec.n_qubits, spec.seed,
                      spec.qaoa_degree)
    knobs = dict(spec.knobs)
    if spec.compiler in ("2qan", "2qan_nodress"):
        knobs.setdefault("mapping_trials", spec.mapping_trials)
    return measure_runtime(spec.label, step, spec.device,
                           gateset=spec.gateset, seed=spec.seed,
                           compiler=spec.compiler, **knobs)


def runtime_records_payload(records: list[RuntimeRecord]) -> list[dict]:
    """Machine-readable form of a runtime table.

    One JSON object per record with per-pass seconds rounded to
    milliseconds, so ``benchmarks/results/runtime_scaling.json`` diffs
    meaningfully across PRs (the perf trajectory) without churning on
    sub-millisecond noise.
    """
    payload = []
    for r in records:
        payload.append({
            "benchmark": r.label,
            "n_qubits": r.n_qubits,
            "n_operators": r.n_operators,
            "unify_s": round(r.unify_s, 3),
            "mapping_s": round(r.mapping_s, 3),
            "routing_s": round(r.routing_s, 3),
            "scheduling_s": round(r.scheduling_s, 3),
            "decomposition_s": round(r.decomposition_s, 3),
            "total_s": round(r.total_s, 3),
        })
    return payload


def runtime_records_from_payload(payload: list[dict]) -> list[RuntimeRecord]:
    """Rebuild records from a ``runtime_scaling.json`` payload.

    Tolerates rows written before the ``unify_s`` column existed (it
    defaults to 0.0).  The stored ``total_s`` is derived and rounded, so
    it is not read back; ``total_s`` of the rebuilt record is recomputed
    from the (rounded) per-pass columns.
    """
    return [
        RuntimeRecord(
            label=row["benchmark"],
            n_qubits=int(row["n_qubits"]),
            n_operators=int(row["n_operators"]),
            unify_s=float(row.get("unify_s", 0.0)),
            mapping_s=float(row["mapping_s"]),
            routing_s=float(row["routing_s"]),
            scheduling_s=float(row["scheduling_s"]),
            decomposition_s=float(row["decomposition_s"]),
        )
        for row in payload
    ]


def format_runtime_table(records: list[RuntimeRecord]) -> str:
    header = (
        f"{'benchmark':24s} {'n':>4s} {'ops':>5s} {'unify(s)':>9s} "
        f"{'map(s)':>8s} {'route(s)':>9s} {'sched(s)':>9s} "
        f"{'decomp(s)':>10s} {'total':>8s}"
    )
    lines = [header]
    for r in records:
        lines.append(
            f"{r.label:24s} {r.n_qubits:4d} {r.n_operators:5d} "
            f"{r.unify_s:9.2f} {r.mapping_s:8.2f} {r.routing_s:9.2f} "
            f"{r.scheduling_s:9.2f} {r.decomposition_s:10.2f} "
            f"{r.total_s:8.2f}"
        )
    return "\n".join(lines)
