"""The sweep harness shared by every figure/table benchmark.

One :class:`SweepConfig` describes a paper experiment: benchmark family,
device, gate set, problem sizes, compilers.  :func:`run_sweep` produces
:class:`BenchmarkRow` records -- exactly the series plotted in Figures
7-9/11-13 (SWAP count, hardware two-qubit gate count, two-qubit depth,
plus the dressed-SWAP count and the NoMap baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    compile_ic_qaoa,
    compile_nomap,
    compile_qiskit_like,
    compile_tket_like,
)
from repro.core.compiler import TwoQANCompiler
from repro.core.decompose import DecomposeCache
from repro.devices.topology import Device
from repro.hamiltonians.models import MODEL_BUILDERS
from repro.hamiltonians.qaoa import random_regular_graph, QAOAProblem
from repro.hamiltonians.trotter import TrotterStep, trotter_step

DEFAULT_COMPILERS = ("2qan", "tket", "qiskit")


@dataclass(frozen=True)
class BenchmarkRow:
    """One (benchmark, size, instance, compiler) measurement."""

    benchmark: str
    device: str
    gateset: str
    n_qubits: int
    instance: int
    compiler: str
    n_swaps: int
    n_dressed: int
    n_two_qubit_gates: int
    two_qubit_depth: int
    total_depth: int
    seconds: float


@dataclass
class SweepConfig:
    """One experiment sweep (a paper figure panel row)."""

    benchmark: str                      # NNN_Ising | NNN_XY | NNN_Heisenberg | QAOA-REG-k
    device: Device
    gateset: str
    sizes: tuple[int, ...]
    compilers: tuple[str, ...] = DEFAULT_COMPILERS
    instances: int = 1                  # >1 only for QAOA (random graphs)
    seed: int = 0
    qaoa_degree: int = 3


def build_step(benchmark: str, n_qubits: int, instance_seed: int,
               degree: int = 3) -> TrotterStep:
    """Instantiate one benchmark problem as a Trotter step."""
    if benchmark.startswith("QAOA-REG"):
        graph = random_regular_graph(degree, n_qubits, seed=instance_seed)
        # Compilation metrics are angle-independent; fixed angles keep the
        # sweep fast.  (Fidelity experiments pick optimal angles.)
        problem = QAOAProblem(graph, (0.35,), (-0.39,))
        return problem.layer_step(0)
    try:
        builder = MODEL_BUILDERS[benchmark]
    except KeyError:
        raise ValueError(f"unknown benchmark {benchmark!r}") from None
    return trotter_step(builder(n_qubits, seed=instance_seed))


def compile_with(name: str, step: TrotterStep, device: Device,
                 gateset: str, seed: int, cache: DecomposeCache):
    """Dispatch one compiler by name; returns (metrics-bearing result)."""
    if name == "2qan":
        compiler = TwoQANCompiler(device=device, gateset=gateset, seed=seed)
        compiler._cache = cache
        return compiler.compile(step)
    if name == "2qan_nodress":
        compiler = TwoQANCompiler(device=device, gateset=gateset, seed=seed,
                                  dress=False)
        compiler._cache = cache
        return compiler.compile(step)
    if name == "tket":
        return compile_tket_like(step, device, gateset, seed=seed, cache=cache)
    if name == "qiskit":
        return compile_qiskit_like(step, device, gateset, seed=seed, cache=cache)
    if name == "ic_qaoa":
        return compile_ic_qaoa(step, device, gateset, seed=seed, cache=cache)
    if name == "nomap":
        return compile_nomap(step, gateset, seed=seed, cache=cache)
    raise ValueError(f"unknown compiler {name!r}")


def run_sweep(config: SweepConfig) -> list[BenchmarkRow]:
    """Run all (size, instance, compiler) combinations of a sweep."""
    rows: list[BenchmarkRow] = []
    cache = DecomposeCache()
    for n_qubits in config.sizes:
        for instance in range(config.instances):
            instance_seed = config.seed + 7919 * instance + n_qubits
            step = build_step(config.benchmark, n_qubits, instance_seed,
                              config.qaoa_degree)
            for compiler_name in config.compilers:
                start = time.perf_counter()
                result = compile_with(compiler_name, step, config.device,
                                      config.gateset, config.seed + instance,
                                      cache)
                elapsed = time.perf_counter() - start
                metrics = result.metrics
                rows.append(BenchmarkRow(
                    benchmark=config.benchmark,
                    device=config.device.name,
                    gateset=config.gateset,
                    n_qubits=n_qubits,
                    instance=instance,
                    compiler=compiler_name,
                    n_swaps=metrics.n_swaps,
                    n_dressed=metrics.n_dressed,
                    n_two_qubit_gates=metrics.n_two_qubit_gates,
                    two_qubit_depth=metrics.two_qubit_depth,
                    total_depth=metrics.total_depth,
                    seconds=elapsed,
                ))
    return rows


def aggregate(rows: list[BenchmarkRow], compiler: str, n_qubits: int,
              attribute: str) -> float:
    """Mean of one metric over instances."""
    values = [
        getattr(r, attribute) for r in rows
        if r.compiler == compiler and r.n_qubits == n_qubits
    ]
    if not values:
        raise ValueError(f"no rows for {compiler} at n={n_qubits}")
    return float(np.mean(values))


def format_rows(rows: list[BenchmarkRow], attribute: str,
                compilers: tuple[str, ...] | None = None) -> str:
    """Figure-style text table: one line per size, one column per compiler."""
    if not rows:
        return "(no data)"
    if compilers is None:
        compilers = tuple(dict.fromkeys(r.compiler for r in rows))
    sizes = sorted({r.n_qubits for r in rows})
    header = "  n  " + "".join(f"{c:>12s}" for c in compilers)
    lines = [header]
    for n in sizes:
        cells = []
        for compiler in compilers:
            try:
                cells.append(f"{aggregate(rows, compiler, n, attribute):12.1f}")
            except ValueError:
                cells.append(f"{'-':>12s}")
        lines.append(f"{n:4d} " + "".join(cells))
    return "\n".join(lines)
