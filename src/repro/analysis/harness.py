"""The sweep harness shared by every figure/table benchmark.

One :class:`SweepConfig` describes a paper experiment: benchmark family,
device, gate set, problem sizes, compilers.  :func:`run_sweep` produces
:class:`BenchmarkRow` records -- exactly the series plotted in Figures
7-9/11-13 (SWAP count, hardware two-qubit gate count, two-qubit depth,
plus the dressed-SWAP count and the NoMap baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.decompose import DecomposeCache
from repro.core.registry import get_compiler
from repro.devices.topology import Device
from repro.hamiltonians.models import MODEL_BUILDERS
from repro.hamiltonians.qaoa import random_regular_graph, QAOAProblem
from repro.hamiltonians.trotter import TrotterStep, trotter_step
from repro.quantum.params import Param

DEFAULT_COMPILERS = ("2qan", "tket", "qiskit")


@dataclass(frozen=True)
class BenchmarkRow:
    """One (benchmark, size, instance, compiler) measurement.

    ``timings`` carries the compiler's per-pass wall times (one entry
    per executed pipeline pass), so sweep reports can show where compile
    time goes; like ``seconds`` it is informational, not deterministic.
    ``cache_stats`` carries the task's cache counters (decomposition
    memo hits/misses, and artifact-cache hits/misses when the sweep
    runs with one) -- informational too.
    """

    benchmark: str
    device: str
    gateset: str
    n_qubits: int
    instance: int
    compiler: str
    n_swaps: int
    n_dressed: int
    n_two_qubit_gates: int
    two_qubit_depth: int
    total_depth: int
    seconds: float
    timings: dict[str, float] = field(default_factory=dict, compare=False)
    cache_stats: dict[str, int] = field(default_factory=dict, compare=False)


@dataclass
class SweepConfig:
    """One experiment sweep (a paper figure panel row)."""

    benchmark: str                      # NNN_Ising | NNN_XY | NNN_Heisenberg | QAOA-REG-k
    device: Device
    gateset: str
    sizes: tuple[int, ...]
    compilers: tuple[str, ...] = DEFAULT_COMPILERS
    instances: int = 1                  # >1 only for QAOA (random graphs)
    seed: int = 0
    qaoa_degree: int = 3


#: Default sweep angles for the QAOA families (see build_step).
_SWEEP_ANGLES = ((0.35,), (-0.39,))


def _benchmark_graph(benchmark: str, n_qubits: int, instance_seed: int,
                     degree: int):
    """The random graph behind a QAOA-family benchmark name, or None."""
    if benchmark.startswith("QAOA-REG"):
        return random_regular_graph(degree, n_qubits, seed=instance_seed)
    if benchmark.startswith("QAOA-WR"):
        from repro.hamiltonians.randomized import weighted_regular_graph

        return weighted_regular_graph(degree, n_qubits, seed=instance_seed)
    if benchmark == "QAOA-ER":
        from repro.hamiltonians.randomized import weighted_erdos_renyi_graph

        return weighted_erdos_renyi_graph(n_qubits, seed=instance_seed)
    return None


def build_step(benchmark: str, n_qubits: int, instance_seed: int,
               degree: int = 3) -> TrotterStep:
    """Instantiate one benchmark problem as a Trotter step."""
    graph = _benchmark_graph(benchmark, n_qubits, instance_seed, degree)
    if graph is not None:
        # Compilation metrics are angle-independent; fixed angles keep the
        # sweep fast.  (Fidelity experiments pick optimal angles.)
        problem = QAOAProblem(graph, *_SWEEP_ANGLES)
        return problem.layer_step(0)
    try:
        builder = MODEL_BUILDERS[benchmark]
    except KeyError:
        raise ValueError(f"unknown benchmark {benchmark!r}") from None
    return trotter_step(builder(n_qubits, seed=instance_seed))


def build_symbolic_step(benchmark: str, n_qubits: int, instance_seed: int,
                        degree: int = 3) -> TrotterStep:
    """The symbolic (structure-only) form of a benchmark problem.

    QAOA families carry ``gamma``/``beta`` placeholders, Hamiltonian
    models a ``t`` placeholder; binding
    :func:`default_binding` reproduces :func:`build_step`'s concrete
    step bit-for-bit (the service and CLI fast paths rely on that).
    """
    graph = _benchmark_graph(benchmark, n_qubits, instance_seed, degree)
    if graph is not None:
        problem = QAOAProblem(graph, (Param("gamma"),), (Param("beta"),))
        return problem.layer_step(0)
    try:
        builder = MODEL_BUILDERS[benchmark]
    except KeyError:
        raise ValueError(f"unknown benchmark {benchmark!r}") from None
    return trotter_step(builder(n_qubits, seed=instance_seed), t=Param("t"))


def default_binding(benchmark: str) -> dict[str, float]:
    """The angle values :func:`build_step` bakes into a benchmark."""
    if benchmark.startswith("QAOA"):
        (gamma,), (beta,) = _SWEEP_ANGLES
        return {"gamma": gamma, "beta": beta}
    return {"t": 1.0}


def compile_with(name: str, step: TrotterStep, device: Device,
                 gateset: str, seed: int, cache: DecomposeCache,
                 artifacts=None):
    """Dispatch one compiler by registry name; returns the result.

    With ``artifacts`` (a :class:`repro.cache.ArtifactCache`) the
    pipeline runs cache-aware: stages whose output is already stored are
    skipped, with identical metrics either way.
    """
    compiler = get_compiler(name, device=device, gateset=gateset, seed=seed,
                            cache=cache)
    if artifacts is not None:
        from repro.cache.cached import compile_cached

        return compile_cached(compiler, step, artifacts)
    return compiler.compile(step)


def run_sweep(config: SweepConfig, jobs: int = 1, store=None,
              artifact_cache=None) -> list[BenchmarkRow]:
    """Run all (size, instance, compiler) combinations of a sweep.

    Delegates to :func:`repro.analysis.engine.run_engine`; ``jobs > 1``
    fans tasks out over a process pool and ``store`` (a
    :class:`~repro.analysis.store.ResultStore`) makes the sweep
    resumable.  The defaults preserve the historical serial metrics and
    row order exactly; only ``seconds`` differs, because each compiler
    now gets its own decomposition cache (the timing-fairness fix)
    instead of sharing one warmed by whichever compiler ran first.
    """
    from repro.analysis.engine import run_engine

    return run_engine(config, jobs=jobs, store=store,
                      artifact_cache=artifact_cache)


class AmbiguousRowsError(ValueError):
    """Rows from unrelated sweeps would have been silently averaged."""


def _check_homogeneous(selected: list[BenchmarkRow], benchmark: str | None,
                       device: str | None, gateset: str | None) -> None:
    for name, wanted in (("benchmark", benchmark), ("device", device),
                         ("gateset", gateset)):
        if wanted is not None:
            continue
        distinct = {getattr(r, name) for r in selected}
        if len(distinct) > 1:
            raise AmbiguousRowsError(
                f"rows mix several {name}s {sorted(distinct)}; pass "
                f"{name}=... to select one instead of averaging them"
            )


def aggregate(rows: list[BenchmarkRow], compiler: str, n_qubits: int,
              attribute: str, *, benchmark: str | None = None,
              device: str | None = None, gateset: str | None = None) -> float:
    """Mean of one metric over instances.

    Rows are selected by ``compiler`` and ``n_qubits`` plus any of the
    optional ``benchmark``/``device``/``gateset`` filters.  If a filter
    is omitted and the selected rows disagree on that field, the call
    raises :class:`AmbiguousRowsError` rather than silently averaging
    measurements from unrelated sweeps.
    """
    selected = [
        r for r in rows
        if r.compiler == compiler and r.n_qubits == n_qubits
        and (benchmark is None or r.benchmark == benchmark)
        and (device is None or r.device == device)
        and (gateset is None or r.gateset == gateset)
    ]
    if not selected:
        raise ValueError(f"no rows for {compiler} at n={n_qubits}")
    _check_homogeneous(selected, benchmark, device, gateset)
    return float(np.mean([getattr(r, attribute) for r in selected]))


def format_rows(rows: list[BenchmarkRow], attribute: str,
                compilers: tuple[str, ...] | None = None, *,
                benchmark: str | None = None, device: str | None = None,
                gateset: str | None = None) -> str:
    """Figure-style text table: one line per size, one column per compiler.

    The same mixed-sweep guard as :func:`aggregate` applies: tabulating
    rows that span several benchmarks/devices/gatesets without an
    explicit filter raises :class:`AmbiguousRowsError`.
    """
    if not rows:
        return "(no data)"
    if compilers is None:
        compilers = tuple(dict.fromkeys(r.compiler for r in rows))
    sizes = sorted({r.n_qubits for r in rows})
    header = "  n  " + "".join(f"{c:>12s}" for c in compilers)
    lines = [header]
    for n in sizes:
        cells = []
        for compiler in compilers:
            try:
                value = aggregate(rows, compiler, n, attribute,
                                  benchmark=benchmark, device=device,
                                  gateset=gateset)
                cells.append(f"{value:12.1f}")
            except AmbiguousRowsError:
                raise
            except ValueError:
                cells.append(f"{'-':>12s}")
        lines.append(f"{n:4d} " + "".join(cells))
    return "\n".join(lines)


def _format_per_compiler_table(rows: list[BenchmarkRow],
                               compilers: tuple[str, ...] | None,
                               record: str, label: str, label_width: int,
                               reduce_fn, empty: str) -> str:
    """Shared scaffolding for the per-pass/per-counter report tables.

    ``record`` names the per-row dict attribute (``timings`` or
    ``cache_stats``); one line per key of that dict (first-seen order),
    one column per compiler, cells reduced by ``reduce_fn`` over the
    rows that recorded the key ('-' where none did).
    """
    if not rows:
        return "(no data)"
    if compilers is None:
        compilers = tuple(dict.fromkeys(r.compiler for r in rows))
    names = list(dict.fromkeys(
        name for r in rows for name in getattr(r, record)
    ))
    if not names:
        return empty
    header = f"{label:{label_width}s}" + "".join(f"{c:>12s}"
                                                for c in compilers)
    lines = [header]
    for name in names:
        cells = []
        for compiler in compilers:
            values = [getattr(r, record)[name] for r in rows
                      if r.compiler == compiler
                      and name in getattr(r, record)]
            cells.append(reduce_fn(values) if values else f"{'-':>12s}")
        lines.append(f"{name:{label_width}s}" + "".join(cells))
    return "\n".join(lines)


def format_pass_timings(rows: list[BenchmarkRow],
                        compilers: tuple[str, ...] | None = None) -> str:
    """Where compile time goes: mean per-pass seconds per compiler.

    One line per pipeline pass (in first-seen order), one column per
    compiler; compilers whose pipeline lacks a pass show '-'.  Timings
    are informational (wall time under whatever load the sweep ran
    with), so no mixed-sweep guard applies.  Means come from the same
    :func:`repro.analysis.engine.aggregate_pass_timings` fold the
    compile server's ``/metrics`` endpoint exports.
    """
    from repro.analysis.engine import mean_pass_timings

    if not rows:
        return "(no data)"
    if compilers is None:
        compilers = tuple(dict.fromkeys(r.compiler for r in rows))
    names = list(dict.fromkeys(name for r in rows for name in r.timings))
    if not names:
        return "(no pass timings recorded)"
    means = {compiler: mean_pass_timings(r.timings for r in rows
                                         if r.compiler == compiler)
             for compiler in compilers}
    header = f"{'pass':14s}" + "".join(f"{c:>12s}" for c in compilers)
    lines = [header]
    for name in names:
        cells = [(f"{means[compiler][name]:12.3f}"
                  if name in means[compiler] else f"{'-':>12s}")
                 for compiler in compilers]
        lines.append(f"{name:14s}" + "".join(cells))
    return "\n".join(lines)


def format_cache_stats(rows: list[BenchmarkRow],
                       compilers: tuple[str, ...] | None = None) -> str:
    """Cache effectiveness: per-compiler totals of each cache counter.

    One line per counter (decomposition memo and artifact cache
    hits/misses, in first-seen order), one column per compiler, summed
    over the rows that recorded the counter.  Informational, like the
    pass timings.
    """
    return _format_per_compiler_table(
        rows, compilers, "cache_stats", "counter", 18,
        lambda values: f"{sum(values):12d}",
        empty="(no cache counters recorded)",
    )
