"""Parallel, cache-aware sweep engine.

The serial harness loops over a :class:`SweepConfig` in one process; the
engine instead decomposes the sweep into independent
``(benchmark, size, instance, compiler)`` :class:`SweepTask` units, each
with a deterministic seed derived the same way as the serial loop, and
executes them across a :class:`concurrent.futures.ProcessPoolExecutor`.
Identical seeding means ``run_engine(config, jobs=N)`` returns rows with
the same metrics as the serial path for every ``N`` -- only the
``seconds`` wall-time column varies.

Fairness: every task compiles with its own :class:`DecomposeCache`
(parallel mode) or a per-compiler cache (serial mode), so no compiler's
reported runtime benefits from another compiler having pre-warmed the
decomposition cache.

With a :class:`~repro.analysis.store.ResultStore` attached, each row is
persisted the moment its task completes and already-stored tasks are
never recomputed, so interrupted sweeps resume and grid extensions only
pay for the new cells.

With an *artifact cache* attached (:class:`repro.cache.ArtifactCache`,
or a directory for one), every task's pipeline runs cache-aware: tasks
that share a stage prefix reuse each other's artifacts -- the same
problem instance compiled by several compilers shares its Unify
artifact, and the same compiler swept across gate sets shares
everything up to decomposition.  Metrics are bit-identical with or
without the cache; only wall time changes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.harness import (
    BenchmarkRow,
    SweepConfig,
    build_step,
    compile_with,
)
from repro.analysis.store import ResultStore, config_fingerprint
from repro.core.decompose import DecomposeCache
from repro.devices.topology import Device


def default_jobs() -> int:
    """Worker count used when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work, fully described by values."""

    benchmark: str
    gateset: str
    n_qubits: int
    instance: int
    compiler: str
    instance_seed: int
    compiler_seed: int
    qaoa_degree: int = 3

    @property
    def key(self) -> str:
        """Stable store key identifying this task within its config."""
        return (f"{self.benchmark}|{self.gateset}|n{self.n_qubits}"
                f"|i{self.instance}|{self.compiler}|s{self.instance_seed}"
                f"|c{self.compiler_seed}|d{self.qaoa_degree}")


def expand_tasks(config: SweepConfig) -> list[SweepTask]:
    """Decompose a sweep into tasks, seeded exactly like the serial loop.

    Compilers whose registry spec ignores the gate set (the idealised
    Paulihedral cost model) get ``gateset="n/a"`` in their task key and
    row, so their rows are never mislabelled with a basis they ignore
    and never recomputed per gate set.
    """
    from repro.core.registry import resolve_spec

    tasks: list[SweepTask] = []
    for n_qubits in config.sizes:
        for instance in range(config.instances):
            instance_seed = config.seed + 7919 * instance + n_qubits
            for compiler_name in config.compilers:
                spec = resolve_spec(compiler_name)
                tasks.append(SweepTask(
                    benchmark=config.benchmark,
                    gateset=(config.gateset if spec.uses_gateset
                             else "n/a"),
                    n_qubits=n_qubits,
                    instance=instance,
                    compiler=compiler_name,
                    instance_seed=instance_seed,
                    compiler_seed=config.seed + instance,
                    qaoa_degree=config.qaoa_degree,
                ))
    return tasks


def execute_task(task: SweepTask, device: Device,
                 cache: DecomposeCache | None = None,
                 artifacts=None,
                 artifact_dir: str | None = None) -> BenchmarkRow:
    """Build and compile one task; the process-pool worker entry point.

    ``artifacts`` is a live :class:`repro.cache.ArtifactCache` (serial
    mode); ``artifact_dir`` names a shared cache directory, resolved to
    this process's cache instance (pool mode -- the cache object itself
    never crosses the process boundary).
    """
    step = build_step(task.benchmark, task.n_qubits, task.instance_seed,
                      task.qaoa_degree)
    if cache is None:
        cache = DecomposeCache()
    if artifacts is None and artifact_dir is not None:
        from repro.cache.store import process_cache

        artifacts = process_cache(artifact_dir)
    from repro.synthesis.templates import DEFAULT_TEMPLATES

    hits_before, misses_before = cache.hits, cache.misses
    tpl_hits_before = DEFAULT_TEMPLATES.hits
    tpl_misses_before = DEFAULT_TEMPLATES.misses
    start = time.perf_counter()
    result = compile_with(task.compiler, step, device, task.gateset,
                          task.compiler_seed, cache, artifacts=artifacts)
    elapsed = time.perf_counter() - start
    cache_stats = {
        "decompose_hits": cache.hits - hits_before,
        "decompose_misses": cache.misses - misses_before,
        "template_hits": DEFAULT_TEMPLATES.hits - tpl_hits_before,
        "template_misses": DEFAULT_TEMPLATES.misses - tpl_misses_before,
    }
    if artifacts is not None:
        from repro.cache.cached import count_cache_hits

        artifact_hits = count_cache_hits(result.cache_events)
        cache_stats["artifact_hits"] = artifact_hits
        cache_stats["artifact_misses"] = (len(result.cache_events)
                                          - artifact_hits)
    metrics = result.metrics
    return BenchmarkRow(
        benchmark=task.benchmark,
        device=device.name,
        gateset=task.gateset,
        n_qubits=task.n_qubits,
        instance=task.instance,
        compiler=task.compiler,
        n_swaps=metrics.n_swaps,
        n_dressed=metrics.n_dressed,
        n_two_qubit_gates=metrics.n_two_qubit_gates,
        two_qubit_depth=metrics.two_qubit_depth,
        total_depth=metrics.total_depth,
        seconds=elapsed,
        timings=dict(result.timings),
        cache_stats=cache_stats,
    )


def aggregate_pass_timings(timings_dicts: Iterable[dict[str, float]],
                           into: dict[str, dict[str, float]] | None = None,
                           ) -> dict[str, dict[str, float]]:
    """Fold per-compile pass-timing dicts into per-pass aggregates.

    Returns ``{pass_name: {"count": n, "total_s": s}}`` in first-seen
    pass order.  This is the one aggregation path shared by the sweep
    report (``sweep --pass-timings`` means are ``total_s / count``) and
    the compile server's ``/metrics`` endpoint, which folds every served
    response into a running aggregate via ``into``.
    """
    aggregates = into if into is not None else {}
    for timings in timings_dicts:
        for name, seconds in timings.items():
            entry = aggregates.setdefault(name,
                                          {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += seconds
    return aggregates


def mean_pass_timings(timings_dicts: Iterable[dict[str, float]],
                      ) -> dict[str, float]:
    """Mean seconds per pass across many compiles (report tables)."""
    return {name: entry["total_s"] / entry["count"]
            for name, entry in aggregate_pass_timings(timings_dicts).items()}


def _edge_map(mapping: dict | None) -> list | None:
    if mapping is None:
        return None
    return sorted([a, b, value] for (a, b), value in mapping.items())


def config_key(config: SweepConfig, salt: str | None = None) -> str:
    """Fingerprint of the sweep *environment* (not the grid).

    Sizes, instance counts, compiler lists and the gate set are
    deliberately excluded: they are encoded per-task in
    :attr:`SweepTask.key`, so extending a grid -- or re-running with
    another gate set -- reuses every row already stored for the old
    cells (including gateset-free compilers, whose ``n/a``-labelled
    rows are shared across gate sets).  Per-edge calibration
    (errors/weights) *is* included: it changes routing and mapping, so
    differently-calibrated devices must not share rows.  ``salt`` lets
    callers fold extra state (e.g. a source-code digest) into the key.
    """
    device = config.device
    return config_fingerprint({
        "benchmark": config.benchmark,
        "device": {
            "name": device.name,
            "n_qubits": device.n_qubits,
            "edges": [list(edge) for edge in device.edges],
            "edge_errors": _edge_map(device.edge_errors),
            "edge_weights": _edge_map(device.edge_weights),
        },
        "seed": config.seed,
        "qaoa_degree": config.qaoa_degree,
        "salt": salt,
    })


def open_store(root: str | Path, config: SweepConfig,
               salt: str | None = None) -> ResultStore:
    """The store file for one sweep environment under a store directory."""
    return ResultStore(Path(root) / f"sweep-{config_key(config, salt)}.jsonl")


def run_engine(config: SweepConfig, jobs: int = 1,
               store: ResultStore | None = None,
               artifact_cache=None) -> list[BenchmarkRow]:
    """Run a sweep, in parallel when ``jobs > 1``, resuming from ``store``.

    Returns rows in the same deterministic (size, instance, compiler)
    order as the serial harness regardless of completion order.

    ``artifact_cache`` enables stage-artifact reuse across tasks: a
    :class:`repro.cache.ArtifactCache`, or a directory path for a
    disk-backed one.  A directory is nested under a source digest
    (:func:`repro.cache.store.salted_directory`) so artifacts never
    outlive the code that produced them; pass a constructed
    ``ArtifactCache`` to opt out.  In parallel mode only the disk layer
    is shared (workers each keep a memory layer over it); an
    in-memory-only cache therefore only helps serial sweeps.
    """
    artifacts = None
    artifact_dir = None
    if artifact_cache is not None:
        from repro.cache.store import ArtifactCache, salted_directory

        if not isinstance(artifact_cache, ArtifactCache):
            artifact_cache = ArtifactCache(salted_directory(artifact_cache))
        artifacts = artifact_cache
        if artifact_cache.directory is not None:
            artifact_dir = str(artifact_cache.directory)
    tasks = expand_tasks(config)
    results: dict[str, BenchmarkRow] = {}
    if store is not None:
        stored = store.load()
        for task in tasks:
            hit = stored.get(task.key)
            if hit is not None:
                results[task.key] = hit
    # dedupe by key: a config listing a compiler or size twice should
    # compute (and store) each unique task once; the returned row list
    # still mirrors the requested task order.
    seen: set[str] = set()
    pending = []
    for task in tasks:
        if task.key not in results and task.key not in seen:
            seen.add(task.key)
            pending.append(task)

    def record(task: SweepTask, row: BenchmarkRow) -> None:
        results[task.key] = row
        if store is not None:
            store.put(task.key, row)

    if pending and jobs > 1:
        failure: BaseException | None = None
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(execute_task, task, config.device,
                                   artifact_dir=artifact_dir): task
                       for task in pending}
            # drain every future even after a failure so rows that did
            # complete are recorded (and stored) before the error surfaces;
            # a resume then only recomputes the genuinely missing tasks.
            for future in as_completed(futures):
                try:
                    row = future.result()
                except BaseException as exc:
                    if failure is None:
                        failure = exc
                    continue
                record(futures[future], row)
        if failure is not None:
            raise failure
    elif pending:
        caches: dict[str, DecomposeCache] = {}
        for task in pending:
            cache = caches.setdefault(task.compiler, DecomposeCache())
            record(task, execute_task(task, config.device, cache,
                                      artifacts=artifacts))
    return [results[task.key] for task in tasks]


def parallel_map(fn: Callable, items: Iterable, jobs: int = 1) -> list:
    """Order-preserving map over a process pool (serial when jobs <= 1).

    ``fn`` and every item must be picklable; used by the runtime-scaling
    benchmark to fan independent measurements out across cores.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))
