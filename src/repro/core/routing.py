"""Permutation-aware qubit routing (paper Algorithm 1) + SWAP dressing.

Unlike order-respecting routers, any two-qubit operator that is nearest
neighbour (NN) in *any* intermediate qubit map may execute there, so the
router only has to bring every interaction pair adjacent once.  The
procedure:

1. all operators NN in the initial map are assigned to map ``phi_0``;
2. while un-routed operators remain: pick the one with the smallest
   current hardware distance; enumerate the SWAPs on the hardware edges
   incident to its two qubits; score each by the paper's prioritised
   criteria (remaining Equation-7 cost, depth increase, dressability);
   commit the best SWAP, update the map, and absorb every operator that
   became NN.

Dressing (Section III-C): each committed SWAP tries to absorb a routed
operator whose logical pair sits exactly on the SWAP's physical edge;
the fused gate costs no more hardware gates than the bare operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep, TwoQubitOperator


@dataclass
class QubitMap:
    """Bidirectional logical <-> physical qubit assignment."""

    logical_to_physical: dict[int, int]

    @classmethod
    def from_assignment(cls, assignment: np.ndarray) -> "QubitMap":
        return cls({i: int(p) for i, p in enumerate(assignment)})

    def physical(self, logical: int) -> int:
        return self.logical_to_physical[logical]

    def logical(self, physical: int) -> int | None:
        for lq, pq in self.logical_to_physical.items():
            if pq == physical:
                return lq
        return None

    def inverse(self) -> dict[int, int]:
        return {p: lq for lq, p in self.logical_to_physical.items()}

    def after_swap(self, physical_pair: tuple[int, int]) -> "QubitMap":
        """The map after exchanging two physical qubits' contents."""
        p, q = physical_pair
        updated = dict(self.logical_to_physical)
        inverse = self.inverse()
        lp, lq = inverse.get(p), inverse.get(q)
        if lp is not None:
            updated[lp] = q
        if lq is not None:
            updated[lq] = p
        return QubitMap(updated)

    def copy(self) -> "QubitMap":
        return QubitMap(dict(self.logical_to_physical))


@dataclass
class RoutedSwap:
    """A SWAP committed by the router, possibly dressed."""

    physical_pair: tuple[int, int]
    map_index: int                      # executes after the gates of this map
    dressed_with: TwoQubitOperator | None = None

    @property
    def is_dressed(self) -> bool:
        return self.dressed_with is not None


@dataclass
class RoutedGate:
    """A circuit operator with its routing assignment."""

    operator: TwoQubitOperator
    map_index: int                      # first map in which it was NN
    physical_pair: tuple[int, int]      # (phys of logical min, phys of max)


@dataclass
class RoutedProblem:
    """Output of Algorithm 1: maps, per-map NN gates and SWAPs."""

    device: Device
    maps: list[QubitMap]
    gates: list[RoutedGate]
    swaps: list[RoutedSwap]
    step: TrotterStep

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)

    @property
    def n_dressed(self) -> int:
        return sum(1 for s in self.swaps if s.is_dressed)

    def gates_of_map(self, index: int) -> list[RoutedGate]:
        return [g for g in self.gates if g.map_index == index]

    @property
    def final_map(self) -> QubitMap:
        return self.maps[-1]


def _distance(device: Device, qmap: QubitMap, op: TwoQubitOperator) -> float:
    u, v = op.pair
    return float(device.distance[qmap.physical(u), qmap.physical(v)])


def _remaining_cost(device: Device, qmap: QubitMap,
                    unrouted: list[TwoQubitOperator]) -> float:
    """Criterion 1: Equation-7 cost of the still-unrouted operators."""
    dist = device.distance
    total = 0.0
    for op in unrouted:
        u, v = op.pair
        total += dist[qmap.physical(u), qmap.physical(v)]
    return total


def route(step: TrotterStep, device: Device, initial: np.ndarray,
          seed: int = 0, *, dress: bool = True,
          criteria: tuple[str, ...] = ("count", "depth", "dress"),
          ) -> RoutedProblem:
    """Permutation-aware routing (Algorithm 1).

    Parameters
    ----------
    step:
        The (usually pair-unified) Trotter step to route.
    device:
        Target topology.
    initial:
        Initial logical -> physical assignment (from the QAP pass).
    dress:
        Enable SWAP unitary unifying (disable for the ablation study).
    criteria:
        Priority order of the SWAP-selection criteria; the paper's
        configuration is ``("count", "depth", "dress")``.
    """
    rng = np.random.default_rng(seed)
    qmap = QubitMap.from_assignment(initial)
    maps = [qmap.copy()]
    gates: list[RoutedGate] = []
    swaps: list[RoutedSwap] = []

    unrouted = list(step.two_qubit_ops)
    # Track per-physical-qubit load for the depth criterion: number of
    # operations already routed onto that qubit (a cheap proxy for the
    # earliest cycle at which a new gate on it could start).
    busy = np.zeros(device.n_qubits)

    def absorb_nn(map_index: int) -> None:
        still: list[TwoQubitOperator] = []
        for op in unrouted:
            u, v = op.pair
            pu, pv = qmap.physical(u), qmap.physical(v)
            if device.are_neighbors(pu, pv):
                gates.append(RoutedGate(op, map_index, (pu, pv)))
                start = max(busy[pu], busy[pv]) + 1
                busy[pu] = busy[pv] = start
            else:
                still.append(op)
        unrouted[:] = still

    absorb_nn(0)

    # Operators whose logical pair may still absorb a SWAP (dressing):
    # every routed gate is a candidate until used.
    dressed_ops: set[int] = set()       # ids of absorbed operators

    max_swaps = 20 * (device.diameter + 1) * max(1, len(unrouted) + 1)
    stall = 0
    stall_limit = device.diameter + 2
    while unrouted:
        if len(swaps) > max_swaps:
            raise RuntimeError("router failed to converge (cycling?)")
        before = len(unrouted)
        target = min(unrouted, key=lambda op: (_distance(device, qmap, op),
                                               op.pair))
        if stall > stall_limit:
            # The heuristic is thrashing on cost-flat moves; escape by
            # walking the target's endpoints together along a shortest
            # path (guaranteed to absorb at least the target gate).
            best = _greedy_step_toward(device, qmap, target)
        else:
            candidates = _candidate_swaps(device, qmap, target)
            best = _select_swap(
                candidates, device, qmap, target, unrouted, busy, gates,
                dressed_ops, criteria, rng, dress,
            )
        map_index = len(maps) - 1
        swap = RoutedSwap(best, map_index)
        if dress:
            absorbed = _find_dressable(best, qmap, gates, dressed_ops)
            if absorbed is not None:
                swap.dressed_with = absorbed.operator
                dressed_ops.add(id(absorbed.operator))
                gates.remove(absorbed)
        swaps.append(swap)
        start = max(busy[best[0]], busy[best[1]]) + 1
        busy[best[0]] = busy[best[1]] = start
        qmap = qmap.after_swap(best)
        maps.append(qmap.copy())
        absorb_nn(len(maps) - 1)
        stall = stall + 1 if len(unrouted) == before else 0

    return RoutedProblem(device, maps, gates, swaps, step)


def _greedy_step_toward(device: Device, qmap: QubitMap,
                        target: TwoQubitOperator) -> tuple[int, int]:
    """The SWAP moving one endpoint of ``target`` one hop closer."""
    u, v = target.pair
    pu, pv = qmap.physical(u), qmap.physical(v)
    dist = device.distance
    best_edge, best_distance = None, np.inf
    for anchor, moving in ((pv, pu), (pu, pv)):
        for neighbour in device.neighbors(moving):
            if dist[neighbour, anchor] < best_distance:
                best_distance = dist[neighbour, anchor]
                best_edge = (min(moving, neighbour), max(moving, neighbour))
    assert best_edge is not None
    return best_edge


def _candidate_swaps(device: Device, qmap: QubitMap,
                     target: TwoQubitOperator) -> list[tuple[int, int]]:
    """All hardware edges incident to either qubit of the target gate."""
    u, v = target.pair
    seen: set[tuple[int, int]] = set()
    for physical in (qmap.physical(u), qmap.physical(v)):
        for neighbour in device.neighbors(physical):
            edge = (min(physical, neighbour), max(physical, neighbour))
            seen.add(edge)
    return sorted(seen)


def _select_swap(candidates, device, qmap, target, unrouted, busy, gates,
                 dressed_ops, criteria, rng, dress_enabled):
    """Prioritised lexicographic scoring of candidate SWAPs.

    After the configured criteria, the new distance of the target gate is
    used as a progress bias (prevents plateau cycling), then remaining
    ties break randomly as in the paper.
    """
    scored = []
    for edge in candidates:
        trial_map = qmap.after_swap(edge)
        scores = []
        for criterion in criteria:
            if criterion == "count":
                scores.append(_remaining_cost(device, trial_map, unrouted))
            elif criterion == "depth":
                scores.append(float(max(busy[edge[0]], busy[edge[1]])))
            elif criterion == "dress":
                if not dress_enabled:
                    scores.append(0.0)
                else:
                    dressable = _find_dressable(edge, qmap, gates, dressed_ops)
                    scores.append(0.0 if dressable is not None else 1.0)
            elif criterion == "error":
                # noise-aware extension (paper Section VII): prefer SWAPs
                # on low-error hardware edges
                scores.append(device.edge_error(*edge))
            else:
                raise ValueError(f"unknown criterion {criterion!r}")
        scores.append(_distance(device, trial_map, target))
        scored.append((tuple(scores), edge))
    best_score = min(s for s, _ in scored)
    ties = [edge for s, edge in scored if s == best_score]
    if len(ties) == 1:
        return ties[0]
    return ties[int(rng.integers(len(ties)))]


def _find_dressable(edge: tuple[int, int], qmap: QubitMap,
                    gates: list[RoutedGate], dressed_ops: set[int],
                    ) -> RoutedGate | None:
    """A routed, not-yet-absorbed operator whose logical pair currently
    sits exactly on this physical edge."""
    inverse = qmap.inverse()
    lp, lq = inverse.get(edge[0]), inverse.get(edge[1])
    if lp is None or lq is None:
        return None
    pair = (min(lp, lq), max(lp, lq))
    for gate in gates:
        if gate.operator.pair == pair and id(gate.operator) not in dressed_ops:
            return gate
    return None
