"""Permutation-aware qubit routing (paper Algorithm 1) + SWAP dressing.

Unlike order-respecting routers, any two-qubit operator that is nearest
neighbour (NN) in *any* intermediate qubit map may execute there, so the
router only has to bring every interaction pair adjacent once.  The
procedure:

1. all operators NN in the initial map are assigned to map ``phi_0``;
2. while un-routed operators remain: pick the one with the smallest
   current hardware distance; enumerate the SWAPs on the hardware edges
   incident to its two qubits; score each by the paper's prioritised
   criteria (remaining Equation-7 cost, depth increase, dressability);
   commit the best SWAP, update the map, and absorb every operator that
   became NN.

Dressing (Section III-C): each committed SWAP tries to absorb a routed
operator whose logical pair sits exactly on the SWAP's physical edge;
the fused gate costs no more hardware gates than the bare operator.

Candidate scoring runs on one of two engines (see :func:`route`):

* ``"incremental"`` -- the default.  A per-logical index of the
  still-unrouted operators (:class:`_CostIndex`) turns the Equation-7
  rescan into an O(deg) delta per candidate SWAP: only the operators
  touching the two moved logicals can change distance, so the
  candidate's remaining cost is the retained running total plus their
  distance deltas.  The index works on the device's *scaled-integer*
  distance rows (:attr:`repro.devices.topology.Device.
  scaled_integer_distances`): hop counts scale by 1, and
  ``edge_weights``-weighted devices scale by the power-of-two common
  denominator of their weights, so the delta-updated total is exact
  integer arithmetic on both -- no ulp drift, same tie-breaks, same
  RNG draws as a full rescan in the same domain.  Dressing lookups use
  a pair-keyed FIFO (:class:`_DressIndex`) instead of a linear scan
  over the routed gates.
* ``"reference"`` -- the retained scalar implementation
  (:func:`_remaining_cost` rescans, :func:`_find_dressable` list
  scans), kept as the property-test oracle
  (``tests/core/test_router_delta.py``).  It also remains the engine
  of record for the rare weighted device whose float distance matrix
  cannot be reproduced exactly by scaled integers (pathological weight
  denominators); ``"auto"`` falls back to it only there.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep, TwoQubitOperator


class QubitMap:
    """Bidirectional logical <-> physical qubit assignment.

    Array-backed: ``_l2p[l]`` is the physical qubit holding logical
    ``l`` and ``_p2l[p]`` the logical occupying physical ``p`` (``-1``
    when empty/unmapped), so :meth:`physical` / :meth:`logical` are O(1)
    array reads and :meth:`after_swap` copies two flat integer arrays
    and touches two entries -- no dict rebuild, no inverse scan.  The
    dict view :attr:`logical_to_physical` is built on demand for
    compatibility (verification, fingerprinting, tests).
    """

    __slots__ = ("_l2p", "_p2l")

    def __init__(self, logical_to_physical: dict[int, int] | None = None):
        mapping = logical_to_physical if logical_to_physical else {}
        l2p = np.full(max(mapping, default=-1) + 1, -1, dtype=np.intp)
        p2l = np.full(max(mapping.values(), default=-1) + 1, -1,
                      dtype=np.intp)
        for lq, pq in mapping.items():
            l2p[lq] = pq
            p2l[pq] = lq
        self._l2p = l2p
        self._p2l = p2l

    @classmethod
    def _from_arrays(cls, l2p: np.ndarray, p2l: np.ndarray) -> "QubitMap":
        obj = cls.__new__(cls)
        obj._l2p = l2p
        obj._p2l = p2l
        return obj

    @classmethod
    def from_assignment(cls, assignment: np.ndarray,
                        n_physical: int | None = None) -> "QubitMap":
        """Map logical ``i`` to ``assignment[i]``.

        ``n_physical`` sizes the physical->logical array up front (the
        router passes the device size so spare-qubit SWAPs never need to
        grow it); it defaults to the largest assigned index + 1.
        """
        l2p = np.array(assignment, dtype=np.intp)
        size = int(l2p.max()) + 1 if l2p.size else 0
        if n_physical is not None:
            size = max(size, n_physical)
        p2l = np.full(size, -1, dtype=np.intp)
        p2l[l2p] = np.arange(len(l2p), dtype=np.intp)
        return cls._from_arrays(l2p, p2l)

    @property
    def logical_to_physical(self) -> dict[int, int]:
        return {i: int(p) for i, p in enumerate(self._l2p) if p >= 0}

    def physical(self, logical: int) -> int:
        l2p = self._l2p
        if not 0 <= logical < len(l2p) or l2p[logical] < 0:
            raise KeyError(logical)
        return int(l2p[logical])

    def logical(self, physical: int) -> int | None:
        p2l = self._p2l
        if not 0 <= physical < len(p2l):
            return None
        lq = p2l[physical]
        return int(lq) if lq >= 0 else None

    def inverse(self) -> dict[int, int]:
        return {int(p): i for i, p in enumerate(self._l2p) if p >= 0}

    def after_swap(self, physical_pair: tuple[int, int]) -> "QubitMap":
        """The map after exchanging two physical qubits' contents."""
        p, q = physical_pair
        p2l = self._p2l
        if max(p, q) >= len(p2l):
            grown = np.full(max(p, q) + 1, -1, dtype=np.intp)
            grown[: len(p2l)] = p2l
            p2l = grown
        else:
            p2l = p2l.copy()
        l2p = self._l2p.copy()
        lp, lq = p2l[p], p2l[q]
        p2l[p], p2l[q] = lq, lp
        if lp >= 0:
            l2p[lp] = q
        if lq >= 0:
            l2p[lq] = p
        return QubitMap._from_arrays(l2p, p2l)

    def copy(self) -> "QubitMap":
        return QubitMap._from_arrays(self._l2p.copy(), self._p2l.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QubitMap):
            return NotImplemented
        return self.logical_to_physical == other.logical_to_physical

    def __repr__(self) -> str:
        return f"QubitMap({self.logical_to_physical!r})"


@dataclass
class RoutedSwap:
    """A SWAP committed by the router, possibly dressed."""

    physical_pair: tuple[int, int]
    map_index: int                      # executes after the gates of this map
    dressed_with: TwoQubitOperator | None = None

    @property
    def is_dressed(self) -> bool:
        return self.dressed_with is not None


@dataclass
class RoutedGate:
    """A circuit operator with its routing assignment."""

    operator: TwoQubitOperator
    map_index: int                      # first map in which it was NN
    physical_pair: tuple[int, int]      # (phys of logical min, phys of max)


@dataclass
class RoutedProblem:
    """Output of Algorithm 1: maps, per-map NN gates and SWAPs."""

    device: Device
    maps: list[QubitMap]
    gates: list[RoutedGate]
    swaps: list[RoutedSwap]
    step: TrotterStep

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)

    @property
    def n_dressed(self) -> int:
        return sum(1 for s in self.swaps if s.is_dressed)

    def gates_of_map(self, index: int) -> list[RoutedGate]:
        return [g for g in self.gates if g.map_index == index]

    @property
    def final_map(self) -> QubitMap:
        return self.maps[-1]


def _distance(device: Device, qmap: QubitMap, op: TwoQubitOperator) -> float:
    u, v = op.pair
    return float(device.distance[qmap.physical(u), qmap.physical(v)])


def _remaining_cost(device: Device, qmap: QubitMap,
                    unrouted: list[TwoQubitOperator]) -> float:
    """Criterion 1: Equation-7 cost of the still-unrouted operators.

    Retained scalar reference: the incremental engine's
    :meth:`_CostIndex.candidate_cost` is property-pinned ``==`` against
    this full rescan (``tests/core/test_router_delta.py``).
    """
    dist = device.distance
    total = 0.0
    for op in unrouted:
        u, v = op.pair
        total += dist[qmap.physical(u), qmap.physical(v)]
    return total


class _MapMirror:
    """Plain-Python-list mirror of the current qubit map.

    The scoring loops run per candidate per swap; Python-list reads are
    several times cheaper than numpy scalar indexing at that grain, so
    the incremental indices keep list mirrors of ``l2p``/``p2l`` and
    :func:`route` advances them alongside the authoritative
    :class:`QubitMap` (one :meth:`apply_swap` per committed SWAP).
    """

    __slots__ = ("l2p", "p2l")

    def __init__(self, qmap: QubitMap):
        self.l2p: list[int] = qmap._l2p.tolist()
        self.p2l: list[int] = qmap._p2l.tolist()

    def apply_swap(self, edge: tuple[int, int]) -> None:
        a, b = edge
        p2l = self.p2l
        la, lb = p2l[a], p2l[b]
        p2l[a], p2l[b] = lb, la
        if la >= 0:
            self.l2p[la] = b
        if lb >= 0:
            self.l2p[lb] = a


class _CostIndex:
    """Per-logical index of unrouted operators + retained Equation-7 total.

    ``candidate_cost(edge)`` returns the Equation-7 cost of the
    still-unrouted operators under ``qmap.after_swap(edge)``: a
    candidate SWAP moves two logicals, so only the operators incident
    to them change distance -- an O(deg) delta on the running total
    instead of an O(|unrouted|) rescan.  The rows are the device's
    scaled-integer distances, so every term -- and therefore the
    delta-updated total -- is exact integer arithmetic on hop-count
    *and* weighted devices alike; the total carries the same value a
    full rescan in the same rows would and cannot flip a tie-break.
    Scaling by a positive constant is order- and tie-preserving, so on
    devices whose float sums are themselves exact (hop counts, dyadic
    weights of moderate size) the selected SWAPs match the float
    reference engine's exactly.
    """

    def __init__(self, device: Device, qmap: QubitMap,
                 unrouted: list[TwoQubitOperator], mirror: _MapMirror):
        self.mirror = mirror
        scaled = device.scaled_integer_distances
        if scaled is None:
            raise ValueError(
                f"device {device.name!r} admits no exact scaled-integer "
                f"distance representation; route with engine='reference'"
            )
        self.rows: list[list[int]] = scaled[0]
        self.scale: int = scaled[1]
        # per-logical multiset of opposite endpoints of unrouted operators
        self._others: dict[int, list[int]] = defaultdict(list)
        l2p = mirror.l2p
        total = 0
        for op in unrouted:
            u, v = op.qubits
            self._others[u].append(v)
            self._others[v].append(u)
            total += self.rows[l2p[u]][l2p[v]]
        self.total = total

    def candidate_cost(self, edge: tuple[int, int]) -> int:
        """Remaining cost if the contents of ``edge`` were exchanged."""
        a, b = edge
        l2p = self.mirror.l2p
        p2l = self.mirror.p2l
        la = p2l[a]
        lb = p2l[b]
        dist_a = self.rows[a]
        dist_b = self.rows[b]
        others = self._others
        delta = 0
        if la >= 0:
            for other in others.get(la, ()):
                if other == lb:        # both endpoints move: distance is
                    continue           # symmetric, the term is unchanged
                po = l2p[other]
                delta += dist_b[po] - dist_a[po]
        if lb >= 0:
            for other in others.get(lb, ()):
                if other == la:
                    continue
                po = l2p[other]
                delta += dist_a[po] - dist_b[po]
        return self.total + delta

    def commit(self, edge: tuple[int, int]) -> None:
        """Fold a committed SWAP into the running total (pre-swap map)."""
        self.total = self.candidate_cost(edge)

    def discard(self, op: TwoQubitOperator, pu: int, pv: int) -> None:
        """Drop a now-routed operator (at physicals ``pu``/``pv``)."""
        u, v = op.qubits
        self._others[u].remove(v)      # entries are plain endpoints, so
        self._others[v].remove(u)      # any equal occurrence is the op's
        self.total -= self.rows[pu][pv]


class _DressIndex:
    """Pair-keyed FIFO of routed, not-yet-absorbed gates.

    Replaces the linear :func:`_find_dressable` scan over every routed
    gate: gates are appended in routing order, so the head of a pair's
    queue is exactly the first list-order match the scan would return.
    """

    def __init__(self, mirror: _MapMirror) -> None:
        self._mirror = mirror
        self._by_pair: dict[tuple[int, int], deque[RoutedGate]] = {}

    def add(self, gate: RoutedGate) -> None:
        self._by_pair.setdefault(gate.operator.pair, deque()).append(gate)

    def peek(self, edge: tuple[int, int]) -> RoutedGate | None:
        """The gate a SWAP on ``edge`` could absorb in the current map."""
        p2l = self._mirror.p2l
        lp = p2l[edge[0]]
        lq = p2l[edge[1]]
        if lp < 0 or lq < 0:
            return None
        queue = self._by_pair.get((lp, lq) if lp < lq else (lq, lp))
        return queue[0] if queue else None

    def absorb(self, gate: RoutedGate) -> None:
        queue = self._by_pair[gate.operator.pair]
        assert queue[0] is gate
        queue.popleft()


_KNOWN_CRITERIA = ("count", "depth", "dress", "error")


def _validate_criteria(criteria: tuple[str, ...], device: Device) -> None:
    for criterion in criteria:
        if criterion not in _KNOWN_CRITERIA:
            raise ValueError(f"unknown criterion {criterion!r}")
    if "error" in criteria and not device.edge_errors:
        raise ValueError(
            f"criteria include 'error' but device {device.name!r} carries "
            f"no edge-error data: Device.edge_error would score every edge "
            f"0.0 and the criterion would silently be a no-op.  Attach "
            f"edge_errors (e.g. repro.noise.device_noise."
            f"with_random_edge_errors) or drop the criterion."
        )


def _resolve_engine(engine: str, device: Device) -> bool:
    """True when the incremental engine should run."""
    if engine == "auto":
        # The incremental engine runs wherever the distance matrix has
        # an exact scaled-integer representation -- all hop-count
        # devices and every weighted device whose float matrix the
        # scaled integers reproduce bit-for-bit.  Only a pathological
        # weight set (scale beyond the cap, or float path sums that
        # round) keeps the scalar reference engine.
        return device.scaled_integer_distances is not None
    if engine == "incremental":
        return True
    if engine == "reference":
        return False
    raise ValueError(f"unknown routing engine {engine!r}; "
                     f"expected 'auto', 'incremental' or 'reference'")


def route(step: TrotterStep, device: Device, initial: np.ndarray,
          seed: int = 0, *, dress: bool = True,
          criteria: tuple[str, ...] = ("count", "depth", "dress"),
          engine: str = "auto") -> RoutedProblem:
    """Permutation-aware routing (Algorithm 1).

    Parameters
    ----------
    step:
        The (usually pair-unified) Trotter step to route.
    device:
        Target topology.
    initial:
        Initial logical -> physical assignment (from the QAP pass).
    dress:
        Enable SWAP unitary unifying (disable for the ablation study).
    criteria:
        Priority order of the SWAP-selection criteria; the paper's
        configuration is ``("count", "depth", "dress")``.  ``"error"``
        requires the device to carry ``edge_errors`` (it is a silent
        no-op otherwise, so that configuration is rejected).
    engine:
        ``"auto"`` (default) scores candidates incrementally -- on
        hop-count devices and on ``edge_weights``-weighted devices
        alike, via the exact scaled-integer distance rows -- and falls
        back to the scalar rescan only when no exact integer
        representation exists; ``"incremental"`` / ``"reference"``
        force one path (the perf smoke and the property tests pin the
        two bit-identical).
    """
    _validate_criteria(criteria, device)
    incremental = _resolve_engine(engine, device)
    rng = np.random.default_rng(seed)
    qmap = QubitMap.from_assignment(initial, n_physical=device.n_qubits)
    maps = [qmap]
    gates: list[RoutedGate] = []
    swaps: list[RoutedSwap] = []

    unrouted = list(step.two_qubit_ops)
    # Logical pairs of the unrouted operators, kept parallel to
    # ``unrouted`` so NN absorption and target selection are one
    # fancy-indexed numpy read per sweep instead of per-operator Python.
    pairs = np.array([op.pair for op in unrouted],
                     dtype=np.intp).reshape(-1, 2)
    adjacency = device.adjacency_matrix
    distmat = device.distance
    # Track per-physical-qubit load for the depth criterion: number of
    # operations already routed onto that qubit (a cheap proxy for the
    # earliest cycle at which a new gate on it could start).
    busy = [0.0] * device.n_qubits

    cost_index: _CostIndex | None = None
    mirror = _MapMirror(qmap) if incremental else None
    dress_index = _DressIndex(mirror) if incremental else None
    # Reference engine: ids of absorbed operators (skipped by the list
    # scan).  Incremental engine: ids of absorbed *gates*, filtered out
    # of ``gates`` once at the end instead of O(n) list removals.
    dressed_ops: set[int] = set()
    absorbed_gate_ids: set[int] = set()

    def absorb_nn(map_index: int) -> None:
        nonlocal unrouted, pairs
        if not unrouted:
            return
        l2p = qmap._l2p
        pu = l2p[pairs[:, 0]]
        pv = l2p[pairs[:, 1]]
        nn = adjacency[pu, pv]
        if not nn.any():
            return
        for idx in np.flatnonzero(nn):
            op = unrouted[idx]
            a, b = int(pu[idx]), int(pv[idx])
            gate = RoutedGate(op, map_index, (a, b))
            gates.append(gate)
            if dress_index is not None:
                dress_index.add(gate)
            if cost_index is not None:
                cost_index.discard(op, a, b)
            start = max(busy[a], busy[b]) + 1
            busy[a] = busy[b] = start
        keep = ~nn
        unrouted = [op for op, kept in zip(unrouted, keep) if kept]
        pairs = pairs[keep]

    absorb_nn(0)
    if incremental:
        cost_index = _CostIndex(device, qmap, unrouted, mirror)

    max_swaps = 20 * (device.diameter + 1) * max(1, len(unrouted) + 1)
    stall = 0
    stall_limit = device.diameter + 2
    while unrouted:
        if len(swaps) > max_swaps:
            raise RuntimeError("router failed to converge (cycling?)")
        before = len(unrouted)
        # Smallest current hardware distance, ties by logical pair --
        # the same (distance, pair) minimum the old per-operator
        # ``min(unrouted, key=...)`` scan produced.
        l2p = qmap._l2p
        dists = distmat[l2p[pairs[:, 0]], l2p[pairs[:, 1]]]
        ties = np.flatnonzero(dists == dists.min())
        if len(ties) > 1:
            ties = ties[np.lexsort((pairs[ties, 1], pairs[ties, 0]))]
        target = unrouted[int(ties[0])]
        if stall > stall_limit:
            # The heuristic is thrashing on cost-flat moves; escape by
            # walking the target's endpoints together along a shortest
            # path (guaranteed to absorb at least the target gate).
            best = _greedy_step_toward(device, qmap, target)
        else:
            candidates = _candidate_swaps(device, qmap, target)
            best = _select_swap(
                candidates, device, qmap, target, unrouted, busy, gates,
                dressed_ops, criteria, rng, dress,
                cost_index=cost_index, dress_index=dress_index,
            )
        map_index = len(maps) - 1
        swap = RoutedSwap(best, map_index)
        if cost_index is not None:
            cost_index.commit(best)
        if dress:
            if dress_index is not None:
                absorbed = dress_index.peek(best)
                if absorbed is not None:
                    swap.dressed_with = absorbed.operator
                    dress_index.absorb(absorbed)
                    absorbed_gate_ids.add(id(absorbed))
            else:
                absorbed = _find_dressable(best, qmap, gates, dressed_ops)
                if absorbed is not None:
                    swap.dressed_with = absorbed.operator
                    dressed_ops.add(id(absorbed.operator))
                    gates.remove(absorbed)
        swaps.append(swap)
        start = max(busy[best[0]], busy[best[1]]) + 1
        busy[best[0]] = busy[best[1]] = start
        qmap = qmap.after_swap(best)
        if mirror is not None:
            mirror.apply_swap(best)
        maps.append(qmap)
        absorb_nn(len(maps) - 1)
        stall = stall + 1 if len(unrouted) == before else 0

    if absorbed_gate_ids:
        gates = [g for g in gates if id(g) not in absorbed_gate_ids]
    return RoutedProblem(device, maps, gates, swaps, step)


def _greedy_step_toward(device: Device, qmap: QubitMap,
                        target: TwoQubitOperator) -> tuple[int, int]:
    """The SWAP moving one endpoint of ``target`` one hop closer."""
    u, v = target.pair
    pu, pv = qmap.physical(u), qmap.physical(v)
    dist = device.distance
    best_edge, best_distance = None, np.inf
    for anchor, moving in ((pv, pu), (pu, pv)):
        for neighbour in device.neighbors(moving):
            if dist[neighbour, anchor] < best_distance:
                best_distance = dist[neighbour, anchor]
                best_edge = (min(moving, neighbour), max(moving, neighbour))
    assert best_edge is not None
    return best_edge


def _candidate_swaps(device: Device, qmap: QubitMap,
                     target: TwoQubitOperator) -> list[tuple[int, int]]:
    """All hardware edges incident to either qubit of the target gate."""
    u, v = target.pair
    seen: set[tuple[int, int]] = set()
    for physical in (qmap.physical(u), qmap.physical(v)):
        for neighbour in device.neighbors(physical):
            edge = (min(physical, neighbour), max(physical, neighbour))
            seen.add(edge)
    return sorted(seen)


def _select_swap(candidates, device, qmap, target, unrouted, busy, gates,
                 dressed_ops, criteria, rng, dress_enabled, *,
                 cost_index=None, dress_index=None):
    """Prioritised lexicographic scoring of candidate SWAPs.

    After the configured criteria, the new distance of the target gate is
    used as a progress bias (prevents plateau cycling), then remaining
    ties break randomly as in the paper.  With ``cost_index`` /
    ``dress_index`` the "count" and "dress" criteria are answered from
    the incremental indices; otherwise each candidate materialises a
    trial map and rescans (the retained reference path).
    """
    scored = []
    for edge in candidates:
        trial_map = qmap.after_swap(edge) if cost_index is None else None
        scores = []
        for criterion in criteria:
            if criterion == "count":
                if cost_index is not None:
                    scores.append(cost_index.candidate_cost(edge))
                else:
                    scores.append(_remaining_cost(device, trial_map, unrouted))
            elif criterion == "depth":
                scores.append(float(max(busy[edge[0]], busy[edge[1]])))
            elif criterion == "dress":
                if not dress_enabled:
                    scores.append(0.0)
                elif dress_index is not None:
                    dressable = dress_index.peek(edge)
                    scores.append(0.0 if dressable is not None else 1.0)
                else:
                    dressable = _find_dressable(edge, qmap, gates, dressed_ops)
                    scores.append(0.0 if dressable is not None else 1.0)
            elif criterion == "error":
                # noise-aware extension (paper Section VII): prefer SWAPs
                # on low-error hardware edges
                scores.append(device.edge_error(*edge))
            else:
                raise ValueError(f"unknown criterion {criterion!r}")
        if trial_map is not None:
            scores.append(_distance(device, trial_map, target))
        else:
            # the target's distance after the candidate swap, read off
            # the mirror: the scaled-integer image of the matrix entry
            # _distance would read on the trial map -- scaling is
            # order- and tie-preserving, so selection is unchanged
            l2p = cost_index.mirror.l2p
            u, v = target.qubits
            pu, pv = l2p[u], l2p[v]
            a, b = edge
            if pu == a:
                pu = b
            elif pu == b:
                pu = a
            if pv == a:
                pv = b
            elif pv == b:
                pv = a
            scores.append(cost_index.rows[pu][pv])
        scored.append((tuple(scores), edge))
    best_score = min(s for s, _ in scored)
    ties = [edge for s, edge in scored if s == best_score]
    if len(ties) == 1:
        return ties[0]
    return ties[int(rng.integers(len(ties)))]


def _find_dressable(edge: tuple[int, int], qmap: QubitMap,
                    gates: list[RoutedGate], dressed_ops: set[int],
                    ) -> RoutedGate | None:
    """A routed, not-yet-absorbed operator whose logical pair currently
    sits exactly on this physical edge.

    Retained linear-scan reference for :class:`_DressIndex` (the
    reference engine runs on it; the property tests pin the engines'
    routed problems identical).
    """
    lp, lq = qmap.logical(edge[0]), qmap.logical(edge[1])
    if lp is None or lq is None:
        return None
    pair = (min(lp, lq), max(lp, lq))
    for gate in gates:
        if gate.operator.pair == pair and id(gate.operator) not in dressed_ops:
            return gate
    return None
