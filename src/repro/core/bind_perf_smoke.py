"""Bind perf smoke: structural compile once + N binds vs N cold compiles.

Run as ``python -m repro.core.bind_perf_smoke``.  Compiles the structure
of a fixed n = 20 QAOA instance on sycamore once, binds ``N_BINDINGS``
angle sets through the retained pipeline suffix, and times the same
angle sets served as from-scratch compiles of the concrete circuits.
The warm path must be at least ``MIN_RATIO`` times faster in aggregate.
The check is *relative* (both sides run in the same process on the same
machine), so it is robust to slow CI runners; it also re-asserts every
bound circuit is bit-identical to its cold-compiled twin, because a
fast wrong bind is worse than a slow right one.
"""

from __future__ import annotations

import sys
import time

MIN_RATIO = 5.0
N_QUBITS = 20
N_BINDINGS = 20
BENCHMARK = "QAOA-REG-3"


def angle_sets(n: int = N_BINDINGS) -> list[dict[str, float]]:
    """``n`` deterministic (gamma, beta) bindings on a fixed grid."""
    return [{"gamma": 0.05 + 0.11 * i, "beta": -0.6 + 0.07 * i}
            for i in range(n)]


def build_compiler():
    from repro.core.registry import get_compiler
    from repro.devices import sycamore

    return get_compiler("2qan", device=sycamore(), gateset="CNOT", seed=0)


def circuits_identical(a, b) -> bool:
    """Gate-by-gate bit identity: same wires, same unitary bytes."""
    if a.n_qubits != b.n_qubits or len(a.gates) != len(b.gates):
        return False
    for ga, gb in zip(a.gates, b.gates):
        if ga.name != gb.name or ga.qubits != gb.qubits:
            return False
        if ga.unitary().tobytes() != gb.unitary().tobytes():
            return False
    return True


def measure(bindings: list[dict[str, float]] | None = None,
            ) -> tuple[float, float, bool]:
    """(warm bind seconds, cold compile seconds, bit-identical) over one
    structural compile + len(bindings) binds vs as many cold compiles.

    The warm clock includes the structural compile itself: the claim is
    about serving the whole batch, not about a pre-warmed suffix.
    """
    from repro.analysis.harness import build_symbolic_step
    from repro.core.bind import compile_structural

    if bindings is None:
        bindings = angle_sets()
    symbolic = build_symbolic_step(BENCHMARK, N_QUBITS, 0)

    start = time.perf_counter()
    structural = compile_structural(build_compiler(), symbolic)
    warm = [structural.bind(binding) for binding in bindings]
    warm_s = time.perf_counter() - start

    # cold baseline: bind the angles at the front end (a fully concrete
    # step, exactly what the sweep harness compiles) and run the whole
    # pipeline from scratch per angle set
    start = time.perf_counter()
    cold = [build_compiler().compile(symbolic.bind(binding))
            for binding in bindings]
    cold_s = time.perf_counter() - start

    identical = all(
        circuits_identical(w.circuit, c.circuit)
        and w.metrics == c.metrics
        for w, c in zip(warm, cold)
    )
    return warm_s, cold_s, identical


def main() -> int:
    warm_s, cold_s, identical = measure()
    ratio = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"bind perf smoke (n={N_QUBITS}, {N_BINDINGS} angle sets): "
          f"structural+binds {warm_s * 1e3:.1f}ms, "
          f"cold compiles {cold_s * 1e3:.1f}ms, "
          f"ratio {ratio:.1f}x (need >= {MIN_RATIO}x), "
          f"identical: {identical}")
    if not identical:
        print("FAIL: bound circuits differ from cold-compiled circuits")
        return 1
    if ratio < MIN_RATIO:
        print(f"FAIL: warm bind path only {ratio:.1f}x faster")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
