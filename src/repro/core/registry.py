"""Compiler registry: one place that maps names to configured pipelines.

Every compiler in the repo -- 2QAN, its ablations, and all four
baselines -- registers here under a canonical name (plus aliases), so
the CLI, the sweep harness and the runtime benchmarks construct
compilers uniformly::

    compiler = get_compiler("2qan", device=montreal(), gateset="CNOT")
    result = compiler.compile(step)

Factories are resolved lazily to keep :mod:`repro.core` importable
without dragging in :mod:`repro.baselines` (and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.decompose import DecomposeCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import PipelineCompiler
    from repro.devices.topology import Device


@dataclass(frozen=True)
class CompilerSpec:
    """One registry entry: a name, its aliases, and a compiler factory.

    ``factory(device, gateset, seed, cache, **knobs)`` returns a
    configured compiler exposing ``compile(step, initial=None)``.
    ``requires_device``/``uses_gateset`` are metadata for front ends:
    the NoMap and Paulihedral baselines ignore the device argument, and
    Paulihedral's idealised CNOT cost model ignores the gate set too.
    """

    name: str
    summary: str
    factory: Callable[..., "PipelineCompiler"]
    aliases: tuple[str, ...] = ()
    requires_device: bool = True
    uses_gateset: bool = True


_REGISTRY: dict[str, CompilerSpec] = {}
_ALIASES: dict[str, str] = {}


def register_compiler(spec: CompilerSpec) -> CompilerSpec:
    """Add one spec to the registry (canonical name and aliases)."""
    for name in (spec.name, *spec.aliases):
        claimed = _REGISTRY.get(name) or _REGISTRY.get(_ALIASES.get(name, ""))
        if claimed is not None and claimed.name != spec.name:
            raise ValueError(f"compiler name {name!r} already registered "
                             f"by {claimed.name!r}")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def compiler_names() -> tuple[str, ...]:
    """Canonical registered names, registration order."""
    return tuple(_REGISTRY)


def compiler_specs() -> tuple[CompilerSpec, ...]:
    """All registered specs, registration order."""
    return tuple(_REGISTRY.values())


def resolve_spec(name: str) -> CompilerSpec:
    """Look one name (or alias) up, raising ``ValueError`` if unknown."""
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = sorted(set(_REGISTRY) | set(_ALIASES))
        raise ValueError(
            f"unknown compiler {name!r} (known: {', '.join(known)})"
        ) from None


def get_compiler(name: str, *, device: "Device | None" = None,
                 gateset="CNOT", seed: int = 0,
                 cache: DecomposeCache | None = None,
                 **knobs) -> "PipelineCompiler":
    """Instantiate the named compiler with a uniform configuration.

    ``knobs`` are forwarded to the factory (e.g. ``mapping_trials=1``
    for 2QAN, ``lookahead=10`` for the t|ket>-like router); unknown
    knobs raise ``TypeError`` from the underlying dataclass.  A ``cache``
    of ``None`` lets each compiler default its own.
    """
    spec = resolve_spec(name)
    return spec.factory(device=device, gateset=gateset, seed=seed,
                        cache=cache, **knobs)


# ----------------------------------------------------------------------
# Built-in compilers.  Factories import lazily to avoid import cycles.
# ----------------------------------------------------------------------
def _twoqan_factory(device, gateset, seed, cache, **knobs):
    from repro.core.compiler import TwoQANCompiler

    return TwoQANCompiler(device=device, gateset=gateset, seed=seed,
                          cache=cache, **knobs)


def _twoqan_nodress_factory(device, gateset, seed, cache, **knobs):
    from repro.core.compiler import TwoQANCompiler

    return TwoQANCompiler(device=device, gateset=gateset, seed=seed,
                          cache=cache, dress=False, **knobs)


def _tket_factory(device, gateset, seed, cache, **knobs):
    from repro.baselines.order_respecting import TketLikeCompiler

    return TketLikeCompiler(device=device, gateset=gateset, seed=seed,
                            cache=cache, **knobs)


def _qiskit_factory(device, gateset, seed, cache, **knobs):
    from repro.baselines.order_respecting import QiskitLikeCompiler

    return QiskitLikeCompiler(device=device, gateset=gateset, seed=seed,
                              cache=cache, **knobs)


def _ic_qaoa_factory(device, gateset, seed, cache, **knobs):
    from repro.baselines.qaoa_ic import ICQAOACompiler

    return ICQAOACompiler(device=device, gateset=gateset, seed=seed,
                          cache=cache, **knobs)


def _nomap_factory(device, gateset, seed, cache, **knobs):
    from repro.baselines.nomap import NoMapCompiler

    return NoMapCompiler(gateset=gateset, seed=seed, cache=cache, **knobs)


def _paulihedral_factory(device, gateset, seed, cache, **knobs):
    from repro.baselines.paulihedral_like import PaulihedralLikeCompiler

    return PaulihedralLikeCompiler(seed=seed, **knobs)


register_compiler(CompilerSpec(
    name="2qan",
    summary="the 2QAN compiler, paper defaults (unify, dress, hybrid ALAP)",
    factory=_twoqan_factory,
))
register_compiler(CompilerSpec(
    name="2qan_nodress",
    summary="2QAN with SWAP dressing disabled (Table III ablation)",
    factory=_twoqan_nodress_factory,
))
register_compiler(CompilerSpec(
    name="tket",
    summary="order-respecting lookahead frontier router (t|ket> stand-in)",
    factory=_tket_factory,
    aliases=("order",),
))
register_compiler(CompilerSpec(
    name="qiskit",
    summary="order-respecting stochastic router (Qiskit-0.26 stand-in)",
    factory=_qiskit_factory,
))
register_compiler(CompilerSpec(
    name="ic_qaoa",
    summary="instruction-gain router for commuting layers (IC-QAOA stand-in)",
    factory=_ic_qaoa_factory,
    aliases=("qaoa_ic",),
))
register_compiler(CompilerSpec(
    name="nomap",
    summary="connectivity-free baseline (all-to-all, zero SWAPs)",
    factory=_nomap_factory,
    requires_device=False,
))
register_compiler(CompilerSpec(
    name="paulihedral",
    summary="idealised Paulihedral block scheduler (all-to-all cost model)",
    factory=_paulihedral_factory,
    aliases=("paulihedral_like",),
    requires_device=False,
    uses_gateset=False,
))
