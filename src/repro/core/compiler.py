"""The 2QAN compiler driver: a configured pass pipeline.

:class:`TwoQANCompiler` assembles the paper's configuration (best-of-5
Tabu mapping, full SWAP criteria, dressing on, hybrid ALAP scheduling,
decomposition last) as a
``PassPipeline([UnifyPass, MapPass, RoutePass, SchedulePass,
DecomposePass])``; the knobs the ablation benchmarks flip select pass
parameters.  Swapping whole stages goes through
:meth:`TwoQANCompiler.build_pipeline` and
:func:`repro.core.pipeline.run_pipeline`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.decompose import DecomposeCache, decompose_circuit
from repro.core.pipeline import (
    BindPass,
    CompilationResult,
    DecomposePass,
    MapPass,
    PassPipeline,
    PipelineCompiler,
    RoutePass,
    SchedulePass,
    UnifyPass,
    repeat_layers,
)
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep
from repro.quantum.circuit import Circuit
from repro.synthesis.gateset import GateSet

__all__ = ["CompilationResult", "TwoQANCompiler", "compile_step"]


@dataclass
class TwoQANCompiler(PipelineCompiler):
    """The 2QAN compiler with the paper's default configuration."""

    device: Device
    gateset: GateSet
    seed: int = 0
    mapping_trials: int = 5
    mapping_jobs: int = 1
    unify: bool = True
    dress: bool = True
    hybrid_schedule: bool = True
    swap_criteria: tuple[str, ...] = ("count", "depth", "dress")
    solve_angles: bool = False
    cache: DecomposeCache | None = None

    # gateset/cache normalisation comes from PipelineCompiler.__post_init__

    # ------------------------------------------------------------------
    def build_pipeline(self) -> PassPipeline:
        """The paper's Figure 2 stages, parameterised by the knobs."""
        return PassPipeline([
            UnifyPass(enabled=self.unify),
            MapPass(trials=self.mapping_trials, jobs=self.mapping_jobs),
            RoutePass(dress=self.dress, criteria=self.swap_criteria),
            SchedulePass(hybrid=self.hybrid_schedule),
            BindPass(),
            DecomposePass(solve=self.solve_angles),
        ])

    # ``compile`` is inherited from PipelineCompiler.

    # ------------------------------------------------------------------
    def compile_layers(self, steps: list[TrotterStep],
                       binding: dict[str, float] | None = None,
                       ) -> CompilationResult:
        """Multi-layer compilation via the paper's odd/even scheme.

        Only the first layer is compiled; odd layers reuse its circuit
        and even layers reverse the two-qubit gate order (Section V-C).
        The per-layer operator *parameters* may differ (QAOA), so each
        reused layer re-lowers the first layer's schedule with its own
        unitaries -- structure (SWAPs, depth shape) is shared.  A
        symbolic first layer takes its angles from ``binding``.
        """
        if not steps:
            raise ValueError("need at least one layer")
        first = self.compile(steps[0], binding=binding)
        if len(steps) == 1:
            return first
        # layer 0 is exactly first.circuit (the re-lowering is
        # deterministic), so only the reused layers re-lower
        layers: list[Circuit] = [first.circuit]
        relower_seconds = 0.0
        for layer_index, step in enumerate(steps[1:], start=1):
            start = time.perf_counter()
            layer = self._relower_layer(first, step)
            relower_seconds += time.perf_counter() - start
            if layer_index % 2 == 1:
                layer = layer.reversed_two_qubit_order()
            layers.append(layer)
        return repeat_layers(first, layers, self.device.n_qubits,
                             relower_seconds=relower_seconds)

    def _relower_layer(self, first: CompilationResult,
                       step: TrotterStep) -> Circuit:
        """Lower the first layer's schedule with this layer's unitaries.

        For benchmarks all layers share operator structure; when the
        layer's operators match the first layer's pairs, the schedule is
        reused directly (QAOA layers differ only in angles, which does
        not change counts/depth of the lowered circuit).
        """
        app_circuit = first.scheduled.to_circuit()
        return decompose_circuit(app_circuit, self.gateset,
                                 solve=self.solve_angles, seed=self.seed,
                                 cache=self.cache)

    # ------------------------------------------------------------------
    def compile_trotter(self, hamiltonian, n_steps: int,
                        total_time: float = 1.0) -> CompilationResult:
        """Compile an ``n_steps`` Trotterised evolution (Section V-D).

        Implements the paper's scheme: compile the first step once, reuse
        it for odd-numbered steps and reverse the two-qubit gate order
        for even-numbered steps (equivalent in spirit to second-order
        Trotterisation and free of extra compilation cost).
        """
        from repro.hamiltonians.trotter import trotter_step

        step = trotter_step(hamiltonian, t=total_time / n_steps)
        first = self.compile(step)
        if n_steps == 1:
            return first
        forward = first.circuit
        backward = forward.reversed_two_qubit_order()
        layers = [forward if i % 2 == 0 else backward
                  for i in range(n_steps)]
        return repeat_layers(first, layers, self.device.n_qubits)


def compile_step(step: TrotterStep, device: Device, gateset: str | GateSet,
                 seed: int = 0, **kwargs) -> CompilationResult:
    """One-call convenience wrapper around :class:`TwoQANCompiler`."""
    compiler = TwoQANCompiler(device=device, gateset=gateset, seed=seed,
                              **kwargs)
    return compiler.compile(step)
