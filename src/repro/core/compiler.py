"""The 2QAN compiler driver: unify -> map -> route -> schedule -> lower.

:class:`TwoQANCompiler` wires the passes together with the paper's
configuration (best-of-5 Tabu mapping, full SWAP criteria, dressing on,
hybrid ALAP scheduling, decomposition last) and exposes the knobs the
ablation benchmarks flip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.decompose import DecomposeCache, decompose_circuit
from repro.core.metrics import CircuitMetrics
from repro.core.routing import QubitMap, RoutedProblem, route
from repro.core.scheduling import ScheduledCircuit, schedule_alap
from repro.core.unify import unify_circuit_operators
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep
from repro.mapping.placement import best_of_k_mapping
from repro.mapping.qap import qap_from_problem
from repro.quantum.circuit import Circuit
from repro.synthesis.gateset import GateSet, get_gateset


@dataclass
class CompilationResult:
    """Everything the evaluation needs from one compilation."""

    circuit: Circuit                    # hardware-basis circuit
    scheduled: ScheduledCircuit         # application-level schedule
    routed: RoutedProblem
    metrics: CircuitMetrics
    qap_cost: float
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def n_swaps(self) -> int:
        return self.routed.n_swaps

    @property
    def n_dressed(self) -> int:
        return self.routed.n_dressed

    @property
    def initial_map(self) -> QubitMap:
        return self.scheduled.initial_map

    @property
    def final_map(self) -> QubitMap:
        return self.scheduled.final_map


@dataclass
class TwoQANCompiler:
    """The 2QAN compiler with the paper's default configuration."""

    device: Device
    gateset: GateSet
    seed: int = 0
    mapping_trials: int = 5
    unify: bool = True
    dress: bool = True
    hybrid_schedule: bool = True
    swap_criteria: tuple[str, ...] = ("count", "depth", "dress")
    solve_angles: bool = False
    cache: DecomposeCache | None = None

    def __post_init__(self) -> None:
        if isinstance(self.gateset, str):
            self.gateset = get_gateset(self.gateset)
        if self.cache is None:
            self.cache = DecomposeCache()

    # ------------------------------------------------------------------
    def compile(self, step: TrotterStep,
                initial: np.ndarray | None = None) -> CompilationResult:
        """Compile one Trotter step / QAOA layer."""
        timings: dict[str, float] = {}

        t0 = time.perf_counter()
        working = unify_circuit_operators(step) if self.unify else step
        timings["unify"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        instance = qap_from_problem(working, self.device)
        if initial is None:
            mapping = best_of_k_mapping(
                instance, k=self.mapping_trials, seed=self.seed
            )
            assignment, qap_cost = mapping.assignment, mapping.cost
        else:
            assignment = np.asarray(initial)
            qap_cost = instance.cost(assignment)
        timings["mapping"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        routed = route(working, self.device, assignment, seed=self.seed,
                       dress=self.dress, criteria=self.swap_criteria)
        timings["routing"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        scheduled = schedule_alap(routed, seed=self.seed,
                                  hybrid=self.hybrid_schedule)
        timings["scheduling"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        app_circuit = scheduled.to_circuit()
        circuit = decompose_circuit(app_circuit, self.gateset,
                                    solve=self.solve_angles, seed=self.seed,
                                    cache=self.cache)
        timings["decomposition"] = time.perf_counter() - t0

        metrics = CircuitMetrics.from_circuit(
            circuit, n_swaps=routed.n_swaps, n_dressed=routed.n_dressed
        )
        return CompilationResult(
            circuit=circuit,
            scheduled=scheduled,
            routed=routed,
            metrics=metrics,
            qap_cost=float(qap_cost),
            timings=timings,
        )

    # ------------------------------------------------------------------
    def compile_layers(self, steps: list[TrotterStep]) -> CompilationResult:
        """Multi-layer compilation via the paper's odd/even scheme.

        Only the first layer is compiled; odd layers reuse its circuit
        and even layers reverse the two-qubit gate order (Section V-C).
        The per-layer operator *parameters* may differ (QAOA), so each
        reused layer re-lowers the first layer's schedule with its own
        unitaries -- structure (SWAPs, depth shape) is shared.
        """
        if not steps:
            raise ValueError("need at least one layer")
        first = self.compile(steps[0])
        if len(steps) == 1:
            return first
        combined = Circuit(self.device.n_qubits)
        scheduled_layers = []
        for layer_index, step in enumerate(steps):
            layer = self._relower_layer(first, step)
            if layer_index % 2 == 1:
                layer = layer.reversed_two_qubit_order()
            scheduled_layers.append(layer)
            combined.extend(layer.gates)
        metrics = CircuitMetrics.from_circuit(
            combined,
            n_swaps=first.n_swaps * len(steps),
            n_dressed=first.n_dressed * len(steps),
        )
        return CompilationResult(
            circuit=combined,
            scheduled=first.scheduled,
            routed=first.routed,
            metrics=metrics,
            qap_cost=first.qap_cost,
            timings=dict(first.timings),
        )

    def _relower_layer(self, first: CompilationResult,
                       step: TrotterStep) -> Circuit:
        """Lower the first layer's schedule with this layer's unitaries.

        For benchmarks all layers share operator structure; when the
        layer's operators match the first layer's pairs, the schedule is
        reused directly (QAOA layers differ only in angles, which does
        not change counts/depth of the lowered circuit).
        """
        app_circuit = first.scheduled.to_circuit()
        return decompose_circuit(app_circuit, self.gateset,
                                 solve=self.solve_angles, seed=self.seed,
                                 cache=self.cache)


    # ------------------------------------------------------------------
    def compile_trotter(self, hamiltonian, n_steps: int,
                        total_time: float = 1.0) -> CompilationResult:
        """Compile an ``n_steps`` Trotterised evolution (Section V-D).

        Implements the paper's scheme: compile the first step once, reuse
        it for odd-numbered steps and reverse the two-qubit gate order
        for even-numbered steps (equivalent in spirit to second-order
        Trotterisation and free of extra compilation cost).
        """
        from repro.hamiltonians.trotter import trotter_step

        step = trotter_step(hamiltonian, t=total_time / n_steps)
        first = self.compile(step)
        if n_steps == 1:
            return first
        combined = Circuit(self.device.n_qubits)
        forward = first.circuit
        backward = forward.reversed_two_qubit_order()
        for index in range(n_steps):
            layer = forward if index % 2 == 0 else backward
            combined.extend(layer.gates)
        metrics = CircuitMetrics.from_circuit(
            combined,
            n_swaps=first.n_swaps * n_steps,
            n_dressed=first.n_dressed * n_steps,
        )
        return CompilationResult(
            circuit=combined,
            scheduled=first.scheduled,
            routed=first.routed,
            metrics=metrics,
            qap_cost=first.qap_cost,
            timings=dict(first.timings),
        )


def compile_step(step: TrotterStep, device: Device, gateset: str | GateSet,
                 seed: int = 0, **kwargs) -> CompilationResult:
    """One-call convenience wrapper around :class:`TwoQANCompiler`."""
    compiler = TwoQANCompiler(device=device, gateset=gateset, seed=seed,
                              **kwargs)
    return compiler.compile(step)
