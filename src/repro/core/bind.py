"""Structural compilation and late angle binding.

The structure/parameter split: every pass up to (but excluding) the
pipeline's ``binding`` pass depends only on the circuit *shape* --
interaction pairs, counts, device distances -- never on angle values.
:func:`compile_structural` runs exactly that prefix once and captures
the context; :func:`bind_structural` replays the remaining suffix
(binding + decomposition) per angle set.  Compiling ``bind(step)``
from scratch and binding after a structural compile produce
bit-identical circuits: the suffix is the same code over the same
artifacts, and binding an operator folds the same factor matrices the
concrete front end builds.

:func:`bind_scheduled` is the schedule-level binder the pipeline's
``BindPass`` uses: it rebuilds the scheduled item list with concrete
operators without mutating the (shared, reusable) structural schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.cancel import CancelToken
from repro.core.pipeline import (
    CompilationContext,
    CompilationResult,
    PassPipeline,
    result_from_context,
)
from repro.core.routing import RoutedSwap
from repro.core.scheduling import ScheduledCircuit, ScheduledItem

BIND_PASS_NAME = "binding"


# ----------------------------------------------------------------------
# Schedule-level binding
# ----------------------------------------------------------------------
def scheduled_parameters(scheduled: ScheduledCircuit) -> frozenset[str]:
    """Unbound parameter names across a scheduled circuit's operators."""
    names: frozenset[str] = frozenset()
    for item in scheduled.items:
        if item.operator is not None:
            names |= item.operator.parameters
        if item.swap is not None and item.swap.dressed_with is not None:
            names |= item.swap.dressed_with.parameters
    for op in scheduled.one_qubit_ops:
        names |= op.parameters
    return names


def bind_scheduled(scheduled: ScheduledCircuit,
                   binding: dict[str, float]) -> ScheduledCircuit:
    """A concrete schedule with every symbolic operator resolved.

    The input schedule is left untouched (a structural compilation binds
    it many times); items whose operator is already concrete are shared.
    Operators aliased across items (unify emits one object per merged
    pair occurrence) bind to one concrete object.
    """
    memo: dict[int, object] = {}

    def _bound(op):
        key = id(op)
        if key not in memo:
            memo[key] = op.bind(binding)
        return memo[key]

    items: list[ScheduledItem] = []
    for item in scheduled.items:
        if item.operator is not None and item.operator.is_symbolic:
            items.append(ScheduledItem(item.kind, item.physical_pair,
                                       item.cycle,
                                       operator=_bound(item.operator)))
        elif (item.swap is not None and item.swap.dressed_with is not None
              and item.swap.dressed_with.is_symbolic):
            swap = RoutedSwap(item.swap.physical_pair, item.swap.map_index,
                              dressed_with=_bound(item.swap.dressed_with))
            items.append(ScheduledItem(item.kind, item.physical_pair,
                                       item.cycle, swap=swap))
        else:
            items.append(item)
    return ScheduledCircuit(
        n_physical=scheduled.n_physical,
        items=items,
        initial_map=scheduled.initial_map,
        final_map=scheduled.final_map,
        one_qubit_ops=[_bound(op) if op.is_symbolic else op
                       for op in scheduled.one_qubit_ops],
    )


def context_parameters(ctx: CompilationContext) -> frozenset[str]:
    """Unbound parameter names across a context's bindable artifacts."""
    names: frozenset[str] = frozenset()
    if ctx.scheduled is not None:
        names |= scheduled_parameters(ctx.scheduled)
    if ctx.app_circuit is not None:
        names |= ctx.app_circuit.parameters()
    if ctx.circuit is not None and ctx.circuit is not ctx.app_circuit:
        names |= ctx.circuit.parameters()
    return names


# ----------------------------------------------------------------------
# Compile-once / bind-per-request
# ----------------------------------------------------------------------
@dataclass
class StructuralCompilation:
    """A pipeline prefix run once, ready to accept angle bindings.

    ``ctx`` holds the structural artifacts (unified problem, mapping,
    routed problem, schedule); ``suffix`` is the remaining pipeline from
    the bind pass onward.  ``parameters`` are the names every
    :meth:`bind` call must supply.
    """

    suffix: PassPipeline
    ctx: CompilationContext
    parameters: frozenset[str]
    prefix_names: tuple[str, ...]

    def bind(self, binding: dict[str, float] | None = None,
             ) -> CompilationResult:
        return bind_structural(self, binding)


def compile_structural(compiler, step,
                       initial: np.ndarray | None = None,
                       cancel: CancelToken | None = None,
                       ) -> StructuralCompilation:
    """Run a compiler's structural prefix (everything before binding).

    ``compiler`` is any :class:`~repro.core.pipeline.PipelineCompiler`
    whose pipeline contains a pass named ``"binding"``; the step may be
    symbolic or concrete.  ``cancel`` governs only the prefix run; the
    stored structural context carries no token (each bind supplies its
    own), so one request's cancellation never poisons a structural twin
    compiled on its behalf.
    """
    pipeline = compiler.build_pipeline()
    names = pipeline.names()
    if BIND_PASS_NAME not in names:
        raise ValueError(
            f"compiler pipeline {names} has no {BIND_PASS_NAME!r} pass; "
            f"cannot split it into structure and binding"
        )
    split = names.index(BIND_PASS_NAME)
    prefix = PassPipeline(pipeline.passes[:split])
    suffix = PassPipeline(pipeline.passes[split:])
    ctx = CompilationContext(
        step=step,
        gateset=compiler.gateset,
        device=getattr(compiler, "device", None),
        seed=compiler.seed,
        cache=compiler.cache,
        initial=initial,
        cancel=cancel,
    )
    ctx = prefix.run(ctx)
    ctx.cancel = None
    return StructuralCompilation(
        suffix=suffix,
        ctx=ctx,
        parameters=context_parameters(ctx),
        prefix_names=names[:split],
    )


def bind_structural(structural: StructuralCompilation,
                    binding: dict[str, float] | None = None,
                    cancel: CancelToken | None = None,
                    ) -> CompilationResult:
    """Bind one angle set into a structural compilation.

    Replays only the pipeline suffix (binding + decomposition) on a copy
    of the structural context; the structural artifacts are shared, not
    mutated, so a compilation binds any number of angle sets.  Each bind
    carries its own ``cancel`` token (the structural context stores
    none).
    """
    ctx = replace(
        structural.ctx,
        binding=dict(binding) if binding else None,
        timings=dict(structural.ctx.timings),
        cache_events=dict(structural.ctx.cache_events),
        cancel=cancel,
    )
    ctx = structural.suffix.run(ctx)
    return result_from_context(ctx)
