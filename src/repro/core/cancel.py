"""Cooperative cancellation for in-flight compilations.

A :class:`CancelToken` travels down the compilation stack (service job ->
``execute_request`` -> pipeline context) and is *checked at pass
boundaries*: :meth:`~repro.core.pipeline.PassPipeline.run` calls
:meth:`CancelToken.checkpoint` before each stage, so a cancelled or
deadline-expired compilation stops at the next boundary instead of
running the remaining passes to completion.  Cancellation is cooperative
-- a pass already executing finishes its stage -- which keeps the
pipeline free of locks and the artifacts free of half-written state.

The token is deliberately stdlib-only and import-light: the serving
layer (``repro.service``) creates tokens without importing numpy, and
the pipeline consumes them without importing the service.

``on_checkpoint`` is an instrumentation seam: the fault-injection
harness (:mod:`repro.service.faults`) hooks it to stall a named pass,
and tests hook it to observe boundary crossings.
"""

from __future__ import annotations

import threading
import time


class CompilationCancelled(Exception):
    """Raised at a pass boundary when the compilation's token fired.

    Carries a plain message only, so it pickles cleanly across the
    process-pool boundary in ``--workers process`` mode.
    """


class CancelToken:
    """A thread-safe cancellation flag with an optional deadline.

    ``deadline`` is a :func:`time.monotonic` timestamp; ``checkpoint``
    raises once it has passed.  ``cancel()`` may be called from any
    thread (e.g. the asyncio front end observing a client disconnect)
    while the compilation runs in a worker.
    """

    __slots__ = ("_event", "deadline", "on_checkpoint")

    def __init__(self, deadline: float | None = None) -> None:
        self._event = threading.Event()
        self.deadline = deadline
        self.on_checkpoint = None

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def checkpoint(self, where: str = "") -> None:
        """Raise :class:`CompilationCancelled` if the token has fired.

        ``where`` names the boundary (the pass about to run) for the
        error message and the ``on_checkpoint`` hook.
        """
        hook = self.on_checkpoint
        if hook is not None:
            hook(where)
        if self._event.is_set():
            raise CompilationCancelled(
                f"compilation cancelled before pass {where or '<start>'!r}"
            )
        if self.expired:
            raise CompilationCancelled(
                f"compilation deadline exceeded before pass "
                f"{where or '<start>'!r}"
            )
