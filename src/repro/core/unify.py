"""Unitary unifying (paper Section III-C).

Two distinct merges, both enabled by free operator permutation:

* **Circuit unitary unifying** (pre-pass): all term exponentials on the
  same qubit pair merge into one SU(4).  The three Heisenberg terms on a
  pair cost 3 CNOTs unified versus 6 individually.  The paper applies
  this to *every* compiler's input, so it lives here as a standalone
  function the baselines also call.

* **SWAP unitary unifying** (post-routing): an inserted SWAP merges with
  a circuit gate on the same physical pair into a "dressed SWAP"
  (3 CNOTs instead of 2 + 3 = 5; Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.trotter import TrotterStep, TwoQubitOperator
from repro.quantum.gates import standard_gate_unitary

_SWAP = standard_gate_unitary("SWAP")


def unify_circuit_operators(step: TrotterStep) -> TrotterStep:
    """Merge all two-qubit operators acting on the same pair.

    Operators on a pair commute with each other only in special cases,
    but merging them is always sound: their product is itself a two-qubit
    unitary, and the product formula is free to order same-pair factors
    adjacently.  The merged operator keeps the first occurrence's position
    in the operator list.
    """
    merged: dict[tuple[int, int], TwoQubitOperator] = {}
    order: list[tuple[int, int]] = []
    for op in step.two_qubit_ops:
        if op.pair in merged:
            merged[op.pair] = merged[op.pair].merged_with(op)
        else:
            merged[op.pair] = op
            order.append(op.pair)
    return TrotterStep(
        step.n_qubits,
        [merged[pair] for pair in order],
        list(step.one_qubit_ops),
    )


@dataclass
class DressedSwap:
    """A SWAP fused with a circuit operator on the same physical pair.

    ``unitary = SWAP @ operator.unitary`` in the *logical* qubit order of
    the absorbed operator: executing the dressed gate applies the term
    and then exchanges the qubits.
    """

    physical_pair: tuple[int, int]
    operator: TwoQubitOperator

    @property
    def unitary(self) -> np.ndarray:
        return _SWAP @ self.operator.unitary
