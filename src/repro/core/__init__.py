"""The 2QAN compiler core: the paper's contribution.

Pipeline (Figure 2), one :class:`~repro.core.pipeline.Pass` per stage:

1. circuit unitary unifying (:class:`~repro.core.pipeline.UnifyPass`,
   :mod:`repro.core.unify`) -- merge same-pair term exponentials into
   single SU(4) blocks;
2. qubit mapping (:class:`~repro.core.pipeline.MapPass`,
   :mod:`repro.mapping`) -- QAP + Tabu search;
3. permutation-aware routing (:class:`~repro.core.pipeline.RoutePass`,
   :mod:`repro.core.routing`, Algorithm 1) -- SWAP insertion exploiting
   free operator ordering;
4. SWAP unitary unifying (part of :class:`~repro.core.pipeline.RoutePass`;
   :mod:`repro.core.unify`) -- dress SWAPs with same-pair circuit gates;
5. permutation-aware hybrid scheduling
   (:class:`~repro.core.pipeline.SchedulePass`,
   :mod:`repro.core.scheduling`, Algorithm 2) -- ALAP scheduling with
   SWAP-only dependencies;
6. gate decomposition (:class:`~repro.core.pipeline.DecomposePass`,
   :mod:`repro.core.decompose`) -- retarget to the hardware basis
   (CNOT / CZ / SYC / iSWAP).

Compilers are looked up by name via :mod:`repro.core.registry`.
"""

from repro.core.compiler import CompilationResult, TwoQANCompiler, compile_step
from repro.core.metrics import CircuitMetrics, OverheadReport
from repro.core.pipeline import (
    CompilationContext,
    DecomposePass,
    MapPass,
    Pass,
    PassPipeline,
    PipelineCompiler,
    RoutePass,
    SchedulePass,
    UnifyPass,
    repeat_layers,
    run_pipeline,
)
from repro.core.registry import compiler_names, get_compiler
from repro.core.routing import RoutedProblem, route
from repro.core.scheduling import ScheduledCircuit, schedule_alap, schedule_no_device
from repro.core.unify import DressedSwap, unify_circuit_operators

__all__ = [
    "TwoQANCompiler",
    "CompilationResult",
    "compile_step",
    "CompilationContext",
    "Pass",
    "PassPipeline",
    "PipelineCompiler",
    "UnifyPass",
    "MapPass",
    "RoutePass",
    "SchedulePass",
    "DecomposePass",
    "repeat_layers",
    "run_pipeline",
    "get_compiler",
    "compiler_names",
    "CircuitMetrics",
    "OverheadReport",
    "RoutedProblem",
    "route",
    "ScheduledCircuit",
    "schedule_alap",
    "schedule_no_device",
    "unify_circuit_operators",
    "DressedSwap",
]
