"""The 2QAN compiler core: the paper's contribution.

Pipeline (Figure 2):

1. circuit unitary unifying (:mod:`repro.core.unify`) -- merge same-pair
   term exponentials into single SU(4) blocks;
2. qubit mapping (:mod:`repro.mapping`) -- QAP + Tabu search;
3. permutation-aware routing (:mod:`repro.core.routing`, Algorithm 1) --
   SWAP insertion exploiting free operator ordering;
4. SWAP unitary unifying (also :mod:`repro.core.unify`) -- dress SWAPs
   with same-pair circuit gates;
5. permutation-aware hybrid scheduling (:mod:`repro.core.scheduling`,
   Algorithm 2) -- ALAP scheduling with SWAP-only dependencies;
6. gate decomposition (:mod:`repro.core.decompose`) -- retarget to the
   hardware basis (CNOT / CZ / SYC / iSWAP).
"""

from repro.core.compiler import CompilationResult, TwoQANCompiler, compile_step
from repro.core.metrics import CircuitMetrics, OverheadReport
from repro.core.routing import RoutedProblem, route
from repro.core.scheduling import ScheduledCircuit, schedule_alap, schedule_no_device
from repro.core.unify import DressedSwap, unify_circuit_operators

__all__ = [
    "TwoQANCompiler",
    "CompilationResult",
    "compile_step",
    "CircuitMetrics",
    "OverheadReport",
    "RoutedProblem",
    "route",
    "ScheduledCircuit",
    "schedule_alap",
    "schedule_no_device",
    "unify_circuit_operators",
    "DressedSwap",
]
