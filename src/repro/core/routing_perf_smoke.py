"""Routing perf smoke: incremental engine vs the scalar-rescan reference.

Run as ``python -m repro.core.routing_perf_smoke``.  Builds a fixed
n = 34 Heisenberg instance on sycamore with a seeded random placement
(deliberately bad, so the router has real work), routes it with both
candidate-scoring engines -- the incremental per-logical delta indices
against the retained O(|unrouted|)-per-candidate scalar rescan -- and
asserts the incremental engine is at least ``MIN_RATIO`` times faster.
The check is *relative* (both sides run in the same process on the same
machine), so it is robust to slow CI runners; it also re-asserts the
two routed problems are identical swap-for-swap, because a fast wrong
router is worse than a slow right one.
"""

from __future__ import annotations

import sys
import time

import numpy as np

MIN_RATIO = 3.0
N_QUBITS = 34
ROUNDS = 5


def build_instance():
    """The fixed smoke instance: unified n=34 Heisenberg on sycamore,
    with a seeded random initial placement."""
    from repro.core.unify import unify_circuit_operators
    from repro.devices import sycamore
    from repro.hamiltonians.models import nnn_heisenberg
    from repro.hamiltonians.trotter import trotter_step

    step = unify_circuit_operators(
        trotter_step(nnn_heisenberg(N_QUBITS, seed=0)))
    device = sycamore()
    rng = np.random.default_rng(0)
    initial = np.array(rng.permutation(device.n_qubits)[:N_QUBITS])
    return step, device, initial


def routed_equal(a, b) -> bool:
    """Bit-for-bit equality of two :class:`RoutedProblem` trajectories:
    same SWAPs (edges, map indices, dressed operators), same routed
    gates (operators, map indices, physical pairs), same map sequence."""
    if len(a.swaps) != len(b.swaps) or len(a.gates) != len(b.gates) \
            or len(a.maps) != len(b.maps):
        return False
    for sa, sb in zip(a.swaps, b.swaps):
        da = sa.dressed_with.label if sa.is_dressed else None
        db = sb.dressed_with.label if sb.is_dressed else None
        if (sa.physical_pair, sa.map_index, da) != \
                (sb.physical_pair, sb.map_index, db):
            return False
    for ga, gb in zip(a.gates, b.gates):
        if (ga.operator.label, ga.map_index, tuple(ga.physical_pair)) != \
                (gb.operator.label, gb.map_index, tuple(gb.physical_pair)):
            return False
    return all(ma.logical_to_physical == mb.logical_to_physical
               for ma, mb in zip(a.maps, b.maps))


def measure(rounds: int = ROUNDS) -> tuple[float, float, bool]:
    """(incremental seconds, reference seconds, routed identical) for one
    full routing run, best of ``rounds``."""
    from repro.core.routing import route

    step, device, initial = build_instance()

    def run(engine: str):
        return route(step, device, initial, seed=0, engine=engine)

    incremental_s = min(_timed(run, "incremental") for _ in range(rounds))
    reference_s = min(_timed(run, "reference") for _ in range(rounds))
    identical = routed_equal(run("incremental"), run("reference"))
    return incremental_s, reference_s, identical


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def main() -> int:
    incremental_s, reference_s, identical = measure()
    ratio = reference_s / incremental_s if incremental_s > 0 else float("inf")
    print(f"routing perf smoke (n={N_QUBITS}): "
          f"incremental {incremental_s * 1e3:.2f}ms, "
          f"scalar reference {reference_s * 1e3:.2f}ms, "
          f"ratio {ratio:.1f}x (need >= {MIN_RATIO}x), "
          f"identical: {identical}")
    if not identical:
        print("FAIL: incremental routing differs from the scalar reference")
        return 1
    if ratio < MIN_RATIO:
        print(f"FAIL: incremental engine only {ratio:.1f}x faster")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
