"""Compilation metrics (paper Section IV, "Metrics").

For every compiled benchmark the paper reports: inserted SWAP count,
hardware two-qubit gate count, two-qubit-gate depth, and total depth;
plus *overheads* -- the increase relative to the connectivity-free
("NoMap") baseline circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quantum.circuit import Circuit


@dataclass(frozen=True)
class CircuitMetrics:
    """Size metrics of one hardware-level circuit."""

    n_two_qubit_gates: int
    two_qubit_depth: int
    total_depth: int
    n_swaps: int = 0
    n_dressed: int = 0

    @classmethod
    def from_circuit(cls, circuit: Circuit, n_swaps: int = 0,
                     n_dressed: int = 0) -> "CircuitMetrics":
        return cls(
            n_two_qubit_gates=circuit.n_two_qubit_gates,
            two_qubit_depth=circuit.two_qubit_depth(),
            total_depth=circuit.depth(),
            n_swaps=n_swaps,
            n_dressed=n_dressed,
        )


@dataclass(frozen=True)
class OverheadReport:
    """Overhead of a compiled circuit relative to the NoMap baseline.

    ``gate_overhead`` and ``depth_overhead`` are absolute increases (the
    quantities whose ratios the paper's Tables I/II report).
    """

    compiled: CircuitMetrics
    baseline: CircuitMetrics

    @property
    def gate_overhead(self) -> int:
        return self.compiled.n_two_qubit_gates - self.baseline.n_two_qubit_gates

    @property
    def depth_overhead(self) -> int:
        return self.compiled.two_qubit_depth - self.baseline.two_qubit_depth

    @property
    def total_depth_overhead(self) -> int:
        return self.compiled.total_depth - self.baseline.total_depth

    def gate_ratio(self) -> float:
        return self.compiled.n_two_qubit_gates / max(
            1, self.baseline.n_two_qubit_gates
        )


def overhead_reduction(ours: OverheadReport, other: OverheadReport,
                       quantity: str) -> float:
    """Ratio other-overhead / our-overhead (Tables I/II convention).

    ``quantity`` is ``"gates"`` or ``"depth"``.  When our overhead is
    zero the reduction is infinite; the paper prints '--' in that case,
    we return ``float('inf')``.
    """
    if quantity == "gates":
        ours_val, other_val = ours.gate_overhead, other.gate_overhead
    elif quantity == "depth":
        ours_val, other_val = ours.depth_overhead, other.depth_overhead
    else:
        raise ValueError(f"unknown quantity {quantity!r}")
    if ours_val <= 0:
        return float("inf")
    return other_val / ours_val
