"""Final gate decomposition pass (paper Figure 2, last stage).

Runs *after* all permutation-aware passes, so the same routed/scheduled
circuit retargets to any hardware basis.  Each application-level two-qubit
block (term exponential, unified gate, SWAP, dressed SWAP) becomes basis
two-qubit gates plus single-qubit gates; adjacent single-qubit gates are
fused afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.transforms import merge_single_qubit_gates
from repro.synthesis.gateset import GateSet

# Decomposition results for repeated unitaries (bare SWAPs especially)
# are cached by matrix bytes.
_CACHE_LIMIT = 4096


class DecomposeCache:
    """Memoises two-qubit decompositions keyed by (gateset, matrix)."""

    def __init__(self) -> None:
        self._store: dict[tuple[str, bool, bytes], tuple[Circuit, complex]] = {}

    def get(self, gateset: GateSet, matrix: np.ndarray, solve: bool,
            seed: int) -> tuple[Circuit, complex]:
        key = (gateset.name, solve, np.round(matrix, 12).tobytes())
        hit = self._store.get(key)
        if hit is None:
            hit = gateset.decompose(matrix, solve=solve, seed=seed)
            if len(self._store) < _CACHE_LIMIT:
                self._store[key] = hit
        return hit


def decompose_circuit(circuit: Circuit, gateset: GateSet, *,
                      solve: bool = False, seed: int = 0,
                      cache: DecomposeCache | None = None) -> Circuit:
    """Lower an application-level circuit to the hardware basis.

    ``solve=False`` (the benchmark mode) produces placeholder single-qubit
    gates but exact basis-gate counts and depth structure; ``solve=True``
    produces unitary-exact circuits.
    """
    if cache is None:
        cache = DecomposeCache()
    lowered = Circuit(circuit.n_qubits)
    for gate in circuit:
        if gate.n_qubits == 1:
            lowered.append(Gate("U1Q", gate.qubits, matrix=gate.unitary()))
            continue
        if gate.n_qubits != 2:
            raise ValueError(f"cannot decompose {gate.n_qubits}-qubit gate")
        block, _ = cache.get(gateset, gate.unitary(), solve, seed)
        a, b = gate.qubits
        for small in block:
            mapped = tuple(a if q == 0 else b for q in small.qubits)
            lowered.append(Gate(small.name, mapped, small.params,
                                small.matrix, dict(small.meta)))
    return merge_single_qubit_gates(lowered)
