"""Final gate decomposition pass (paper Figure 2, last stage).

Runs *after* all permutation-aware passes, so the same routed/scheduled
circuit retargets to any hardware basis.  Each application-level two-qubit
block (term exponential, unified gate, SWAP, dressed SWAP) becomes basis
two-qubit gates plus single-qubit gates; adjacent single-qubit gates are
fused afterwards.

Lowering is **two-phase**: a first walk over the circuit resolves every
two-qubit gate against the template and matrix memos and collects the
unique uncached matrices (SWAP / dressed-SWAP repeats dominate real
workloads, so dedupe-before-synthesis shrinks the work sharply); the
misses are synthesized in one call to the batched KAK engine
(:meth:`~repro.synthesis.gateset.GateSet.decompose_batch`); a second walk
emits the lowered circuit from the resolved blocks.  Outputs are
bit-identical to the retained scalar walk
(:func:`decompose_circuit_reference`) -- the batch engine guarantees
per-matrix byte equality and falls back per matrix where it cannot.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.transforms import merge_single_qubit_gates
from repro.synthesis.gateset import GateSet

# Decomposition results for repeated unitaries (bare SWAPs especially)
# are cached by matrix bytes.
_CACHE_LIMIT = 4096


def cache_key(matrix: np.ndarray) -> bytes:
    """Matrix-bytes memo key (rounded so float noise does not split keys).

    Factored out so the two-phase walk computes each gate's key exactly
    once and reuses it for dedupe, lookup, and insert.
    """
    return np.round(matrix, 12).tobytes()


class DecomposeCache:
    """LRU-bounded memo of two-qubit decompositions.

    Keyed by ``(gateset, solve, matrix bytes)``; at most ``maxsize``
    entries are retained, evicting least-recently-used first (the old
    behaviour -- silently refusing new entries once full -- pessimised
    exactly the workloads long enough to fill the cache).  ``hits`` /
    ``misses`` count lookups; sweep reports surface them next to the
    pipeline-cache counters.
    """

    def __init__(self, maxsize: int = _CACHE_LIMIT) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple[str, bool, bytes],
                                 tuple[Circuit, complex]] = OrderedDict()

    def lookup(self, gateset: GateSet, key: bytes,
               solve: bool) -> tuple[Circuit, complex] | None:
        """Probe by precomputed matrix key; counts a hit or a miss."""
        full = (gateset.name, solve, key)
        hit = self._store.get(full)
        if hit is not None:
            self.hits += 1
            self._store.move_to_end(full)
            return hit
        self.misses += 1
        return None

    def insert(self, gateset: GateSet, key: bytes, solve: bool,
               value: tuple[Circuit, complex]) -> None:
        """Store a synthesized block under a precomputed matrix key."""
        if self.maxsize > 0:
            self._store[(gateset.name, solve, key)] = value
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def get(self, gateset: GateSet, matrix: np.ndarray, solve: bool,
            seed: int) -> tuple[Circuit, complex]:
        key = cache_key(matrix)
        hit = self.lookup(gateset, key, solve)
        if hit is not None:
            return hit
        value = gateset.decompose(matrix, solve=solve, seed=seed)
        self.insert(gateset, key, solve, value)
        return value

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        """Lookup counters plus current occupancy."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._store), "maxsize": self.maxsize}


def decompose_circuit(circuit: Circuit, gateset: GateSet, *,
                      solve: bool = False, seed: int = 0,
                      cache: DecomposeCache | None = None,
                      templates=None, engine: str = "auto") -> Circuit:
    """Lower an application-level circuit to the hardware basis.

    ``solve=False`` (the benchmark mode) produces placeholder single-qubit
    gates but exact basis-gate counts and depth structure; ``solve=True``
    produces unitary-exact circuits.

    Gates carrying a ``meta["template"]`` key (term-structure signature
    plus resolved angles, attached by the schedule emitter and by
    ``Gate.bind``) are looked up through ``templates`` (a
    :class:`~repro.synthesis.templates.TemplateCache`, defaulting to the
    shared module instance): repeat bindings of the same term structure
    skip both the factor fold and the matrix-bytes keying.  The template
    layer delegates to ``cache`` on miss, so its blocks are bit-identical
    to the plain path.

    ``engine`` selects the lowering walk: ``"auto"`` (default) runs the
    two-phase batched walk, ``"scalar"`` the per-gate reference.  Both
    produce bit-identical circuits; counters can differ only in the
    pathological regime where a single circuit overflows the cache bound
    mid-walk (the batched walk resolves each unique matrix once, so a
    key the scalar walk would re-miss after eviction counts as a hit).
    """
    if engine == "scalar":
        return decompose_circuit_reference(circuit, gateset, solve=solve,
                                           seed=seed, cache=cache,
                                           templates=templates)
    if engine != "auto":
        raise ValueError(f"unknown decompose engine {engine!r}")
    if cache is None:
        cache = DecomposeCache()
    if templates is None:
        from repro.synthesis.templates import DEFAULT_TEMPLATES
        templates = DEFAULT_TEMPLATES

    # ------------------------------------------------------------------
    # Phase 1: resolve every gate, dedupe and collect uncached matrices.
    # ------------------------------------------------------------------
    # plan entries: ("1q", Gate) | ("value", block_value, gate)
    #             | ("key", matrix_key, gate)
    plan: list[tuple] = []
    resolved: dict[bytes, tuple[Circuit, complex] | None] = {}
    pending: list[tuple[bytes, np.ndarray]] = []
    pending_keys: set[bytes] = set()
    # template keys resolved through the matrix path this walk
    template_refs: dict[tuple, bytes] = {}
    template_inserts: list[tuple[tuple, bytes]] = []

    for gate in circuit:
        if gate.n_qubits == 1:
            plan.append(("1q", Gate("U1Q", gate.qubits,
                                    matrix=gate.unitary())))
            continue
        if gate.n_qubits != 2:
            raise ValueError(f"cannot decompose {gate.n_qubits}-qubit gate")
        template = gate.meta.get("template")
        if template is not None:
            tkey = templates.key(gateset, template, solve=solve, seed=seed)
            known = template_refs.get(tkey)
            if known is not None:
                # The scalar walk would hit the entry inserted by the
                # first occurrence (when the template memo stores at all).
                if templates.maxsize > 0:
                    templates.hits += 1
                else:
                    templates.misses += 1
                plan.append(("key", known, gate))
                continue
            hit = templates.lookup(tkey)
            if hit is not None:
                plan.append(("value", hit, gate))
                continue
            matrix = gate.unitary()
            mkey = cache_key(matrix)
            template_refs[tkey] = mkey
            template_inserts.append((tkey, mkey))
        else:
            matrix = gate.unitary()
            mkey = cache_key(matrix)
        if mkey in pending_keys:
            # Scalar would have inserted after the first occurrence and
            # hit now (or re-missed with storage disabled).
            if cache.maxsize > 0:
                cache.hits += 1
            else:
                cache.misses += 1
        elif mkey not in resolved:
            hit = cache.lookup(gateset, mkey, solve)
            if hit is not None:
                resolved[mkey] = hit
            else:
                pending.append((mkey, matrix))
                pending_keys.add(mkey)
        else:
            # Repeat of a store-resolved key: replay the scalar lookup so
            # counters and LRU recency stay identical.
            cache.lookup(gateset, mkey, solve)
        plan.append(("key", mkey, gate))

    # ------------------------------------------------------------------
    # Phase 2: one batched synthesis call for all misses, then emit.
    # ------------------------------------------------------------------
    if pending:
        blocks = gateset.decompose_batch([m for _, m in pending],
                                         solve=solve, seed=seed)
        for (mkey, _), value in zip(pending, blocks):
            resolved[mkey] = value
            cache.insert(gateset, mkey, solve, value)
    for tkey, mkey in template_inserts:
        templates.insert(tkey, resolved[mkey])

    lowered = Circuit(circuit.n_qubits)
    for entry in plan:
        if entry[0] == "1q":
            lowered.append(entry[1])
            continue
        _, ref, gate = entry
        block, _ = ref if entry[0] == "value" else resolved[ref]
        a, b = gate.qubits
        for small in block:
            mapped = tuple(a if q == 0 else b for q in small.qubits)
            lowered.append(Gate(small.name, mapped, small.params,
                                small.matrix, meta=dict(small.meta)))
    return merge_single_qubit_gates(lowered)


def decompose_circuit_reference(circuit: Circuit, gateset: GateSet, *,
                                solve: bool = False, seed: int = 0,
                                cache: DecomposeCache | None = None,
                                templates=None) -> Circuit:
    """Scalar per-gate lowering walk (the pre-batching reference).

    Kept verbatim as the bit-identity oracle for the two-phase walk; the
    perf smoke and the equivalence tests run both and compare outputs
    byte for byte.
    """
    if cache is None:
        cache = DecomposeCache()
    if templates is None:
        from repro.synthesis.templates import DEFAULT_TEMPLATES
        templates = DEFAULT_TEMPLATES
    lowered = Circuit(circuit.n_qubits)
    for gate in circuit:
        if gate.n_qubits == 1:
            lowered.append(Gate("U1Q", gate.qubits, matrix=gate.unitary()))
            continue
        if gate.n_qubits != 2:
            raise ValueError(f"cannot decompose {gate.n_qubits}-qubit gate")
        template = gate.meta.get("template")
        if template is not None:
            block, _ = templates.get(gateset, gate, template, solve=solve,
                                     seed=seed, cache=cache)
        else:
            block, _ = cache.get(gateset, gate.unitary(), solve, seed)
        a, b = gate.qubits
        for small in block:
            mapped = tuple(a if q == 0 else b for q in small.qubits)
            lowered.append(Gate(small.name, mapped, small.params,
                                small.matrix, meta=dict(small.meta)))
    return merge_single_qubit_gates(lowered)
