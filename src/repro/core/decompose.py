"""Final gate decomposition pass (paper Figure 2, last stage).

Runs *after* all permutation-aware passes, so the same routed/scheduled
circuit retargets to any hardware basis.  Each application-level two-qubit
block (term exponential, unified gate, SWAP, dressed SWAP) becomes basis
two-qubit gates plus single-qubit gates; adjacent single-qubit gates are
fused afterwards.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.transforms import merge_single_qubit_gates
from repro.synthesis.gateset import GateSet

# Decomposition results for repeated unitaries (bare SWAPs especially)
# are cached by matrix bytes.
_CACHE_LIMIT = 4096


class DecomposeCache:
    """LRU-bounded memo of two-qubit decompositions.

    Keyed by ``(gateset, solve, matrix bytes)``; at most ``maxsize``
    entries are retained, evicting least-recently-used first (the old
    behaviour -- silently refusing new entries once full -- pessimised
    exactly the workloads long enough to fill the cache).  ``hits`` /
    ``misses`` count lookups; sweep reports surface them next to the
    pipeline-cache counters.
    """

    def __init__(self, maxsize: int = _CACHE_LIMIT) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple[str, bool, bytes],
                                 tuple[Circuit, complex]] = OrderedDict()

    def get(self, gateset: GateSet, matrix: np.ndarray, solve: bool,
            seed: int) -> tuple[Circuit, complex]:
        key = (gateset.name, solve, np.round(matrix, 12).tobytes())
        hit = self._store.get(key)
        if hit is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return hit
        self.misses += 1
        value = gateset.decompose(matrix, solve=solve, seed=seed)
        if self.maxsize > 0:
            self._store[key] = value
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)
        return value

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        """Lookup counters plus current occupancy."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._store), "maxsize": self.maxsize}


def decompose_circuit(circuit: Circuit, gateset: GateSet, *,
                      solve: bool = False, seed: int = 0,
                      cache: DecomposeCache | None = None,
                      templates=None) -> Circuit:
    """Lower an application-level circuit to the hardware basis.

    ``solve=False`` (the benchmark mode) produces placeholder single-qubit
    gates but exact basis-gate counts and depth structure; ``solve=True``
    produces unitary-exact circuits.

    Gates carrying a ``meta["template"]`` key (term-structure signature
    plus resolved angles, attached by the schedule emitter and by
    ``Gate.bind``) are looked up through ``templates`` (a
    :class:`~repro.synthesis.templates.TemplateCache`, defaulting to the
    shared module instance): repeat bindings of the same term structure
    skip both the factor fold and the matrix-bytes keying.  The template
    layer delegates to ``cache`` on miss, so its blocks are bit-identical
    to the plain path.
    """
    if cache is None:
        cache = DecomposeCache()
    if templates is None:
        from repro.synthesis.templates import DEFAULT_TEMPLATES
        templates = DEFAULT_TEMPLATES
    lowered = Circuit(circuit.n_qubits)
    for gate in circuit:
        if gate.n_qubits == 1:
            lowered.append(Gate("U1Q", gate.qubits, matrix=gate.unitary()))
            continue
        if gate.n_qubits != 2:
            raise ValueError(f"cannot decompose {gate.n_qubits}-qubit gate")
        template = gate.meta.get("template")
        if template is not None:
            block, _ = templates.get(gateset, gate, template, solve=solve,
                                     seed=seed, cache=cache)
        else:
            block, _ = cache.get(gateset, gate.unitary(), solve, seed)
        a, b = gate.qubits
        for small in block:
            mapped = tuple(a if q == 0 else b for q in small.qubits)
            lowered.append(Gate(small.name, mapped, small.params,
                                small.matrix, meta=dict(small.meta)))
    return merge_single_qubit_gates(lowered)
