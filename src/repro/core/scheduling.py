"""Gate scheduling (paper Section III-D).

Two schedulers:

* :func:`schedule_no_device` -- connectivity-free scheduling by greedy
  graph colouring (NetworkX), used for the "NoMap" baseline circuits
  against which compilation overhead is measured.

* :func:`schedule_alap` -- the permutation-aware *hybrid* scheduler
  (Algorithm 2).  Processing runs backwards from the final qubit map:
  at each reverse cycle every unscheduled circuit operator that is NN in
  the current map and whose qubits are free is emitted (operators carry
  no ordering among themselves); a SWAP is emitted only when every
  operator routed to a later map has been scheduled (the only real
  dependencies are operator-on-SWAP).  Reversing the cycle list yields an
  ALAP schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.routing import QubitMap, RoutedProblem, RoutedSwap
from repro.hamiltonians.trotter import (
    OneQubitOperator,
    TrotterStep,
    TwoQubitOperator,
)
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.quantum.params import UnboundParameterError, factor_template_key

_SWAP_MATRIX = standard_gate_unitary("SWAP")


@dataclass
class ScheduledItem:
    """One entry of the scheduled application-level circuit."""

    kind: str                              # "op" | "swap" | "dressed"
    physical_pair: tuple[int, int]
    cycle: int
    operator: TwoQubitOperator | None = None
    swap: RoutedSwap | None = None


@dataclass
class ScheduledCircuit:
    """Application-level schedule plus the map bookkeeping."""

    n_physical: int
    items: list[ScheduledItem]
    initial_map: QubitMap
    final_map: QubitMap
    one_qubit_ops: list[OneQubitOperator] = field(default_factory=list)

    @property
    def n_cycles(self) -> int:
        if not self.items:
            return 0
        return max(item.cycle for item in self.items) + 1

    def to_circuit(self) -> Circuit:
        """Application-level circuit on physical qubits (pre-decomposition).

        Two-qubit operators become ``APP2Q`` gates carrying their exact
        unitaries; dressed SWAPs carry ``SWAP @ U``; bare SWAPs are SWAP
        gates.  Single-qubit exponentials are appended at the end, on
        the *final* physical position of their logical qubit.

        The qubit map each item executes under is threaded through the
        single forward walk (a dressed item orients by the map *before*
        its own SWAP applies), so emitting the circuit is O(items)
        instead of replaying every earlier SWAP per item.
        """
        circuit = Circuit(self.n_physical)
        current = self.initial_map
        for item in sorted(self.items, key=lambda i: (i.cycle, i.physical_pair)):
            p, q = item.physical_pair
            if item.kind == "op":
                op = item.operator
                if op.unitary is None:
                    raise UnboundParameterError(op.parameters)
                matrix = _oriented(op.unitary, op, p, q, current)
                meta = {"label": op.label}
                if op.factors:
                    meta["template"] = factor_template_key(
                        op.factors, matrix is not op.unitary, False
                    )
                circuit.append(Gate("APP2Q", (p, q), matrix=matrix,
                                    meta=meta))
            elif item.kind == "dressed":
                inner = item.swap.dressed_with
                if inner.unitary is None:
                    raise UnboundParameterError(inner.parameters)
                matrix = _oriented(inner.unitary, inner, p, q, current)
                meta = {"label": f"swap*{inner.label}"}
                if inner.factors:
                    meta["template"] = factor_template_key(
                        inner.factors, matrix is not inner.unitary, True
                    )
                circuit.append(Gate("DRESSED_SWAP", (p, q),
                                    matrix=_SWAP_MATRIX @ matrix,
                                    meta=meta))
                current = current.after_swap(item.physical_pair)
            else:
                circuit.append(Gate("SWAP", (p, q)))
                current = current.after_swap(item.physical_pair)
        final = self.final_map
        for op in self.one_qubit_ops:
            if op.unitary is None:
                raise UnboundParameterError(op.parameters)
            circuit.append(Gate("APP1Q", (final.physical(op.qubit),),
                                matrix=op.unitary,
                                meta={"label": op.label}))
        return circuit


def _oriented(matrix: np.ndarray, operator: TwoQubitOperator, p: int, q: int,
              qmap: QubitMap) -> np.ndarray:
    """Operator unitary re-ordered to physical qubit order ``(p, q)``.

    ``operator.unitary`` is stored with the smaller *logical* qubit as the
    first tensor factor.  If that logical qubit currently sits on ``q``
    (the larger physical index is emitted second), the factors must swap.
    """
    u_small, _v_large = operator.pair
    if qmap.physical(u_small) == p:
        return matrix
    return _SWAP_MATRIX @ matrix @ _SWAP_MATRIX


def schedule_alap(routed: RoutedProblem, seed: int = 0,
                  *, hybrid: bool = True) -> ScheduledCircuit:
    """Algorithm 2: permutation-aware hybrid ALAP scheduling.

    With ``hybrid=False`` the scheduler degrades to a generic
    dependency-respecting ALAP pass (each operator is pinned to the map
    the router assigned it to), which is the comparison point of the
    scheduling ablation (Figure 6a vs 6b).
    """
    device = routed.device
    n_maps = len(routed.maps)
    unscheduled_gates = list(routed.gates)
    # SWAP i transitions map i -> i+1; in reverse order, swap i may only
    # execute once every gate assigned to maps > i has been scheduled.
    pending_swaps = list(enumerate(routed.swaps))
    gates_by_map = np.zeros(n_maps, dtype=int)
    for gate in unscheduled_gates:
        gates_by_map[gate.map_index] += 1

    items: list[ScheduledItem] = []
    current = routed.final_map
    cycle = 0
    guard = 0
    # Number of unscheduled gates assigned to maps *later* than the next
    # SWAP to emit (``pending_swaps[-1]``): the swap may only execute
    # once this hits zero.  Maintained incrementally -- decremented when
    # such a gate is scheduled, re-derived over the skipped index range
    # when a swap pops -- instead of re-summing ``gates_by_map`` per
    # check.  ``pending_swaps`` indices are ascending and consumed from
    # the end, so "a later swap remains" is one comparison on the tail.
    blocking = 0
    if pending_swaps:
        blocking = int(gates_by_map[pending_swaps[-1][0] + 1 :].sum())
    while unscheduled_gates or pending_swaps:
        guard += 1
        if guard > 100 * (len(routed.gates) + len(routed.swaps) + 2):
            raise RuntimeError("scheduler failed to converge")
        occupied: set[int] = set()
        emitted = False
        # 1. circuit operators NN in the current map with free qubits
        still: list = []
        for gate in unscheduled_gates:
            u, v = gate.operator.pair
            pu, pv = current.physical(u), current.physical(v)
            if hybrid:
                feasible = device.are_neighbors(pu, pv)
            else:
                # generic scheduler: only in its assigned map's region of
                # the reverse pass (i.e. once all later swaps are done)
                feasible = (
                    device.are_neighbors(pu, pv)
                    and not (pending_swaps
                             and pending_swaps[-1][0] >= gate.map_index)
                )
            if not feasible or pu in occupied or pv in occupied:
                still.append(gate)
                continue
            pair = (min(pu, pv), max(pu, pv))
            items.append(ScheduledItem("op", pair, cycle, operator=gate.operator))
            occupied.update(pair)
            gates_by_map[gate.map_index] -= 1
            if pending_swaps and gate.map_index > pending_swaps[-1][0]:
                blocking -= 1
            emitted = True
        unscheduled_gates = still
        # 2. SWAPs, in reverse routing order, when nothing later blocks
        while pending_swaps:
            index, swap = pending_swaps[-1]
            if blocking > 0:
                break
            p, q = swap.physical_pair
            if p in occupied or q in occupied:
                break
            kind = "dressed" if swap.is_dressed else "swap"
            # The dressed operator executes at the swap's own position;
            # the map seen by to_circuit handles orientation.
            items.append(ScheduledItem(kind, (min(p, q), max(p, q)), cycle,
                                       swap=swap))
            occupied.update((p, q))
            current = current.after_swap(swap.physical_pair)
            pending_swaps.pop()
            if pending_swaps:
                # everything later than ``index`` is scheduled (blocking
                # was 0); add the maps between the new top and ``index``
                new_top = pending_swaps[-1][0]
                blocking = int(gates_by_map[new_top + 1 : index + 1].sum())
            emitted = True
        if not emitted and (unscheduled_gates or pending_swaps):
            # Nothing emitted means nothing was blocked by this cycle's
            # occupancy either (``occupied`` only fills when something
            # emits), so the state cannot change on a later cycle:
            # waiting would loop forever.  This is a genuine deadlock --
            # the routed data is inconsistent with the scheduling mode.
            raise RuntimeError(
                f"scheduler deadlock at reverse cycle {cycle}: "
                f"{len(unscheduled_gates)} operator(s) and "
                f"{len(pending_swaps)} SWAP(s) remain, but no operator is "
                f"nearest-neighbour{' in its assigned map' if not hybrid else ''} "
                f"in the current map and the next SWAP is blocked; the "
                f"schedule state no longer changes between cycles, so "
                f"advancing time cannot free it (inconsistent routing data?)"
            )
        cycle += 1

    # reverse cycles: ALAP
    total = max((item.cycle for item in items), default=-1) + 1
    for item in items:
        item.cycle = total - 1 - item.cycle
    return ScheduledCircuit(
        n_physical=device.n_qubits,
        items=items,
        initial_map=routed.maps[0],
        final_map=routed.final_map,
        one_qubit_ops=list(routed.step.one_qubit_ops),
    )


def schedule_no_device(step: TrotterStep, seed: int = 0) -> Circuit:
    """Connectivity-free scheduling by greedy graph colouring (NetworkX).

    Produces the "NoMap" baseline circuit: operators conflict iff they
    share a qubit; colour classes become circuit layers.
    """
    ops = step.two_qubit_ops
    conflict = nx.Graph()
    conflict.add_nodes_from(range(len(ops)))
    for i, a in enumerate(ops):
        for j in range(i + 1, len(ops)):
            if set(a.pair) & set(ops[j].pair):
                conflict.add_edge(i, j)
    colors = nx.coloring.greedy_color(conflict, strategy="largest_first")
    circuit = Circuit(step.n_qubits)
    for layer in sorted(set(colors.values())):
        for i, op in enumerate(ops):
            if colors[i] == layer:
                circuit.append(op.to_gate())
    for op in step.one_qubit_ops:
        circuit.append(op.to_gate())
    return circuit
