"""The pass-pipeline substrate every compiler in this repo runs on.

The paper presents 2QAN as a six-stage pipeline (Figure 2): circuit
unitary unifying, qubit mapping, permutation-aware routing, SWAP
dressing, hybrid scheduling, gate decomposition.  This module makes that
structure explicit and shared:

* :class:`CompilationContext` -- the IR threaded through a compilation:
  the problem, the target device/gate set, and every artifact a stage
  produces (assignment, routed problem, schedule, hardware circuit),
  plus per-pass wall-time and the decomposition cache handle.
* :class:`Pass` -- the stage protocol: ``run(ctx) -> ctx``.  A pass
  reads what earlier passes left on the context and writes its own
  artifact back.  Passes are tiny, stateless-by-default objects, so an
  ablation is a pass swap rather than a boolean knob buried in a driver.
* :class:`PassPipeline` -- an ordered pass list with per-pass timing.
  ``pipeline.run(ctx)`` executes the passes in order and records one
  ``ctx.timings[pass.name]`` entry per executed pass.
* :class:`CompilationResult` -- the single result type shared by 2QAN
  and every baseline (the former ``BaselineResult`` is a deprecated
  alias).

The concrete 2QAN passes (:class:`UnifyPass`, :class:`MapPass`,
:class:`RoutePass`, :class:`SchedulePass`, :class:`DecomposePass`) live
here; baseline-specific passes live next to their compilers in
:mod:`repro.baselines`.  Compiler *names* resolve to configured
pipelines through :mod:`repro.core.registry`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import ClassVar, Protocol, runtime_checkable

import numpy as np

from repro.core.cancel import CancelToken
from repro.core.decompose import DecomposeCache, decompose_circuit
from repro.core.metrics import CircuitMetrics
from repro.core.routing import QubitMap, RoutedProblem, route
from repro.core.scheduling import ScheduledCircuit, schedule_alap
from repro.core.unify import unify_circuit_operators
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep
from repro.mapping.placement import best_of_k_mapping
from repro.mapping.qap import qap_from_problem
from repro.quantum.circuit import Circuit
from repro.synthesis.gateset import GateSet, get_gateset


def resolve_gateset(gateset: str | GateSet) -> GateSet:
    """Accept a gate-set name or object; return the object."""
    return get_gateset(gateset) if isinstance(gateset, str) else gateset


# ----------------------------------------------------------------------
# The compilation IR
# ----------------------------------------------------------------------
@dataclass
class CompilationContext:
    """Everything a pass may read or write during one compilation.

    Inputs (set by the driver): ``step``, ``device``, ``gateset``,
    ``seed``, ``cache`` and optionally ``initial`` (a fixed qubit
    assignment that mapping passes honour instead of searching).

    Artifacts (set by passes): ``working`` (the possibly-unified
    problem), ``assignment``/``qap_cost``, ``routed``, ``scheduled``,
    ``app_circuit`` (application-level, pre-decomposition),
    ``circuit`` (hardware basis), ``metrics``, the SWAP counters and the
    logical->physical maps.  ``timings`` collects one wall-time entry
    per executed pass, keyed by the pass name.
    """

    step: TrotterStep
    gateset: GateSet
    device: Device | None = None
    seed: int = 0
    cache: DecomposeCache | None = None
    initial: np.ndarray | None = None
    binding: dict[str, float] | None = None
    cancel: CancelToken | None = None

    working: TrotterStep | None = None
    assignment: np.ndarray | None = None
    qap_cost: float = math.nan
    routed: RoutedProblem | None = None
    scheduled: ScheduledCircuit | None = None
    app_circuit: Circuit | None = None
    circuit: Circuit | None = None
    metrics: CircuitMetrics | None = None
    n_swaps: int = 0
    n_dressed: int = 0
    initial_map: QubitMap | None = None
    final_map: QubitMap | None = None
    timings: dict[str, float] = field(default_factory=dict)
    cache_events: dict[str, str] = field(default_factory=dict)

    def require(self, attribute: str) -> object:
        """Fetch an artifact a pass depends on, or fail loudly."""
        value = getattr(self, attribute)
        if value is None:
            raise ValueError(
                f"pass requires context.{attribute}; is an earlier pass "
                f"missing from the pipeline?"
            )
        return value


@runtime_checkable
class Pass(Protocol):
    """One pipeline stage: consume a context, return it enriched.

    Passes may additionally declare three class attributes consumed by
    the content-addressed cache (:mod:`repro.cache`):

    * ``reads`` -- the context fields the pass consumes (its cache key);
    * ``writes`` -- the artifact fields it produces (its cache value);
    * ``fingerprint_ignore`` -- configuration fields that cannot change
      the output (e.g. worker counts) and must not fragment the cache.

    A pass without declarations is still cacheable: it is keyed on the
    full context and snapshots every artifact field, which can only
    over-invalidate, never serve a stale artifact.
    """

    name: str

    def run(self, ctx: CompilationContext) -> CompilationContext: ...


@dataclass(frozen=True)
class PassPipeline:
    """An ordered list of passes executed with per-pass timing."""

    passes: tuple[Pass, ...]

    def __init__(self, passes) -> None:
        object.__setattr__(self, "passes", tuple(passes))

    def run(self, ctx: CompilationContext) -> CompilationContext:
        for stage in self.passes:
            if ctx.cancel is not None:
                ctx.cancel.checkpoint(stage.name)
            start = time.perf_counter()
            result = stage.run(ctx)
            elapsed = time.perf_counter() - start
            if result is None:
                raise TypeError(
                    f"pass {stage.name!r} returned None; "
                    f"run(ctx) must return the context"
                )
            ctx = result
            ctx.timings[stage.name] = ctx.timings.get(stage.name, 0.0) + elapsed
        return ctx

    # -- introspection / surgery (ablations are pass swaps) ------------
    def names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.passes)

    def replaced(self, name: str, stage: Pass) -> "PassPipeline":
        """A new pipeline with the ``name`` stage swapped for ``stage``."""
        if name not in self.names():
            raise ValueError(f"no pass named {name!r} in {self.names()}")
        return PassPipeline(
            stage if existing.name == name else existing
            for existing in self.passes
        )

    def without(self, name: str) -> "PassPipeline":
        """A new pipeline with the ``name`` stage removed."""
        if name not in self.names():
            raise ValueError(f"no pass named {name!r} in {self.names()}")
        return PassPipeline(s for s in self.passes if s.name != name)


# ----------------------------------------------------------------------
# The unified result type
# ----------------------------------------------------------------------
@dataclass
class CompilationResult:
    """Everything the evaluation needs from one compilation.

    Shared by 2QAN and every baseline; fields a compiler does not
    produce stay at their defaults (``routed``/``scheduled`` are
    ``None`` for baselines, ``qap_cost`` is NaN where no QAP instance
    was solved).  ``timings`` holds one entry per executed pass.
    """

    circuit: Circuit                    # hardware-basis circuit
    metrics: CircuitMetrics
    qap_cost: float = math.nan
    timings: dict[str, float] = field(default_factory=dict)
    cache_events: dict[str, str] = field(default_factory=dict)
    scheduled: ScheduledCircuit | None = None
    routed: RoutedProblem | None = None
    app_circuit: Circuit | None = None
    n_swaps: int = 0
    n_dressed: int = 0
    initial_map: QubitMap | None = None
    final_map: QubitMap | None = None


def result_from_context(ctx: CompilationContext) -> CompilationResult:
    """Package a fully-run context into a :class:`CompilationResult`."""
    if ctx.circuit is None or ctx.metrics is None:
        raise ValueError("pipeline did not produce a hardware circuit; "
                         "is a decomposition/scheduling pass missing?")
    return CompilationResult(
        circuit=ctx.circuit,
        metrics=ctx.metrics,
        qap_cost=ctx.qap_cost,
        timings=dict(ctx.timings),
        cache_events=dict(ctx.cache_events),
        scheduled=ctx.scheduled,
        routed=ctx.routed,
        app_circuit=ctx.app_circuit,
        n_swaps=ctx.n_swaps,
        n_dressed=ctx.n_dressed,
        initial_map=ctx.initial_map,
        final_map=ctx.final_map,
    )


def run_pipeline(pipeline: PassPipeline, step: TrotterStep, *,
                 gateset: str | GateSet, device: Device | None = None,
                 seed: int = 0, cache: DecomposeCache | None = None,
                 initial: np.ndarray | None = None,
                 binding: dict[str, float] | None = None,
                 cancel: CancelToken | None = None,
                 ) -> CompilationResult:
    """Build a context, run ``pipeline`` over it, package the result."""
    ctx = CompilationContext(
        step=step,
        gateset=resolve_gateset(gateset),
        device=device,
        seed=seed,
        cache=cache if cache is not None else DecomposeCache(),
        initial=initial,
        binding=dict(binding) if binding else None,
        cancel=cancel,
    )
    return result_from_context(pipeline.run(ctx))


# ----------------------------------------------------------------------
# The 2QAN passes (Figure 2 stages 1-6)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnifyPass:
    """Stage 1: merge same-pair term exponentials into SU(4) blocks.

    With ``enabled=False`` the problem passes through untouched (the
    paper's unify ablation); the pass still runs so the timings record
    stays shaped the same.
    """

    enabled: bool = True
    name: str = "unify"

    reads: ClassVar[tuple[str, ...]] = ("step",)
    writes: ClassVar[tuple[str, ...]] = ("working",)

    def run(self, ctx: CompilationContext) -> CompilationContext:
        ctx.working = (unify_circuit_operators(ctx.step) if self.enabled
                       else ctx.step)
        return ctx


@dataclass(frozen=True)
class MapPass:
    """Stage 2: QAP-formulated placement via best-of-k Tabu search.

    Honours a fixed ``ctx.initial`` assignment when the driver provides
    one (scoring it on the QAP instance instead of searching).

    The Tabu search runs on the vectorized delta-table kernel
    (:meth:`repro.mapping.qap.QAPInstance.swap_delta_matrix` plus the
    Taillard-style O(n^2) incremental updates); interaction-count flows
    and hop-count distances are integer-valued, so the kernel is exact
    and the selected mapping is bit-identical to the old scalar scan --
    see "Mapping performance" in ``docs/architecture.md``.

    ``jobs > 1`` fans the Tabu trials out over a process pool; per-trial
    seeding is identical to the serial loop, so the selected mapping is
    bit-identical for every worker count (which is why ``jobs`` is
    excluded from the pass's cache fingerprint).
    """

    trials: int = 5
    jobs: int = 1
    name: str = "mapping"

    reads: ClassVar[tuple[str, ...]] = ("working", "device", "seed",
                                        "initial")
    writes: ClassVar[tuple[str, ...]] = ("assignment", "qap_cost")
    fingerprint_ignore: ClassVar[tuple[str, ...]] = ("jobs",)

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        device = ctx.require("device")
        instance = qap_from_problem(working, device)
        if ctx.initial is None:
            mapping = best_of_k_mapping(instance, k=self.trials,
                                        seed=ctx.seed, jobs=self.jobs)
            ctx.assignment, ctx.qap_cost = mapping.assignment, float(mapping.cost)
        else:
            ctx.assignment = np.asarray(ctx.initial)
            ctx.qap_cost = float(instance.cost(ctx.assignment))
        return ctx


@dataclass(frozen=True)
class RoutePass:
    """Stages 3+4: permutation-aware routing with optional SWAP dressing."""

    dress: bool = True
    criteria: tuple[str, ...] = ("count", "depth", "dress")
    name: str = "routing"

    reads: ClassVar[tuple[str, ...]] = ("working", "device", "assignment",
                                        "seed")
    writes: ClassVar[tuple[str, ...]] = ("routed", "n_swaps", "n_dressed")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        device = ctx.require("device")
        assignment = ctx.require("assignment")
        routed = route(working, device, assignment, seed=ctx.seed,
                       dress=self.dress, criteria=self.criteria)
        ctx.routed = routed
        ctx.n_swaps = routed.n_swaps
        ctx.n_dressed = routed.n_dressed
        return ctx


@dataclass(frozen=True)
class SchedulePass:
    """Stage 5: permutation-aware hybrid ALAP scheduling (Algorithm 2)."""

    hybrid: bool = True
    name: str = "scheduling"

    reads: ClassVar[tuple[str, ...]] = ("routed", "seed")
    writes: ClassVar[tuple[str, ...]] = ("scheduled", "initial_map",
                                         "final_map")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        routed = ctx.require("routed")
        scheduled = schedule_alap(routed, seed=ctx.seed, hybrid=self.hybrid)
        ctx.scheduled = scheduled
        ctx.initial_map = scheduled.initial_map
        ctx.final_map = scheduled.final_map
        return ctx


@dataclass(frozen=True)
class BindPass:
    """Bind symbolic parameters into concrete unitaries.

    The seam of the structure/parameter split: every pass before it is
    *structural* (operates on pairs, interaction counts and factor
    structure, never on matrix entries) and runs once per circuit shape;
    every pass after it sees only concrete unitaries.  The pass resolves
    ``ctx.binding`` into the scheduled operators and any already-present
    circuits, preserving object identity where artifacts alias each
    other (e.g. baselines that publish ``app_circuit is circuit``).

    On a fully-concrete compilation with no binding the pass is a no-op,
    so it sits in every pipeline (keeping the one-timing-entry-per-pass
    shape) without perturbing existing behaviour.  Unknown parameter
    names in the binding are ignored -- a sweep may carry one mapping for
    circuits touching different parameter subsets -- while *missing*
    names raise :class:`~repro.quantum.params.UnboundParameterError`
    before any downstream pass can trip over a ``None`` unitary.
    """

    name: str = "binding"

    reads: ClassVar[tuple[str, ...]] = ("scheduled", "app_circuit",
                                        "circuit", "binding")
    writes: ClassVar[tuple[str, ...]] = ("scheduled", "app_circuit",
                                         "circuit")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        from repro.core.bind import bind_scheduled, context_parameters
        from repro.quantum.params import UnboundParameterError

        binding = ctx.binding or {}
        names = context_parameters(ctx)
        if not names:
            return ctx
        missing = names - binding.keys()
        if missing:
            raise UnboundParameterError(missing)
        if ctx.scheduled is not None:
            ctx.scheduled = bind_scheduled(ctx.scheduled, binding)
        if ctx.app_circuit is not None:
            bound_app = ctx.app_circuit.bind(binding)
            if ctx.circuit is ctx.app_circuit:
                ctx.circuit = bound_app
            elif ctx.circuit is not None:
                ctx.circuit = ctx.circuit.bind(binding)
            ctx.app_circuit = bound_app
        elif ctx.circuit is not None:
            ctx.circuit = ctx.circuit.bind(binding)
        return ctx


@dataclass(frozen=True)
class DecomposePass:
    """Stage 6: lower to the hardware basis and collect circuit metrics.

    Shared verbatim by 2QAN and the baselines: lowers ``ctx.app_circuit``
    (materialising it from the schedule when a scheduling pass produced
    one) through the KAK/Weyl synthesis with the context's cache, then
    records :class:`CircuitMetrics` including the SWAP counters earlier
    passes left on the context.
    """

    solve: bool = False
    name: str = "decomposition"

    reads: ClassVar[tuple[str, ...]] = ("app_circuit", "scheduled",
                                        "gateset", "seed", "n_swaps",
                                        "n_dressed")
    writes: ClassVar[tuple[str, ...]] = ("app_circuit", "circuit",
                                         "metrics")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        if ctx.app_circuit is None:
            scheduled = ctx.require("scheduled")
            ctx.app_circuit = scheduled.to_circuit()
        ctx.circuit = decompose_circuit(ctx.app_circuit, ctx.gateset,
                                        solve=self.solve, seed=ctx.seed,
                                        cache=ctx.cache)
        ctx.metrics = CircuitMetrics.from_circuit(
            ctx.circuit, n_swaps=ctx.n_swaps, n_dressed=ctx.n_dressed
        )
        return ctx


# ----------------------------------------------------------------------
# Layer repetition (the paper's odd/even reuse scheme, Section V-C/D)
# ----------------------------------------------------------------------
def repeat_layers(first: CompilationResult, layers: list[Circuit],
                  n_qubits: int, *,
                  relower_seconds: float = 0.0) -> CompilationResult:
    """Combine per-layer circuits into one multi-layer result.

    The single place where layer circuits are concatenated and the
    combined metrics derived -- previously triplicated across
    ``compile``/``compile_layers``/``compile_trotter``.  ``first`` is the
    one genuinely-compiled layer whose mapping/routing artifacts the
    combined result inherits; ``layers`` are the per-layer hardware
    circuits (already reversed for even layers where applicable).

    ``relower_seconds`` is the total wall time spent re-lowering reused
    layers; it is *added* to the first layer's decomposition timing so
    the combined ``timings`` reflect the whole multi-layer compilation
    rather than just layer one.
    """
    if not layers:
        raise ValueError("need at least one layer")
    if len(layers) == 1 and relower_seconds == 0.0:
        return first
    combined = Circuit(n_qubits)
    for layer in layers:
        combined.extend(layer.gates)
    n = len(layers)
    metrics = CircuitMetrics.from_circuit(
        combined,
        n_swaps=first.n_swaps * n,
        n_dressed=first.n_dressed * n,
    )
    timings = dict(first.timings)
    if relower_seconds:
        timings["decomposition"] = (
            timings.get("decomposition", 0.0) + relower_seconds
        )
    return replace(
        first,
        circuit=combined,
        metrics=metrics,
        timings=timings,
        n_swaps=metrics.n_swaps,
        n_dressed=metrics.n_dressed,
    )


# ----------------------------------------------------------------------
# Compiler base: a configured pipeline plus the context plumbing
# ----------------------------------------------------------------------
class PipelineCompiler:
    """Mixin turning a pass list into a ``compile()`` entry point.

    Concrete compilers (dataclasses holding their knobs) implement
    :meth:`build_pipeline`; this mixin provides the context construction
    and result packaging shared by all of them.  Subclasses must expose
    ``gateset``, ``seed`` and ``cache`` attributes and may expose
    ``device`` (compilers that target no device simply omit it).  The
    shared ``__post_init__`` resolves gate-set names and defaults the
    decomposition cache, so subclasses normally need none of their own.
    """

    def __post_init__(self) -> None:
        if getattr(self, "gateset", None) is not None:
            self.gateset = resolve_gateset(self.gateset)
        if hasattr(self, "cache") and self.cache is None:
            self.cache = DecomposeCache()

    def build_pipeline(self) -> PassPipeline:
        raise NotImplementedError

    def compile(self, step: TrotterStep,
                initial: np.ndarray | None = None,
                binding: dict[str, float] | None = None,
                cancel: CancelToken | None = None,
                ) -> CompilationResult:
        """Compile one Trotter step / QAOA layer through the pipeline.

        ``binding`` maps symbolic parameter names to angles; it is
        required exactly when ``step`` is symbolic (the pipeline's bind
        pass resolves it before decomposition).  ``cancel`` is checked
        at every pass boundary; a fired token aborts the compilation
        with :class:`~repro.core.cancel.CompilationCancelled`.
        """
        return run_pipeline(
            self.build_pipeline(), step,
            gateset=self.gateset, device=getattr(self, "device", None),
            seed=self.seed, cache=self.cache, initial=initial,
            binding=binding, cancel=cancel,
        )
