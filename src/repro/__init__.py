"""repro: a from-scratch reproduction of the 2QAN quantum compiler.

2QAN (Lao & Browne, ISCA 2022) compiles 2-local qubit Hamiltonian
simulation circuits -- Ising / XY / Heisenberg models and QAOA -- onto
NISQ devices by exploiting the free permutation of product-formula
operators in every compilation pass.

Quickstart::

    from repro import TwoQANCompiler, nnn_heisenberg, trotter_step
    from repro.devices import montreal

    step = trotter_step(nnn_heisenberg(10, seed=0))
    compiler = TwoQANCompiler(device=montreal(), gateset="CNOT")
    result = compiler.compile(step)
    print(result.metrics)

Subpackages
-----------
``repro.quantum``      circuit IR, Pauli algebra, statevector simulation
``repro.synthesis``    KAK/Weyl decomposition, CNOT/CZ/SYC/iSWAP retargeting
``repro.hamiltonians`` benchmark models, QAOA, Trotterization
``repro.devices``      Sycamore / Montreal / Aspen / Manhattan topologies
``repro.mapping``      QAP formulation + Tabu search placement
``repro.core``         the 2QAN passes (routing, unifying, scheduling)
``repro.baselines``    generic and application-specific comparison compilers
``repro.noise``        fidelity estimation for the hardware experiment
``repro.analysis``     sweep harness, overhead tables, runtime analysis
"""

from repro.core.compiler import CompilationResult, TwoQANCompiler, compile_step
from repro.core.metrics import CircuitMetrics
from repro.core.registry import compiler_names, get_compiler
from repro.hamiltonians.models import nnn_heisenberg, nnn_ising, nnn_xy
from repro.hamiltonians.qaoa import QAOAProblem, make_qaoa_problem
from repro.hamiltonians.trotter import TrotterStep, trotter_step
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate

__version__ = "1.0.0"

__all__ = [
    "TwoQANCompiler",
    "CompilationResult",
    "compile_step",
    "get_compiler",
    "compiler_names",
    "CircuitMetrics",
    "Circuit",
    "Gate",
    "TrotterStep",
    "trotter_step",
    "nnn_ising",
    "nnn_xy",
    "nnn_heisenberg",
    "QAOAProblem",
    "make_qaoa_problem",
    "__version__",
]
