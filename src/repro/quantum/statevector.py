"""Statevector simulation of circuits.

The simulator reshapes the ``2**n`` amplitude vector into an ``n``-leg
tensor and applies each gate with :func:`numpy.tensordot`, so cost per gate
is ``O(2**n)``; circuits up to roughly 20 qubits are practical.  Qubit 0 is
the most significant bit of the computational-basis index, consistent with
:meth:`repro.quantum.circuit.Circuit.unitary`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate


@dataclass
class Statevector:
    """An ``n``-qubit pure state."""

    amplitudes: np.ndarray
    n_qubits: int

    @classmethod
    def zero(cls, n_qubits: int) -> "Statevector":
        """The all-|0> state."""
        amp = np.zeros(2**n_qubits, dtype=complex)
        amp[0] = 1.0
        return cls(amp, n_qubits)

    @classmethod
    def plus(cls, n_qubits: int) -> "Statevector":
        """The uniform superposition |+>^n (the QAOA initial state)."""
        dim = 2**n_qubits
        amp = np.full(dim, 1.0 / np.sqrt(dim), dtype=complex)
        return cls(amp, n_qubits)

    def copy(self) -> "Statevector":
        return Statevector(self.amplitudes.copy(), self.n_qubits)

    def apply_gate(self, gate: Gate) -> None:
        """Apply a gate in place."""
        k = gate.n_qubits
        if k == 0:
            return
        if max(gate.qubits) >= self.n_qubits:
            raise ValueError(f"gate {gate} outside register of {self.n_qubits}")
        tensor = self.amplitudes.reshape((2,) * self.n_qubits)
        mat = gate.unitary().reshape((2,) * (2 * k))
        targets = list(gate.qubits)
        moved = np.tensordot(mat, tensor, axes=(list(range(k, 2 * k)), targets))
        # tensordot puts the gate's output legs first; move them back.
        remaining = [q for q in range(self.n_qubits) if q not in targets]
        position = {q: idx for idx, q in enumerate(targets)}
        position.update({q: k + idx for idx, q in enumerate(remaining)})
        axes = [position[q] for q in range(self.n_qubits)]
        self.amplitudes = moved.transpose(axes).reshape(-1)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.n_qubits != self.n_qubits:
            raise ValueError("circuit and state have different register sizes")
        for gate in circuit:
            self.apply_gate(gate)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes) ** 2

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation of a diagonal observable given by its diagonal."""
        if diagonal.shape != (2**self.n_qubits,):
            raise ValueError("diagonal has the wrong dimension")
        return float(np.real(np.dot(self.probabilities(), diagonal)))

    def expectation(self, operator: np.ndarray) -> float:
        """Expectation of a dense Hermitian operator."""
        return float(np.real(np.vdot(self.amplitudes, operator @ self.amplitudes)))

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        return float(np.abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def permute(self, permutation: dict[int, int]) -> "Statevector":
        """Relabel qubits: amplitude of qubit ``q`` moves to ``permutation[q]``.

        Used to undo the qubit relabelling produced by routing SWAPs when
        checking compiled-circuit semantics.  ``permutation`` must be a
        bijection on all ``n_qubits`` qubit labels; a partial or
        non-bijective dict would silently scramble amplitudes.
        """
        labels = set(range(self.n_qubits))
        if set(permutation) != labels or set(permutation.values()) != labels:
            raise ValueError(
                f"permutation must map every qubit 0..{self.n_qubits - 1} "
                f"to a distinct qubit; got {permutation!r}"
            )
        axes = [0] * self.n_qubits
        for src, dst in permutation.items():
            axes[dst] = src
        tensor = self.amplitudes.reshape((2,) * self.n_qubits)
        return Statevector(tensor.transpose(axes).reshape(-1), self.n_qubits)


def simulate(circuit: Circuit, initial: Statevector | None = None) -> Statevector:
    """Run a circuit on |0...0> (or a supplied initial state)."""
    state = Statevector.zero(circuit.n_qubits) if initial is None else initial.copy()
    state.apply_circuit(circuit)
    return state
