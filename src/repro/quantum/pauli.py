"""Pauli strings and their algebra.

A :class:`PauliString` is a tensor product of single-qubit Pauli operators
acting on named qubits, e.g. ``X0*X1`` or ``Z2*Z5``.  It is the basic term
type of the 2-local Hamiltonians compiled by 2QAN.  The class supports

* commutation checks (needed to argue which operator permutations a generic
  gate-level compiler may *not* perform),
* dense matrices on a given number of qubits, and
* exponentials ``exp(i * theta * P)`` which are the building blocks of
  product-formula (Trotter) circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

import numpy as np

_PAULI_1Q = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    "Y": np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    "Z": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
}

_VALID_LABELS = frozenset(_PAULI_1Q)


def pauli_matrix(label: str) -> np.ndarray:
    """Return the 2x2 matrix of a single-qubit Pauli operator.

    Parameters
    ----------
    label:
        One of ``"I"``, ``"X"``, ``"Y"``, ``"Z"``.
    """
    try:
        return _PAULI_1Q[label].copy()
    except KeyError:
        raise ValueError(f"unknown Pauli label {label!r}") from None


@dataclass(frozen=True)
class PauliString:
    """A product of single-qubit Paulis on distinct qubits.

    Attributes
    ----------
    paulis:
        Mapping from qubit index to Pauli label (identity factors omitted).
        Stored as a sorted tuple of ``(qubit, label)`` pairs so the object
        is hashable.
    """

    paulis: tuple[tuple[int, str], ...] = field(default=())

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for qubit, label in self.paulis:
            if label not in _VALID_LABELS:
                raise ValueError(f"unknown Pauli label {label!r}")
            if qubit < 0:
                raise ValueError(f"negative qubit index {qubit}")
            if qubit in seen:
                raise ValueError(f"duplicate qubit {qubit} in Pauli string")
            seen.add(qubit)
        # Normalise: drop identities, sort by qubit.
        cleaned = tuple(sorted((q, p) for q, p in self.paulis if p != "I"))
        object.__setattr__(self, "paulis", cleaned)

    @classmethod
    def from_label(cls, label: str, qubits: tuple[int, ...] | None = None) -> "PauliString":
        """Build from a dense label, e.g. ``"XIZ"`` acts X on 0 and Z on 2.

        If ``qubits`` is given, ``label[i]`` acts on ``qubits[i]`` instead of
        qubit ``i``.
        """
        if qubits is None:
            qubits = tuple(range(len(label)))
        if len(qubits) != len(label):
            raise ValueError("label and qubits must have the same length")
        return cls(tuple((q, p) for q, p in zip(qubits, label)))

    @property
    def qubits(self) -> tuple[int, ...]:
        """The qubits on which this string acts non-trivially."""
        return tuple(q for q, _ in self.paulis)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return len(self.paulis)

    def label_on(self, qubit: int) -> str:
        """Pauli label acting on ``qubit`` (``"I"`` if untouched)."""
        for q, p in self.paulis:
            if q == qubit:
                return p
        return "I"

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two Pauli strings commute.

        Two Pauli strings commute iff they anti-commute on an even number of
        shared qubits.
        """
        anti = 0
        mine = dict(self.paulis)
        for qubit, label in other.paulis:
            p = mine.get(qubit)
            if p is not None and p != label:
                anti += 1
        return anti % 2 == 0

    def to_matrix(self, n_qubits: int) -> np.ndarray:
        """Dense ``2**n x 2**n`` matrix on ``n_qubits`` qubits.

        Qubit 0 is the *most significant* tensor factor, matching the
        ordering used by :mod:`repro.quantum.statevector`.
        """
        if self.paulis and max(self.qubits) >= n_qubits:
            raise ValueError(
                f"Pauli string acts on qubit {max(self.qubits)} but only "
                f"{n_qubits} qubits were requested"
            )
        factors = [_PAULI_1Q[self.label_on(q)] for q in range(n_qubits)]
        return reduce(np.kron, factors, np.eye(1, dtype=complex))

    def exp(self, theta: float) -> np.ndarray:
        """Dense matrix of ``exp(i * theta * P)`` on the *support* qubits.

        The returned matrix acts on ``self.weight`` qubits ordered by
        increasing qubit index.  Because every Pauli string squares to the
        identity, ``exp(i t P) = cos(t) I + i sin(t) P``.
        """
        k = self.weight
        if k == 0:
            return np.exp(1j * theta) * np.eye(1, dtype=complex)
        compact = PauliString.from_label("".join(p for _, p in self.paulis))
        mat = compact.to_matrix(k)
        dim = 2**k
        return np.cos(theta) * np.eye(dim, dtype=complex) + 1j * np.sin(theta) * mat

    def __mul__(self, other: "PauliString") -> tuple[complex, "PauliString"]:
        """Product of two Pauli strings as ``(phase, string)``."""
        phase = 1.0 + 0.0j
        result: dict[int, str] = dict(self.paulis)
        for qubit, label in other.paulis:
            if qubit not in result:
                result[qubit] = label
                continue
            p, product_phase, product_label = _single_product(result[qubit], label)
            del p  # left label already known
            phase *= product_phase
            if product_label == "I":
                result.pop(qubit)
            else:
                result[qubit] = product_label
        return phase, PauliString(tuple(result.items()))

    def __str__(self) -> str:
        if not self.paulis:
            return "I"
        return "*".join(f"{p}{q}" for q, p in self.paulis)


_PRODUCT_TABLE: dict[tuple[str, str], tuple[complex, str]] = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


def _single_product(left: str, right: str) -> tuple[str, complex, str]:
    phase, label = _PRODUCT_TABLE[(left, right)]
    return left, complex(phase), label
