"""Symbolic parameters for the structure/parameter split.

A :class:`Param` is a named placeholder usable wherever a float angle
goes today: Hamiltonian time steps, QAOA ``gamma``/``beta`` angles,
rotation-gate parameters.  Circuits and operator lists built from
symbolic angles carry *structure only*; the structural compiler passes
(unify, map, route, schedule) run on them unchanged, and a later
``bind({name: value})`` materialises the concrete unitaries.

Bit-identity discipline
-----------------------
The whole point of the split is that binding after structural
compilation must be *bit-identical* to compiling the concrete circuit.
Two rules make that hold:

* a :class:`Param` is affine (``scale * theta + shift``) and its
  arithmetic mirrors the float expressions the concrete builders
  evaluate: ``t * coefficient`` stores ``scale=coefficient`` and
  evaluates ``scale * value`` -- IEEE-754 multiplication is
  commutative, so the bits match the concrete ``value * coefficient``;
  ``-gamma`` stores ``scale=-1.0`` (multiplying by -1.0 flips exactly
  the sign bit).
* a :class:`PauliExponential` factor records *which builder* produced
  a concrete matrix (``kind``), and binding calls that exact builder --
  never an algebraically equal reformulation.

Merged (unified) operators concatenate their factor tuples in time
order; :meth:`SymbolicUnitary.bind` folds them with each new factor
matrix multiplied on the left, reproducing the association order of the
concrete unify pass exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.quantum.pauli import PauliString


class UnboundParameterError(ValueError):
    """A symbolic value was used where a concrete one is required."""

    def __init__(self, names) -> None:
        self.names = tuple(sorted(names))
        label = ", ".join(self.names) if self.names else "<none>"
        super().__init__(
            f"unbound symbolic parameter(s): {label}; bind them first "
            f"(e.g. circuit.bind({{'gamma': 0.4}}))"
        )


@dataclass(frozen=True)
class Param:
    """An affine function ``scale * theta + shift`` of a named angle."""

    name: str
    scale: float = 1.0
    shift: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")

    # ------------------------------------------------------------------
    # arithmetic (floats only; Param * Param has no affine form)
    # ------------------------------------------------------------------
    def __neg__(self) -> "Param":
        return replace(self, scale=-self.scale, shift=-self.shift)

    def __mul__(self, other: object) -> "Param":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return replace(self, scale=self.scale * other,
                       shift=self.shift * other)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Param":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return replace(self, scale=self.scale / other,
                       shift=self.shift / other)

    def __add__(self, other: object) -> "Param":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return replace(self, shift=self.shift + other)

    __radd__ = __add__

    def __sub__(self, other: object) -> "Param":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return replace(self, shift=self.shift - other)

    def __rsub__(self, other: object) -> "Param":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return (-self).__add__(other)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, binding: dict[str, float]) -> float:
        if self.name not in binding:
            raise UnboundParameterError((self.name,))
        value = self.scale * float(binding[self.name])
        # skip the no-op addition: `x + 0.0` is bit-identical to `x`
        # except for x = -0.0, which no angle expression produces here,
        # and skipping keeps pure products exactly mirroring the
        # concrete `value * coefficient` float path.
        if self.shift != 0.0:
            value = value + self.shift
        return value

    def __str__(self) -> str:
        text = self.name
        if self.scale != 1.0:
            text = f"{self.scale:g}*{text}"
        if self.shift != 0.0:
            text = f"{text}{self.shift:+g}"
        return text


def is_symbolic_value(value: object) -> bool:
    """True when ``value`` is a :class:`Param` (rather than a number)."""
    return isinstance(value, Param)


def resolve_value(value, binding: dict[str, float] | None):
    """Evaluate ``value`` under ``binding`` when symbolic, else pass it
    through unchanged."""
    if isinstance(value, Param):
        return value.evaluate(binding or {})
    return value


def parameter_names(value) -> frozenset[str]:
    """The parameter names a (possibly symbolic) value depends on."""
    if isinstance(value, Param):
        return frozenset((value.name,))
    return frozenset()


# ----------------------------------------------------------------------
# Exponential builders
#
# These are THE concrete builders: the front ends
# (repro.hamiltonians.trotter / .qaoa) call them for concrete angles and
# record them by ``kind`` in symbolic factors, so a later bind runs the
# byte-for-byte identical code path.
# ----------------------------------------------------------------------
def exp_zz(angle: float) -> np.ndarray:
    """``exp(i angle ZZ)`` (the QAOA cost-layer convention)."""
    phase = np.exp(1j * angle)
    return np.diag([phase, np.conj(phase), np.conj(phase), phase])


def exp_x(angle: float) -> np.ndarray:
    """``exp(i angle X)`` (the QAOA mixer convention)."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, 1j * s], [1j * s, c]], dtype=complex)


def exp_pauli(label: str, angle: float) -> np.ndarray:
    """``exp(i angle P)`` for a compact Pauli label (Trotter terms)."""
    return PauliString.from_label(label).exp(angle)


_FACTOR_KINDS = {
    "pauli": lambda label, angle: exp_pauli(label, angle),
    "zz": lambda label, angle: exp_zz(angle),
    "x": lambda label, angle: exp_x(angle),
}


@dataclass(frozen=True)
class PauliExponential:
    """One exponential factor of an application-level operator.

    ``kind`` selects the concrete matrix builder (``"pauli"`` for
    :meth:`PauliString.exp`, ``"zz"``/``"x"`` for the QAOA-convention
    builders); ``label`` is the compact Pauli label for ``kind="pauli"``
    and empty otherwise; ``angle`` is a float or a :class:`Param`.
    """

    kind: str
    label: str
    angle: float | Param

    def __post_init__(self) -> None:
        if self.kind not in _FACTOR_KINDS:
            raise ValueError(
                f"unknown factor kind {self.kind!r}; "
                f"expected one of {sorted(_FACTOR_KINDS)}"
            )

    @property
    def parameters(self) -> frozenset[str]:
        return parameter_names(self.angle)

    def resolved(self, binding: dict[str, float] | None) -> "PauliExponential":
        if not isinstance(self.angle, Param):
            return self
        return replace(self, angle=self.angle.evaluate(binding or {}))

    def matrix(self, binding: dict[str, float] | None = None) -> np.ndarray:
        angle = resolve_value(self.angle, binding)
        return _FACTOR_KINDS[self.kind](self.label, angle)

    def signature(self) -> str:
        """Structure-only key for the decomposition-template cache."""
        return f"{self.kind}:{self.label}"


# Local SWAP matrix (same values as the standard-gate table; defined
# here so the quantum.gates module can depend on this one without a
# cycle).  Matrix products against it are exact permutations of rows or
# columns, so orientation/dressing applied at bind time carries the
# same bits as the concrete materialisation paths.
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


@dataclass(frozen=True)
class SymbolicUnitary:
    """A lazily-bound unitary: factor fold + structural SWAP transforms.

    ``bind`` reproduces the concrete pipeline's float path exactly:

    * fold: ``U = M(f_1)``, then ``U = M(f_j) @ U`` for each later
      factor -- the association order of the unify pass's incremental
      ``other.unitary @ acc.unitary`` merges;
    * ``conjugate_swap``: ``U = SWAP @ U @ SWAP`` (physical-orientation
      flip, as applied by the routers and the schedule walk);
    * ``pre_swap``: ``U = SWAP @ U`` (dressed-SWAP composition).
    """

    factors: tuple[PauliExponential, ...]
    conjugate_swap: bool = False
    pre_swap: bool = False

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("symbolic unitary needs at least one factor")

    @property
    def parameters(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for factor in self.factors:
            names |= factor.parameters
        return names

    def bind(self, binding: dict[str, float] | None = None) -> np.ndarray:
        missing = sorted(
            name for name in self.parameters
            if name not in (binding or {})
        )
        if missing:
            raise UnboundParameterError(missing)
        unitary = self.factors[0].matrix(binding)
        for factor in self.factors[1:]:
            unitary = factor.matrix(binding) @ unitary
        if self.conjugate_swap:
            unitary = _SWAP @ unitary @ _SWAP
        if self.pre_swap:
            unitary = _SWAP @ unitary
        return unitary

    def template_key(self, binding: dict[str, float] | None = None,
                     ) -> tuple:
        """(signature, resolved angles, transforms) -- uniquely
        determines the bound matrix for the template cache."""
        signature = tuple(f.signature() for f in self.factors)
        angles = tuple(
            float(resolve_value(f.angle, binding)) for f in self.factors
        )
        return (signature, angles, self.conjugate_swap, self.pre_swap)


def factor_template_key(factors, conjugated: bool = False,
                        dressed: bool = False) -> tuple:
    """Template key for a concrete (resolved-angle) factor tuple.

    Same layout as :meth:`SymbolicUnitary.template_key`: signatures,
    float angles, and the orientation/dressing flags that determine the
    emitted matrix.  Factors must already carry float angles.
    """
    signatures = tuple(f.signature() for f in factors)
    angles = tuple(float(f.angle) for f in factors)
    return (signatures, angles, bool(conjugated), bool(dressed))


def probe_binding(names, base: float = 0.37, stride: float = 0.11,
                  ) -> dict[str, float]:
    """A deterministic generic binding for structural probes.

    Used where a structural pass needs *some* concrete matrix whose
    algebraic properties (e.g. commutation) are generic in the angles --
    distinct, irrational-ish values avoid special-angle coincidences.
    """
    return {name: base + stride * i for i, name in enumerate(sorted(names))}
