"""Plain-text circuit rendering for debugging and examples.

Draws one row per qubit with gates placed in their ASAP layers::

    q0: ─H──●──────SW─
            │      │
    q1: ────X──●───SW─
               │
    q2: ───────ZZ─────

Two-qubit gates show a box label on both wires (CNOT uses the
conventional control dot / target cross) with a vertical connector.
"""

from __future__ import annotations

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate

_LABELS = {
    "CNOT": ("*", "X"),
    "CZ": ("*", "*"),
    "SWAP": ("x", "x"),
    "ISWAP": ("iS", "iS"),
    "SYC": ("SY", "SY"),
    "DRESSED_SWAP": ("DS", "DS"),
    "APP2Q": ("U2", "U2"),
}


def _one_qubit_label(gate: Gate) -> str:
    name = gate.name.upper()
    if name in ("U1Q", "APP1Q"):
        return "u"
    if gate.params:
        return f"{name}({gate.params[0]:.2g})"
    return name


def draw(circuit: Circuit, max_width: int = 120) -> str:
    """Render the circuit as fixed-width text (truncated at max_width)."""
    layers = circuit.layers()
    n = circuit.n_qubits
    # Build per-layer column texts.
    columns: list[dict[int, str]] = []
    connectors: list[set[int]] = []
    for layer in layers:
        column: dict[int, str] = {}
        spans: set[int] = set()
        for gate in layer:
            if gate.n_qubits == 1:
                column[gate.qubits[0]] = _one_qubit_label(gate)
            else:
                top, bottom = min(gate.qubits), max(gate.qubits)
                first, second = _LABELS.get(gate.name.upper(), ("o", "o"))
                if gate.qubits[0] == top:
                    column[top], column[bottom] = first, second
                else:
                    column[top], column[bottom] = second, first
                spans.update(range(top, bottom))
        columns.append(column)
        connectors.append(spans)

    widths = [
        max((len(text) for text in column.values()), default=1)
        for column in columns
    ]
    wire_rows: list[str] = []
    gap_rows: list[str] = []
    for q in range(n):
        wire = [f"q{q}: "]
        gap = [" " * len(f"q{q}: ")]
        for column, spans, width in zip(columns, connectors, widths):
            text = column.get(q, "")
            wire.append("─" + text.center(width, "─") + "─")
            gap.append(" " + ("│" if q in spans else " ").center(width) + " ")
        wire_rows.append("".join(wire))
        gap_rows.append("".join(gap))
    lines = []
    for q in range(n):
        lines.append(wire_rows[q][:max_width])
        if q < n - 1 and gap_rows[q].strip():
            lines.append(gap_rows[q][:max_width])
    return "\n".join(lines)
