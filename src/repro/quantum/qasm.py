"""OpenQASM 2.0 export of compiled circuits.

A downstream user who compiles with this library ultimately wants to run
the circuit on a real backend; OpenQASM 2.0 is the lingua franca.  Gates
with explicit matrices are exported via their ZYZ angles as ``u3``;
two-qubit gates map to ``cx`` / ``cz`` / ``swap`` natively and to a
standard ``gate`` definition for iSWAP and SYC (built from native QASM
primitives, verified in the tests against the matrix definitions).
"""

from __future__ import annotations

import io

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.synthesis.one_qubit import zyz_angles

# iSWAP and SYC are not QASM primitives; define them once per file.
# iswap q0,q1 = S(x)S . H(q0) . CX 01 . CX 10 . H(q1)  (standard identity)
_ISWAP_DEF = """gate iswap a,b {
  s a; s b; h a; cx a,b; cx b,a; h b;
}"""

# SYC = fSim(pi/2, pi/6) = iSWAP^dag-like core + controlled phase.
# Built as iswap_dg then cphase(-pi/6): fsim(theta,phi) with theta=pi/2 is
# (iSWAP)^dag up to the cphase.  Verified numerically in the tests.
_SYC_DEF = """gate syc a,b {
  h b; cx b,a; cx a,b; h a; sdg a; sdg b;
  cu1(-pi/6) a,b;
}"""


_SIMPLE_TWO_QUBIT = {"CNOT": "cx", "CZ": "cz", "SWAP": "swap"}
_SIMPLE_ONE_QUBIT = {
    "I": "id", "X": "x", "Y": "y", "Z": "z", "H": "h", "S": "s",
    "SDG": "sdg", "T": "t",
}
_PARAMETRIC = {"RX": "rx", "RY": "ry", "RZ": "rz"}


def to_qasm(circuit: Circuit, *, include_measure: bool = False) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    out = io.StringIO()
    out.write("OPENQASM 2.0;\n")
    out.write('include "qelib1.inc";\n')
    names = {g.name.upper() for g in circuit}
    if "ISWAP" in names:
        out.write(_ISWAP_DEF + "\n")
    if "SYC" in names:
        out.write(_SYC_DEF + "\n")
    out.write(f"qreg q[{circuit.n_qubits}];\n")
    if include_measure:
        out.write(f"creg c[{circuit.n_qubits}];\n")
    for gate in circuit:
        out.write(_gate_line(gate) + "\n")
    if include_measure:
        out.write("measure q -> c;\n")
    return out.getvalue()


def _gate_line(gate: Gate) -> str:
    name = gate.name.upper()
    qubits = ",".join(f"q[{q}]" for q in gate.qubits)
    if name in _SIMPLE_TWO_QUBIT:
        return f"{_SIMPLE_TWO_QUBIT[name]} {qubits};"
    if name in _SIMPLE_ONE_QUBIT:
        return f"{_SIMPLE_ONE_QUBIT[name]} {qubits};"
    if name in _PARAMETRIC:
        return f"{_PARAMETRIC[name]}({gate.params[0]:.12g}) {qubits};"
    if name == "ISWAP":
        return f"iswap {qubits};"
    if name == "SYC":
        return f"syc {qubits};"
    if gate.n_qubits == 1:
        _, phi, theta, lam = zyz_angles(gate.unitary())
        return (f"u3({theta:.12g},{phi:.12g},{lam:.12g}) {qubits};")
    raise ValueError(
        f"cannot export {gate.name} on {gate.qubits}: decompose the "
        "circuit into a hardware basis first"
    )
