"""Quantum-circuit substrate: Pauli algebra, gates, circuits, simulation.

This subpackage provides everything the compiler needs from a quantum SDK,
implemented from scratch on top of numpy:

* :mod:`repro.quantum.pauli` -- Pauli strings and their algebra.
* :mod:`repro.quantum.gates` -- gate objects carrying explicit unitaries.
* :mod:`repro.quantum.circuit` -- a simple list-of-gates circuit IR with
  depth/layering utilities.
* :mod:`repro.quantum.statevector` -- an einsum-based statevector simulator.
* :mod:`repro.quantum.unitaries` -- unitary helpers (fidelity, equality up
  to global phase, Kronecker factorisation).
"""

from repro.quantum.pauli import PauliString, pauli_matrix
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import Statevector, simulate
from repro.quantum.qasm import to_qasm
from repro.quantum.drawing import draw
from repro.quantum.unitaries import (
    allclose_up_to_global_phase,
    average_gate_fidelity,
    closest_kron_factors,
    process_fidelity,
)

__all__ = [
    "PauliString",
    "pauli_matrix",
    "Gate",
    "standard_gate_unitary",
    "Circuit",
    "Statevector",
    "simulate",
    "allclose_up_to_global_phase",
    "average_gate_fidelity",
    "process_fidelity",
    "closest_kron_factors",
    "to_qasm",
    "draw",
]
