"""Circuit-level rewrites: single-qubit gate fusion and identity removal.

All target devices support arbitrary single-qubit rotations, so runs of
adjacent single-qubit gates on the same qubit fuse into one ``U1Q`` gate.
This keeps the gate-count and depth metrics honest: a decomposed circuit
is charged one single-qubit "slot" between entangling gates, exactly as
the paper's tooling (Qiskit/t|ket> 1q-optimisation) would produce.

The fusion fold is vectorized: one walk collects the per-qubit runs of
adjacent single-qubit gates (multi-qubit gates are barriers), then all
runs fold together as stacked 2x2 matmuls -- round ``j`` multiplies the
``j``-th gate of every still-active run onto its accumulator in one
gufunc call.  Per slice the stacked matmul reproduces the scalar
``matrix @ accumulated`` byte for byte, so the result is bit-identical
to the retained scalar walk (:func:`merge_single_qubit_gates_reference`).
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate


def _is_phase(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    return (
        abs(matrix[0, 1]) < atol
        and abs(matrix[1, 0]) < atol
        and abs(matrix[0, 0] - matrix[1, 1]) < atol
    )


def merge_single_qubit_gates(circuit: Circuit, atol: float = 1e-9) -> Circuit:
    """Fuse adjacent single-qubit gates; drop the ones that are a phase.

    Multi-qubit gates act as barriers on their qubits.  The result has at
    most one single-qubit gate per qubit between consecutive entangling
    gates, named ``U1Q`` with an explicit matrix.
    """
    # Pass 1: collect runs and the emission order.  ``pending`` mirrors
    # the scalar walk's dict operations exactly (get / setitem / pop), so
    # the end-of-circuit flush order is identical.
    runs: list[tuple[int, list[np.ndarray]]] = []   # (qubit, matrices)
    events: list[tuple] = []                        # ("run", id) | ("gate", g)
    pending: dict[int, int] = {}

    def flush(qubit: int) -> None:
        run_id = pending.pop(qubit, None)
        if run_id is not None:
            events.append(("run", run_id))

    for gate in circuit:
        if gate.n_qubits == 1:
            q = gate.qubits[0]
            run_id = pending.get(q)
            if run_id is None:
                pending[q] = len(runs)
                runs.append((q, [gate.unitary()]))
            else:
                runs[run_id][1].append(gate.unitary())
        else:
            for q in gate.qubits:
                flush(q)
            events.append(("gate", gate))
    for q in list(pending):
        flush(q)

    # Pass 2: fold every multi-gate run with stacked matmuls.  Round j
    # left-multiplies gate j of each run still active onto its
    # accumulator -- the same ``matrix @ accumulated`` op order the
    # scalar walk applies, one slice per run.
    folded: list[np.ndarray] = [mats[0] for _, mats in runs]
    long_ids = []
    for i, (_, mats) in enumerate(runs):
        if len(mats) == 1:
            continue
        if all(m.dtype == np.complex128 for m in mats):
            long_ids.append(i)
        else:
            # Exotic dtypes promote per-multiply in the scalar walk;
            # stacking would promote up front.  Fold those few scalar.
            result = mats[0]
            for matrix in mats[1:]:
                result = matrix @ result
            folded[i] = result
    if long_ids:
        acc = np.stack([runs[i][1][0] for i in long_ids])
        max_len = max(len(runs[i][1]) for i in long_ids)
        for j in range(1, max_len):
            active = [s for s, i in enumerate(long_ids)
                      if len(runs[i][1]) > j]
            mats = np.stack([runs[long_ids[s]][1][j] for s in active])
            acc[active] = np.matmul(mats, acc[active])
        for s, i in enumerate(long_ids):
            folded[i] = acc[s]

    merged = Circuit(circuit.n_qubits)
    for kind, payload in events:
        if kind == "gate":
            merged.append(payload)
            continue
        qubit, _ = runs[payload]
        matrix = folded[payload]
        if _is_phase(matrix, atol):
            continue
        merged.append(Gate("U1Q", (qubit,), matrix=matrix))
    return merged


def merge_single_qubit_gates_reference(circuit: Circuit,
                                       atol: float = 1e-9) -> Circuit:
    """Scalar per-gate fusion walk (the pre-vectorization reference).

    Kept verbatim as the bit-identity oracle for the vectorized fold.
    """
    pending: dict[int, np.ndarray] = {}
    merged = Circuit(circuit.n_qubits)

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None or _is_phase(matrix, atol):
            return
        merged.append(Gate("U1Q", (qubit,), matrix=matrix))

    for gate in circuit:
        if gate.n_qubits == 1:
            q = gate.qubits[0]
            accumulated = pending.get(q)
            matrix = gate.unitary()
            pending[q] = matrix if accumulated is None else matrix @ accumulated
        else:
            for q in gate.qubits:
                flush(q)
            merged.append(gate)
    for q in list(pending):
        flush(q)
    return merged


def count_entangling(circuit: Circuit) -> int:
    """Number of gates acting on two or more qubits."""
    return sum(1 for g in circuit if g.n_qubits >= 2)
