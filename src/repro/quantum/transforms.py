"""Circuit-level rewrites: single-qubit gate fusion and identity removal.

All target devices support arbitrary single-qubit rotations, so runs of
adjacent single-qubit gates on the same qubit fuse into one ``U1Q`` gate.
This keeps the gate-count and depth metrics honest: a decomposed circuit
is charged one single-qubit "slot" between entangling gates, exactly as
the paper's tooling (Qiskit/t|ket> 1q-optimisation) would produce.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate


def _is_phase(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    return (
        abs(matrix[0, 1]) < atol
        and abs(matrix[1, 0]) < atol
        and abs(matrix[0, 0] - matrix[1, 1]) < atol
    )


def merge_single_qubit_gates(circuit: Circuit, atol: float = 1e-9) -> Circuit:
    """Fuse adjacent single-qubit gates; drop the ones that are a phase.

    Multi-qubit gates act as barriers on their qubits.  The result has at
    most one single-qubit gate per qubit between consecutive entangling
    gates, named ``U1Q`` with an explicit matrix.
    """
    pending: dict[int, np.ndarray] = {}
    merged = Circuit(circuit.n_qubits)

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None or _is_phase(matrix, atol):
            return
        merged.append(Gate("U1Q", (qubit,), matrix=matrix))

    for gate in circuit:
        if gate.n_qubits == 1:
            q = gate.qubits[0]
            accumulated = pending.get(q)
            matrix = gate.unitary()
            pending[q] = matrix if accumulated is None else matrix @ accumulated
        else:
            for q in gate.qubits:
                flush(q)
            merged.append(gate)
    for q in list(pending):
        flush(q)
    return merged


def count_entangling(circuit: Circuit) -> int:
    """Number of gates acting on two or more qubits."""
    return sum(1 for g in circuit if g.n_qubits >= 2)
