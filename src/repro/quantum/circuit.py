"""A minimal circuit IR: an ordered list of gates on ``n_qubits`` qubits.

The IR is deliberately simple -- the compiler passes manipulate *lists of
two-qubit operators* most of the time and only produce a :class:`Circuit`
at the end.  The class provides the metrics the paper reports:

* ``depth()`` -- number of layers when gates are packed as-soon-as-possible,
* ``two_qubit_depth()`` -- layers counting only multi-qubit gates,
* gate counting helpers (``count``, ``n_two_qubit_gates``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.quantum.gates import Gate


@dataclass
class Circuit:
    """An ordered gate list with layering/metric utilities."""

    n_qubits: int
    gates: list[Gate] = field(default_factory=list)

    def __post_init__(self) -> None:
        for gate in self.gates:
            self._check(gate)

    def _check(self, gate: Gate) -> None:
        if gate.qubits and max(gate.qubits) >= self.n_qubits:
            raise ValueError(
                f"gate {gate} acts outside the {self.n_qubits}-qubit register"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> None:
        self._check(gate)
        self.gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        for gate in gates:
            self.append(gate)

    def add(self, name: str, *qubits: int, params: tuple[float, ...] = (),
            matrix: np.ndarray | None = None) -> None:
        """Convenience constructor-and-append."""
        self.append(Gate(name, tuple(qubits), params, matrix))

    def copy(self) -> "Circuit":
        return Circuit(self.n_qubits, list(self.gates))

    # ------------------------------------------------------------------
    # symbolic parameters
    # ------------------------------------------------------------------
    def parameters(self) -> frozenset[str]:
        """Names of unbound symbolic parameters across all gates."""
        names: frozenset[str] = frozenset()
        for gate in self.gates:
            names |= gate.parameters
        return names

    @property
    def is_symbolic(self) -> bool:
        return bool(self.parameters())

    def bind(self, mapping: dict[str, float]) -> "Circuit":
        """A concrete circuit with every symbolic angle resolved.

        Gates shared by identity (the same object appended twice) bind to
        the same concrete object, preserving aliasing.
        """
        memo: dict[int, Gate] = {}
        bound = []
        for gate in self.gates:
            key = id(gate)
            if key not in memo:
                memo[key] = gate.bind(mapping)
            bound.append(memo[key])
        return Circuit(self.n_qubits, bound)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str) -> int:
        """Number of gates with the given (case-insensitive) name."""
        key = name.upper()
        return sum(1 for g in self.gates if g.name.upper() == key)

    @property
    def n_two_qubit_gates(self) -> int:
        return sum(1 for g in self.gates if g.n_qubits >= 2)

    @property
    def n_single_qubit_gates(self) -> int:
        return sum(1 for g in self.gates if g.n_qubits == 1)

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Circuit depth under ASAP layering.

        With ``two_qubit_only`` single-qubit gates still occupy their qubits
        (they constrain packing) but layers containing only single-qubit
        gates are not counted; this matches the paper's "depth of two-qubit
        gates" metric.
        """
        frontier = [0] * self.n_qubits
        layer_has_2q: dict[int, bool] = {}
        for gate in self.gates:
            if not gate.qubits:
                continue
            start = max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = start + 1
            if gate.n_qubits >= 2:
                layer_has_2q[start] = True
            else:
                layer_has_2q.setdefault(start, False)
        if not layer_has_2q:
            return 0
        if two_qubit_only:
            return sum(1 for has in layer_has_2q.values() if has)
        return max(layer_has_2q) + 1

    def two_qubit_depth(self) -> int:
        """Depth counting only layers that contain a two-qubit gate."""
        return self.depth(two_qubit_only=True)

    def layers(self) -> list[list[Gate]]:
        """Greedy ASAP layering of the gate list."""
        frontier = [0] * self.n_qubits
        layered: list[list[Gate]] = []
        for gate in self.gates:
            if not gate.qubits:
                continue
            start = max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = start + 1
            while len(layered) <= start:
                layered.append([])
            layered[start].append(gate)
        return layered

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def unitary(self) -> np.ndarray:
        """Dense unitary of the whole circuit (small circuits only).

        Qubit 0 is the most significant bit of the row/column index.
        """
        if self.n_qubits > 12:
            raise ValueError("dense unitary limited to 12 qubits")
        dim = 2**self.n_qubits
        result = np.eye(dim, dtype=complex)
        for gate in self.gates:
            result = _expand(gate, self.n_qubits) @ result
        return result

    def reversed_two_qubit_order(self) -> "Circuit":
        """Circuit with the order of multi-qubit gates reversed.

        Single-qubit gates keep their relative position class (they are
        emitted after the reversed two-qubit list), matching the paper's
        treatment of even-numbered Trotter steps / QAOA layers.
        """
        two_q = [g for g in self.gates if g.n_qubits >= 2]
        one_q = [g for g in self.gates if g.n_qubits < 2]
        return Circuit(self.n_qubits, list(reversed(two_q)) + one_q)


def _expand(gate: Gate, n_qubits: int) -> np.ndarray:
    """Embed a k-qubit gate unitary into the full 2**n space."""
    small = gate.unitary()
    k = gate.n_qubits
    if k == 0:
        return np.eye(2**n_qubits, dtype=complex)
    tensor = small.reshape((2,) * (2 * k))
    identity = np.eye(2**n_qubits, dtype=complex).reshape((2,) * (2 * n_qubits))
    targets = list(gate.qubits)
    # Contract the gate's input legs (axes k..2k-1) with the identity's
    # output legs on the target qubits.  tensordot places the gate's output
    # legs first, followed by the identity's surviving output legs and then
    # all n input legs; transpose back to (outputs 0..n-1, inputs 0..n-1).
    contracted = np.tensordot(tensor, identity, axes=(list(range(k, 2 * k)), targets))
    remaining = [q for q in range(n_qubits) if q not in targets]
    out_position = {q: idx for idx, q in enumerate(targets)}
    out_position.update({q: k + idx for idx, q in enumerate(remaining)})
    axes = [out_position[q] for q in range(n_qubits)]
    axes += [n_qubits + q for q in range(n_qubits)]
    return contracted.transpose(axes).reshape(2**n_qubits, 2**n_qubits)
