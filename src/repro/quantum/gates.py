"""Gate objects for the circuit IR.

A :class:`Gate` records its name, the qubits it acts on, optional rotation
parameters, an explicit unitary matrix, and free-form metadata tags.  The
explicit matrix is central to 2QAN: the compiler manipulates *application
level* two-qubit unitaries (term exponentials, unified gates, dressed SWAPs)
long before any decomposition into a hardware basis happens, so the IR must
be able to carry arbitrary SU(4) blocks, not just named gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.quantum.params import (
    Param,
    SymbolicUnitary,
    UnboundParameterError,
    parameter_names,
    resolve_value,
)

_SQRT2 = math.sqrt(2.0)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    phase = np.exp(-0.5j * theta)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=complex)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _fsim(theta: float, phi: float) -> np.ndarray:
    c, s = math.cos(theta), math.sin(theta)
    return np.array(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [0, 0, 0, np.exp(-1j * phi)],
        ],
        dtype=complex,
    )


_FIXED_GATES: dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    "H": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "SDG": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "CNOT": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "CZ": np.diag([1, 1, 1, -1]).astype(complex),
    "SWAP": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    "ISWAP": np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    # Google Sycamore gate: fSim(pi/2, pi/6).
    "SYC": _fsim(math.pi / 2, math.pi / 6),
}

_PARAMETRIC_GATES = {
    "RX": (_rx, 1),
    "RY": (_ry, 1),
    "RZ": (_rz, 1),
    "U3": (_u3, 3),
    "FSIM": (_fsim, 2),
}


def standard_gate_unitary(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Unitary of a named standard gate.

    Supports the fixed gates (``X``, ``H``, ``CNOT``, ``CZ``, ``SWAP``,
    ``ISWAP``, ``SYC``, ...) and the parametric families ``RX``, ``RY``,
    ``RZ``, ``U3`` and ``FSIM``.
    """
    key = name.upper()
    if key in _FIXED_GATES:
        if params:
            raise ValueError(f"gate {name} takes no parameters")
        return _FIXED_GATES[key].copy()
    if key in _PARAMETRIC_GATES:
        func, arity = _PARAMETRIC_GATES[key]
        if len(params) != arity:
            raise ValueError(f"gate {name} takes {arity} parameter(s), got {len(params)}")
        return func(*params)
    raise ValueError(f"unknown standard gate {name!r}")


@dataclass(frozen=True)
class Gate:
    """One gate application in a circuit.

    Attributes
    ----------
    name:
        Human-readable gate name.  Standard names resolve their unitary
        automatically; compiler-generated unitaries use names such as
        ``"UNIFIED"`` or ``"DRESSED_SWAP"`` and must supply ``matrix``.
    qubits:
        Qubit indices the gate acts on, in tensor order (first index is the
        most significant factor of the matrix).
    params:
        Rotation angles for parametric gates; each entry is a float or a
        :class:`~repro.quantum.params.Param` placeholder.
    matrix:
        Explicit unitary; when ``None`` it is resolved from the name (or
        from ``symbolic`` once bound).
    symbolic:
        Lazily-resolved unitary (a
        :class:`~repro.quantum.params.SymbolicUnitary`); mutually
        exclusive with ``matrix``.  ``bind`` materialises it.
    meta:
        Free-form metadata (term labels, dressing provenance, ...).  Not
        hashed or compared.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float | Param, ...] = ()
    matrix: np.ndarray | None = field(default=None, compare=False, repr=False)
    symbolic: SymbolicUnitary | None = field(default=None, repr=False)
    meta: dict[str, Any] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"repeated qubit in gate {self.name}: {self.qubits}")
        if self.matrix is not None and self.symbolic is not None:
            raise ValueError(
                f"gate {self.name} cannot carry both a concrete matrix "
                f"and a symbolic unitary"
            )
        if self.matrix is not None:
            dim = 2 ** len(self.qubits)
            if self.matrix.shape != (dim, dim):
                raise ValueError(
                    f"matrix shape {self.matrix.shape} does not match "
                    f"{len(self.qubits)} qubit(s)"
                )

    @property
    def n_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    # ------------------------------------------------------------------
    # symbolic parameters
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> frozenset[str]:
        """Names of unbound symbolic parameters this gate depends on."""
        names: frozenset[str] = frozenset()
        for p in self.params:
            names |= parameter_names(p)
        if self.symbolic is not None:
            names |= self.symbolic.parameters
        return names

    @property
    def is_symbolic(self) -> bool:
        return bool(self.parameters)

    def bind(self, mapping: dict[str, float]) -> "Gate":
        """A concrete gate with every symbolic angle resolved.

        A gate carrying a fully-concrete ``symbolic`` unitary is also
        materialised (the factor fold runs with an empty binding), so the
        result never holds a :class:`SymbolicUnitary`.
        """
        if self.symbolic is None and not self.is_symbolic:
            return self
        params = tuple(resolve_value(p, mapping) for p in self.params)
        matrix = self.matrix
        meta = self.meta
        if self.symbolic is not None:
            matrix = self.symbolic.bind(mapping)
            # the resolved template key routes the bound gate through the
            # per-term-structure decomposition memo
            meta = dict(self.meta)
            meta["template"] = self.symbolic.template_key(mapping)
        return replace(self, params=params, matrix=matrix, symbolic=None,
                       meta=meta)

    def unitary(self) -> np.ndarray:
        """The gate unitary, resolving standard names when needed."""
        names = self.parameters
        if names:
            raise UnboundParameterError(names)
        if self.matrix is not None:
            return self.matrix
        if self.symbolic is not None:
            return self.symbolic.bind({})
        return standard_gate_unitary(self.name, self.params)

    def on(self, *qubits: int) -> "Gate":
        """The same gate applied to different qubits."""
        return replace(self, qubits=tuple(qubits))

    def with_meta(self, **meta: Any) -> "Gate":
        """Copy with extra metadata merged in."""
        merged = dict(self.meta)
        merged.update(meta)
        return replace(self, meta=merged)

    def __str__(self) -> str:
        qubits = ",".join(map(str, self.qubits))
        if self.params:
            params = ",".join(
                str(p) if isinstance(p, Param) else f"{p:.4g}"
                for p in self.params
            )
            return f"{self.name}({params})[{qubits}]"
        return f"{self.name}[{qubits}]"
