"""Unitary-matrix helpers shared across synthesis and verification."""

from __future__ import annotations

import numpy as np


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray,
                                atol: float = 1e-8) -> bool:
    """True when ``a = exp(i phi) * b`` for some phase ``phi``."""
    if a.shape != b.shape:
        return False
    # Align phases using the largest-magnitude entry of b.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def process_fidelity(actual: np.ndarray, target: np.ndarray) -> float:
    """Entanglement (process) fidelity ``|Tr(target^dag actual)|^2 / d^2``."""
    d = actual.shape[0]
    return float(np.abs(np.trace(target.conj().T @ actual)) ** 2 / d**2)


def average_gate_fidelity(actual: np.ndarray, target: np.ndarray) -> float:
    """Average gate fidelity, ``(d F_pro + 1) / (d + 1)``."""
    d = actual.shape[0]
    return float((d * process_fidelity(actual, target) + 1) / (d + 1))


def closest_kron_factors(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest Kronecker factorisation ``matrix ~ A (x) B`` for 4x4 input.

    Uses the Pitsianis--Van Loan rearrangement + rank-1 SVD truncation.  For
    matrices that are exactly a tensor product of 2x2 blocks the result is
    exact (up to a phase split between the two factors).
    """
    if matrix.shape != (4, 4):
        raise ValueError("closest_kron_factors expects a 4x4 matrix")
    # Rearrange so that kron(A, B) becomes outer(vec(A), vec(B)).
    blocks = matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(blocks)
    a = np.sqrt(s[0]) * u[:, 0].reshape(2, 2)
    b = np.sqrt(s[0]) * vh[0, :].reshape(2, 2)
    return a, b


def to_su2(matrix: np.ndarray) -> tuple[np.ndarray, complex]:
    """Rescale a 2x2 unitary into SU(2); returns ``(su2, phase)``.

    ``matrix = phase * su2`` with ``det(su2) = 1``.
    """
    det = np.linalg.det(matrix)
    phase = np.sqrt(det + 0j)
    return matrix / phase, phase


def to_su4(matrix: np.ndarray) -> tuple[np.ndarray, complex]:
    """Rescale a 4x4 unitary into SU(4); returns ``(su4, phase)``."""
    det = np.linalg.det(matrix)
    phase = det ** (1 / 4)
    return matrix / phase, phase


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-random unitary via QR of a Ginibre matrix."""
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def random_su2(rng: np.random.Generator) -> np.ndarray:
    """Haar-random SU(2) element."""
    u, _ = to_su2(random_unitary(2, rng))
    return u
