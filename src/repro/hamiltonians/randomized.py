"""Randomized product formulas (paper Section VII, future work).

The paper's closing discussion points to randomization approaches
(Childs-Ostrander-Su, Campbell) that permute the operator order in every
Trotter step to suppress coherent error accumulation.  2QAN is a natural
fit: since the compiler already treats the operator order as free, a
random permutation per step costs nothing extra to compile.

:func:`random_order_steps` produces per-step random permutations;
:func:`trotter_error` measures the spectral-norm error of a given
sequence of steps against the exact evolution, which the tests use to
confirm the textbook facts (second order beats first order; random
orderings average out coherent error).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.trotter import TrotterStep, trotter_step


def permuted_step(step: TrotterStep, rng: np.random.Generator) -> TrotterStep:
    """A Trotter step with its two-qubit operators randomly permuted."""
    order = rng.permutation(len(step.two_qubit_ops))
    return TrotterStep(
        step.n_qubits,
        [step.two_qubit_ops[i] for i in order],
        list(step.one_qubit_ops),
    )


def random_order_steps(hamiltonian: TwoLocalHamiltonian, n_steps: int,
                       total_time: float = 1.0, seed: int = 0,
                       ) -> list[TrotterStep]:
    """``n_steps`` first-order steps, each with a fresh random order."""
    rng = np.random.default_rng(seed)
    base = trotter_step(hamiltonian, t=total_time / n_steps)
    return [permuted_step(base, rng) for _ in range(n_steps)]


def fixed_order_steps(hamiltonian: TwoLocalHamiltonian, n_steps: int,
                      total_time: float = 1.0) -> list[TrotterStep]:
    """``n_steps`` identical first-order steps (the deterministic scheme)."""
    base = trotter_step(hamiltonian, t=total_time / n_steps)
    return [base] * n_steps


def trotter_error(hamiltonian: TwoLocalHamiltonian,
                  steps: list[TrotterStep],
                  total_time: float = 1.0) -> float:
    """Spectral-norm error of the product of steps vs exact evolution."""
    import scipy.linalg as sla

    exact = sla.expm(1j * total_time * hamiltonian.to_matrix())
    approx = np.eye(2**hamiltonian.n_qubits, dtype=complex)
    for step in steps:
        approx = step.circuit().unitary() @ approx
    return float(np.linalg.norm(approx - exact, ord=2))
