"""Randomized problem instances: product formulas and random graphs.

Randomized product formulas (paper Section VII, future work): the
paper's closing discussion points to randomization approaches
(Childs-Ostrander-Su, Campbell) that permute the operator order in every
Trotter step to suppress coherent error accumulation.  2QAN is a natural
fit: since the compiler already treats the operator order as free, a
random permutation per step costs nothing extra to compile.
:func:`random_order_steps` produces per-step random permutations;
:func:`trotter_error` measures the spectral-norm error of a given
sequence of steps against the exact evolution, which the tests use to
confirm the textbook facts (second order beats first order; random
orderings average out coherent error).

Weighted random-graph MaxCut generators
(:func:`weighted_regular_graph`, :func:`weighted_erdos_renyi_graph`,
:func:`weighted_maxcut_problem`) extend the QAOA-REG benchmark family
beyond unit weights: edge weights are drawn from a small *dyadic* set
(exact in float64), so weighted instances keep every bit-identity
property the compiler pipeline pins -- including the symbolic
bind-after-compile contract and the router's scaled-integer cost
arithmetic.  The sweep benchmark set exposes them as ``QAOA-WR-d``
(weighted random regular) and ``QAOA-ER`` (weighted Erdos-Renyi).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.trotter import TrotterStep, trotter_step

#: Default weight alphabet: dyadic rationals, exact in float64.
DYADIC_WEIGHTS = (0.5, 1.0, 1.5, 2.0)


def permuted_step(step: TrotterStep, rng: np.random.Generator) -> TrotterStep:
    """A Trotter step with its two-qubit operators randomly permuted."""
    order = rng.permutation(len(step.two_qubit_ops))
    return TrotterStep(
        step.n_qubits,
        [step.two_qubit_ops[i] for i in order],
        list(step.one_qubit_ops),
    )


def random_order_steps(hamiltonian: TwoLocalHamiltonian, n_steps: int,
                       total_time: float = 1.0, seed: int = 0,
                       ) -> list[TrotterStep]:
    """``n_steps`` first-order steps, each with a fresh random order."""
    rng = np.random.default_rng(seed)
    base = trotter_step(hamiltonian, t=total_time / n_steps)
    return [permuted_step(base, rng) for _ in range(n_steps)]


def fixed_order_steps(hamiltonian: TwoLocalHamiltonian, n_steps: int,
                      total_time: float = 1.0) -> list[TrotterStep]:
    """``n_steps`` identical first-order steps (the deterministic scheme)."""
    base = trotter_step(hamiltonian, t=total_time / n_steps)
    return [base] * n_steps


# ----------------------------------------------------------------------
# Weighted random-graph MaxCut generators
# ----------------------------------------------------------------------
def _assign_weights(graph: nx.Graph, rng: np.random.Generator,
                    weights: tuple[float, ...]) -> nx.Graph:
    """Attach one weight per edge, drawn in sorted-edge order so the
    instance is a deterministic function of the seed."""
    for u, v in sorted(tuple(sorted(e)) for e in graph.edges):
        draw = int(rng.integers(len(weights)))
        graph.edges[u, v]["weight"] = float(weights[draw])
    return graph


def weighted_regular_graph(degree: int, n_nodes: int, seed: int = 0,
                           weights: tuple[float, ...] = DYADIC_WEIGHTS,
                           ) -> nx.Graph:
    """A random ``degree``-regular graph with random dyadic edge weights."""
    if (degree * n_nodes) % 2 != 0:
        raise ValueError("degree * n_nodes must be even")
    graph = nx.random_regular_graph(degree, n_nodes, seed=seed)
    return _assign_weights(graph, np.random.default_rng(seed), weights)


def weighted_erdos_renyi_graph(n_nodes: int, p: float | None = None,
                               seed: int = 0,
                               weights: tuple[float, ...] = DYADIC_WEIGHTS,
                               ) -> nx.Graph:
    """A weighted G(n, p) MaxCut instance (default ``p = 3 / n``).

    The default edge probability keeps the expected degree at 3,
    matching the QAOA-REG-3 family's interaction density while varying
    the degree distribution.  Isolated qubits are kept (they simply
    carry no two-qubit terms); a graph with no edges at all is rejected
    because it is not a MaxCut instance.
    """
    if p is None:
        p = min(1.0, 3.0 / n_nodes)
    graph = nx.gnp_random_graph(n_nodes, p, seed=seed)
    if graph.number_of_edges() == 0:
        raise ValueError(
            f"G({n_nodes}, {p}) instance with seed {seed} has no edges; "
            f"pick another seed or a larger p"
        )
    return _assign_weights(graph, np.random.default_rng(seed), weights)


def weighted_maxcut_problem(n_qubits: int, kind: str = "regular",
                            degree: int = 3, seed: int = 0,
                            gammas: tuple = (0.35,),
                            betas: tuple = (-0.39,)):
    """A weighted MaxCut :class:`~repro.hamiltonians.qaoa.QAOAProblem`.

    ``kind`` selects the graph family (``"regular"`` or
    ``"erdos-renyi"``); angles may be floats or
    :class:`~repro.quantum.params.Param` placeholders.
    """
    from repro.hamiltonians.qaoa import QAOAProblem

    if kind == "regular":
        graph = weighted_regular_graph(degree, n_qubits, seed=seed)
    elif kind == "erdos-renyi":
        graph = weighted_erdos_renyi_graph(n_qubits, seed=seed)
    else:
        raise ValueError(f"unknown weighted-graph kind {kind!r}; "
                         f"expected 'regular' or 'erdos-renyi'")
    label = f"MAXCUT-W-{kind}-n{n_qubits}-s{seed}"
    return QAOAProblem(graph, tuple(gammas), tuple(betas), label=label)


def trotter_error(hamiltonian: TwoLocalHamiltonian,
                  steps: list[TrotterStep],
                  total_time: float = 1.0) -> float:
    """Spectral-norm error of the product of steps vs exact evolution."""
    import scipy.linalg as sla

    exact = sla.expm(1j * total_time * hamiltonian.to_matrix())
    approx = np.eye(2**hamiltonian.n_qubits, dtype=complex)
    for step in steps:
        approx = step.circuit().unitary() @ approx
    return float(np.linalg.norm(approx - exact, ord=2))
