"""2-local qubit Hamiltonians (paper Equation 3).

``H = sum_{(u,v) in E} H_uv + sum_k H_k`` with two-qubit terms ``H_uv``
(weighted Pauli pairs) and single-qubit terms ``H_k``.  The *interaction
graph* ``G(V, E)`` of the two-qubit terms is what the compiler maps onto
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quantum.pauli import PauliString


@dataclass(frozen=True)
class Term:
    """One weighted Pauli term ``coefficient * pauli``."""

    coefficient: float
    pauli: PauliString

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.pauli.qubits

    @property
    def weight(self) -> int:
        return self.pauli.weight

    def __str__(self) -> str:
        return f"{self.coefficient:+.4g}*{self.pauli}"


@dataclass
class TwoLocalHamiltonian:
    """A Hamiltonian whose terms act on at most two qubits."""

    n_qubits: int
    terms: list[Term] = field(default_factory=list)

    def __post_init__(self) -> None:
        for term in self.terms:
            self._check(term)

    def _check(self, term: Term) -> None:
        if term.weight > 2:
            raise ValueError(f"term {term} is not 2-local")
        if term.qubits and max(term.qubits) >= self.n_qubits:
            raise ValueError(f"term {term} outside {self.n_qubits} qubits")

    def add(self, coefficient: float, label: str,
            qubits: tuple[int, ...]) -> None:
        """Append ``coefficient * label`` acting on ``qubits``."""
        term = Term(coefficient, PauliString.from_label(label, qubits))
        self._check(term)
        self.terms.append(term)

    # ------------------------------------------------------------------
    @property
    def two_qubit_terms(self) -> list[Term]:
        return [t for t in self.terms if t.weight == 2]

    @property
    def single_qubit_terms(self) -> list[Term]:
        return [t for t in self.terms if t.weight == 1]

    def interaction_edges(self) -> list[tuple[int, int]]:
        """Distinct qubit pairs with at least one two-qubit term."""
        seen: set[tuple[int, int]] = set()
        ordered: list[tuple[int, int]] = []
        for term in self.two_qubit_terms:
            a, b = term.qubits
            key = (min(a, b), max(a, b))
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered

    def terms_on_pair(self, pair: tuple[int, int]) -> list[Term]:
        """All two-qubit terms on an (unordered) qubit pair."""
        key = (min(pair), max(pair))
        return [
            t for t in self.two_qubit_terms
            if (min(t.qubits), max(t.qubits)) == key
        ]

    def interaction_counts(self) -> dict[tuple[int, int], int]:
        """Number of two-qubit terms per pair (QAP 'flow' matrix input)."""
        counts: dict[tuple[int, int], int] = {}
        for term in self.two_qubit_terms:
            a, b = term.qubits
            key = (min(a, b), max(a, b))
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense matrix of the Hamiltonian (small systems only)."""
        if self.n_qubits > 12:
            raise ValueError("dense Hamiltonian limited to 12 qubits")
        dim = 2**self.n_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            matrix += term.coefficient * term.pauli.to_matrix(self.n_qubits)
        return matrix

    def all_terms_commute(self) -> bool:
        """True for e.g. the QAOA cost layer (all ZZ terms commute)."""
        for i, a in enumerate(self.terms):
            for b in self.terms[i + 1 :]:
                if not a.pauli.commutes_with(b.pauli):
                    return False
        return True

    def __str__(self) -> str:
        body = " ".join(str(t) for t in self.terms[:8])
        more = f" ... ({len(self.terms)} terms)" if len(self.terms) > 8 else ""
        return f"H[{self.n_qubits}q]: {body}{more}"
