"""QAOA for MaxCut on random regular graphs (paper benchmark QAOA-REG-d).

The cost Hamiltonian is ``C = sum_{(u,v) in E} Z_u Z_v`` and the driver is
``B = sum_k X_k`` (Equation 8).  One layer applies ``exp(-i gamma C)``
then ``exp(-i beta B)``.  Performance is the normalised cost
``<C> / C_min`` (1 = perfect, 0 = random guessing).

Angles: for ``p = 1`` the per-instance optimum is computed exactly via
light-cone edge expectations (each edge's expectation depends only on its
radius-1 neighbourhood).  For ``p in {2, 3}`` we use the published
fixed-angle-conjecture values for 3-regular MaxCut, which are within a
fraction of a percent of per-instance optima -- the paper's ReCirq
"theoretically optimal" angles play the same role.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian
from repro.hamiltonians.trotter import (
    OneQubitOperator,
    TrotterStep,
    TwoQubitOperator,
)
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
# exp_zz/exp_x live in repro.quantum.params (they are the concrete
# builders the symbolic factor kinds dispatch to); the historical private
# names are kept as aliases.
from repro.quantum.params import (
    Param,
    PauliExponential,
    exp_x as _x_exponential,
    exp_zz as _zz_exponential,
    is_symbolic_value,
    resolve_value,
)
from repro.quantum.statevector import Statevector

# Fixed-angle-conjecture angles for 3-regular MaxCut (Wurtz & Love 2021),
# converted to this module's exp(-i gamma ZZ) / exp(-i beta X) convention
# (gamma_here = -gamma_lit / 2; beta unchanged).  Verified in the tests to
# give the expected approximation ratios (~0.76 at p=2, ~0.79 at p=3).
FIXED_ANGLES_3REG: dict[int, tuple[tuple[float, ...], tuple[float, ...]]] = {
    2: ((-0.3817 / 2, -0.6655 / 2), (0.4960, 0.2690)),
    3: ((-0.3297 / 2, -0.5688 / 2, -0.6406 / 2), (0.5500, 0.3675, 0.2109)),
}


def random_regular_graph(degree: int, n_nodes: int, seed: int = 0) -> nx.Graph:
    """A random ``degree``-regular graph on ``n_nodes`` nodes."""
    if (degree * n_nodes) % 2 != 0:
        raise ValueError("degree * n_nodes must be even")
    return nx.random_regular_graph(degree, n_nodes, seed=seed)


def _edge_weight(graph: nx.Graph, u: int, v: int) -> float:
    """The MaxCut weight of edge ``(u, v)`` (1.0 when unweighted)."""
    return float(graph.edges[u, v].get("weight", 1.0))


def maxcut_hamiltonian(graph: nx.Graph) -> TwoLocalHamiltonian:
    """The (possibly weighted) cost Hamiltonian ``C = sum w ZZ``."""
    h = TwoLocalHamiltonian(graph.number_of_nodes())
    for u, v in sorted(tuple(sorted(e)) for e in graph.edges):
        h.add(_edge_weight(graph, u, v), "ZZ", (u, v))
    return h


def cost_diagonal(graph: nx.Graph, n_qubits: int) -> np.ndarray:
    """Diagonal of ``C = sum Z_u Z_v`` over computational basis states.

    Qubit 0 is the most significant bit, matching the simulator.
    """
    indices = np.arange(2**n_qubits)
    diag = np.zeros(2**n_qubits)
    for u, v in graph.edges:
        bit_u = (indices >> (n_qubits - 1 - u)) & 1
        bit_v = (indices >> (n_qubits - 1 - v)) & 1
        weight = _edge_weight(graph, u, v)
        diag += np.where(bit_u == bit_v, weight, -weight)
    return diag


def minimum_cost(graph: nx.Graph, n_qubits: int) -> float:
    """Exact ``C_min`` by enumeration (equals ``|E| - 2 * maxcut``)."""
    return float(cost_diagonal(graph, n_qubits).min())


@dataclass
class QAOAProblem:
    """A MaxCut QAOA instance: graph + per-layer angles.

    Angles may be :class:`~repro.quantum.params.Param` placeholders (see
    :meth:`symbolic`); ``layer_step`` then emits symbolic operators that
    the structural compiler passes accept unchanged, and :meth:`bind`
    resolves them.
    """

    graph: nx.Graph
    gammas: tuple[float | Param, ...]
    betas: tuple[float | Param, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.gammas) != len(self.betas):
            raise ValueError("need one (gamma, beta) pair per layer")

    @classmethod
    def symbolic(cls, graph: nx.Graph, n_layers: int = 1,
                 label: str = "") -> "QAOAProblem":
        """An angle-free instance: ``gamma``/``beta`` parameters per layer
        (suffixed ``gamma0, gamma1, ...`` for ``n_layers > 1``)."""
        if n_layers == 1:
            return cls(graph, (Param("gamma"),), (Param("beta"),), label)
        gammas = tuple(Param(f"gamma{i}") for i in range(n_layers))
        betas = tuple(Param(f"beta{i}") for i in range(n_layers))
        return cls(graph, gammas, betas, label)

    @property
    def n_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_layers(self) -> int:
        return len(self.gammas)

    def parameters(self) -> frozenset[str]:
        return frozenset(
            p.name for p in (*self.gammas, *self.betas)
            if is_symbolic_value(p)
        )

    @property
    def is_symbolic(self) -> bool:
        return bool(self.parameters())

    def bind(self, mapping: dict[str, float]) -> "QAOAProblem":
        """A concrete instance with every symbolic angle resolved."""
        return QAOAProblem(
            self.graph,
            tuple(resolve_value(g, mapping) for g in self.gammas),
            tuple(resolve_value(b, mapping) for b in self.betas),
            self.label,
        )

    def hamiltonian(self) -> TwoLocalHamiltonian:
        return maxcut_hamiltonian(self.graph)

    def layer_step(self, layer: int) -> TrotterStep:
        """The order-flexible operator content of one QAOA layer."""
        gamma, beta = self.gammas[layer], self.betas[layer]
        two_q = []
        for u, v in sorted(tuple(sorted(e)) for e in self.graph.edges):
            weight = _edge_weight(self.graph, u, v)
            # keep the historical expression for the (ubiquitous)
            # unweighted case; the weighted product mirrors bit-for-bit
            # between the Param path ((-1.0 * w) * gamma) and the float
            # path ((-gamma) * w) because IEEE-754 multiplication is
            # commutative and sign flips are exact
            angle = -gamma if weight == 1.0 else -gamma * weight
            factors = (PauliExponential("zz", "", angle),)
            matrix = (None if is_symbolic_value(gamma)
                      else _zz_exponential(angle))
            two_q.append(TwoQubitOperator((u, v), matrix,
                                          f"ZZ{u},{v}@L{layer}",
                                          factors=factors))
        one_q = [
            OneQubitOperator(
                k,
                None if is_symbolic_value(beta) else _x_exponential(-beta),
                f"X{k}@L{layer}",
                factors=(PauliExponential("x", "", -beta),),
            )
            for k in range(self.n_qubits)
        ]
        return TrotterStep(self.n_qubits, two_q, one_q)

    def ideal_circuit(self) -> Circuit:
        """All-to-all circuit: |+>^n preparation + p layers."""
        circuit = Circuit(self.n_qubits)
        for q in range(self.n_qubits):
            circuit.append(Gate("H", (q,)))
        for layer in range(self.n_layers):
            step = self.layer_step(layer)
            for op in step.two_qubit_ops:
                circuit.append(op.to_gate())
            for op in step.one_qubit_ops:
                circuit.append(op.to_gate())
        return circuit

    # ------------------------------------------------------------------
    # exact expectation values
    # ------------------------------------------------------------------
    def expectation(self) -> float:
        """Exact ``<C>`` of the ideal (noiseless) QAOA state."""
        n = self.n_qubits
        if n <= 16 or self._lightcone_covers_graph():
            return self._expectation_statevector()
        return self._expectation_lightcone()

    def normalized_cost(self) -> float:
        """``<C> / C_min`` of the ideal state (larger is better)."""
        return self.expectation() / minimum_cost(self.graph, self.n_qubits)

    def _expectation_statevector(self) -> float:
        state = Statevector.plus(self.n_qubits)
        circuit = Circuit(self.n_qubits)
        for layer in range(self.n_layers):
            step = self.layer_step(layer)
            for op in step.two_qubit_ops:
                circuit.append(op.to_gate())
            for op in step.one_qubit_ops:
                circuit.append(op.to_gate())
        state.apply_circuit(circuit)
        return state.expectation_diagonal(
            cost_diagonal(self.graph, self.n_qubits)
        )

    def _lightcone_covers_graph(self) -> bool:
        """True when the p-radius light cone is the whole graph anyway."""
        radius = self.n_layers
        try:
            diameter = nx.diameter(self.graph)
        except nx.NetworkXError:  # disconnected
            return False
        return diameter <= 2 * radius + 1

    def _expectation_lightcone(self) -> float:
        return sum(
            self.edge_expectation(edge) for edge in self.graph.edges
        )

    def edge_expectation(self, edge: tuple[int, int]) -> float:
        """Exact ``<Z_u Z_v>`` via reverse light-cone simulation."""
        u, v = edge
        support = {u, v}
        # Grow the support backwards through the p layers: the mixer is
        # local; each cost layer adds the neighbours of the support.
        layer_edges: list[list[tuple[int, int]]] = []
        for _ in range(self.n_layers):
            touching = [
                tuple(sorted(e))
                for e in self.graph.edges
                if e[0] in support or e[1] in support
            ]
            layer_edges.append(sorted(set(touching)))
            for a, b in touching:
                support.add(a)
                support.add(b)
        nodes = sorted(support)
        local_index = {node: i for i, node in enumerate(nodes)}
        k = len(nodes)
        circuit = Circuit(k)
        # Forward order: layer 1 ... layer p (layer_edges collected from
        # the last layer backwards).
        for layer in range(self.n_layers):
            edges_here = layer_edges[self.n_layers - 1 - layer]
            gamma, beta = self.gammas[layer], self.betas[layer]
            for a, b in edges_here:
                weight = _edge_weight(self.graph, a, b)
                circuit.append(Gate(
                    "APP2Q", (local_index[a], local_index[b]),
                    matrix=_zz_exponential(
                        -gamma if weight == 1.0 else -gamma * weight),
                ))
            for node in nodes:
                circuit.append(Gate("RX", (local_index[node],), (2 * beta,)))
        state = Statevector.plus(k)
        state.apply_circuit(circuit)
        pair_graph = nx.Graph([(local_index[u], local_index[v])])
        pair_graph.edges[local_index[u], local_index[v]]["weight"] = \
            _edge_weight(self.graph, u, v)
        return state.expectation_diagonal(cost_diagonal(pair_graph, k))




def optimal_angles_p1(graph: nx.Graph, resolution: int = 48,
                      ) -> tuple[float, float]:
    """Per-instance optimal ``(gamma, beta)`` for one QAOA layer.

    Scans a grid and refines around the best point; edge expectations are
    exact light-cone values, so this reproduces the "theoretically optimal
    values" used in the paper without access to ReCirq.
    """
    # The (gamma, beta) -> (-gamma, -beta) symmetry lets us fix gamma > 0;
    # beta must cover both signs (the optimum sits at beta < 0 in the
    # exp(-i gamma ZZ), exp(-i beta X) convention used here).
    best = (math.inf, 0.0, 0.0)
    gammas = np.linspace(0.02, math.pi / 2, resolution)
    betas = np.linspace(-math.pi / 4, math.pi / 4, resolution)
    for gamma in gammas:
        for beta in betas:
            problem = QAOAProblem(graph, (float(gamma),), (float(beta),))
            value = problem._expectation_lightcone()
            if value < best[0]:
                best = (value, float(gamma), float(beta))
    # local refinement
    _, g0, b0 = best
    span_g = float(gammas[1] - gammas[0])
    span_b = float(betas[1] - betas[0])
    for gamma in np.linspace(g0 - span_g, g0 + span_g, 9):
        for beta in np.linspace(b0 - span_b, b0 + span_b, 9):
            problem = QAOAProblem(graph, (float(gamma),), (float(beta),))
            value = problem._expectation_lightcone()
            if value < best[0]:
                best = (value, float(gamma), float(beta))
    return best[1], best[2]


def make_qaoa_problem(n_qubits: int, n_layers: int = 1, degree: int = 3,
                      seed: int = 0) -> QAOAProblem:
    """A QAOA-REG-``degree`` benchmark instance with good angles."""
    graph = random_regular_graph(degree, n_qubits, seed=seed)
    if n_layers == 1:
        gamma, beta = optimal_angles_p1(graph)
        gammas, betas = (gamma,), (beta,)
    elif n_layers in FIXED_ANGLES_3REG and degree == 3:
        gammas, betas = FIXED_ANGLES_3REG[n_layers]
    else:
        # Reasonable fallback: linear ramp schedule.
        gammas = tuple(0.7 * (i + 1) / n_layers for i in range(n_layers))
        betas = tuple(0.7 * (1 - i / n_layers) / 2 for i in range(n_layers))
    return QAOAProblem(graph, gammas, betas,
                       label=f"QAOA-REG-{degree}-n{n_qubits}-p{n_layers}-s{seed}")
