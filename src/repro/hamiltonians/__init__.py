"""2-local Hamiltonians, benchmark models, QAOA, and Trotterization."""

from repro.hamiltonians.hamiltonian import Term, TwoLocalHamiltonian
from repro.hamiltonians.models import (
    heisenberg_lattice,
    nnn_heisenberg,
    nnn_ising,
    nnn_xy,
)
from repro.hamiltonians.qaoa import (
    QAOAProblem,
    maxcut_hamiltonian,
    optimal_angles_p1,
    random_regular_graph,
)
from repro.hamiltonians.trotter import (
    TrotterStep,
    TwoQubitOperator,
    trotter_step,
)

__all__ = [
    "Term",
    "TwoLocalHamiltonian",
    "nnn_ising",
    "nnn_xy",
    "nnn_heisenberg",
    "heisenberg_lattice",
    "QAOAProblem",
    "maxcut_hamiltonian",
    "optimal_angles_p1",
    "random_regular_graph",
    "TrotterStep",
    "TwoQubitOperator",
    "trotter_step",
]
