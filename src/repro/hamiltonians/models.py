"""The benchmark Hamiltonians of the paper's evaluation (Section IV).

``NNN`` models live on a linear qubit array with nearest-neighbour (NN)
and next-nearest-neighbour (NNN) interactions, giving ``2n - 3`` two-qubit
interactions per Trotter step.  Coefficients are sampled uniformly from
``(0, pi)`` as in the paper.  :func:`heisenberg_lattice` builds the
1D/2D/3D Heisenberg models of the Paulihedral comparison (Table III).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.hamiltonians.hamiltonian import TwoLocalHamiltonian


def _nnn_pairs(n_qubits: int) -> list[tuple[int, int]]:
    """NN + NNN pairs of a chain: (i, i+1) and (i, i+2) -- 2n-3 pairs."""
    pairs = [(i, i + 1) for i in range(n_qubits - 1)]
    pairs += [(i, i + 2) for i in range(n_qubits - 2)]
    return pairs


def _coefficient(rng: np.random.Generator) -> float:
    """Random coefficient in (0, pi), as specified by the paper."""
    return float(rng.uniform(0.0, np.pi))


def nnn_ising(n_qubits: int, seed: int = 0) -> TwoLocalHamiltonian:
    """Transverse-field Ising model on the NN+NNN chain (Equation 4)."""
    rng = np.random.default_rng(seed)
    h = TwoLocalHamiltonian(n_qubits)
    for u, v in _nnn_pairs(n_qubits):
        h.add(_coefficient(rng), "ZZ", (u, v))
    for k in range(n_qubits):
        h.add(_coefficient(rng), "X", (k,))
    return h


def nnn_xy(n_qubits: int, seed: int = 0) -> TwoLocalHamiltonian:
    """XY model on the NN+NNN chain (Equation 5)."""
    rng = np.random.default_rng(seed)
    h = TwoLocalHamiltonian(n_qubits)
    for u, v in _nnn_pairs(n_qubits):
        h.add(_coefficient(rng), "XX", (u, v))
        h.add(_coefficient(rng), "YY", (u, v))
    return h


def nnn_heisenberg(n_qubits: int, seed: int = 0) -> TwoLocalHamiltonian:
    """Heisenberg model on the NN+NNN chain (Equation 6)."""
    rng = np.random.default_rng(seed)
    h = TwoLocalHamiltonian(n_qubits)
    for u, v in _nnn_pairs(n_qubits):
        h.add(_coefficient(rng), "XX", (u, v))
        h.add(_coefficient(rng), "YY", (u, v))
        h.add(_coefficient(rng), "ZZ", (u, v))
    return h


def heisenberg_lattice(shape: tuple[int, ...], seed: int = 0,
                       ) -> TwoLocalHamiltonian:
    """Heisenberg model on a 1D/2D/3D rectangular lattice (Table III).

    ``shape`` gives the lattice extent per dimension, e.g. ``(30,)``,
    ``(5, 6)`` or ``(2, 3, 5)`` for the paper's 30-qubit 1D/2D/3D cases.
    Interactions couple lattice nearest neighbours along every axis.
    """
    rng = np.random.default_rng(seed)
    n_qubits = int(np.prod(shape))
    h = TwoLocalHamiltonian(n_qubits)

    def index(coord: tuple[int, ...]) -> int:
        flat = 0
        for extent, c in zip(shape, coord):
            flat = flat * extent + c
        return flat

    for coord in itertools.product(*(range(extent) for extent in shape)):
        for axis, extent in enumerate(shape):
            if coord[axis] + 1 >= extent:
                continue
            neighbour = list(coord)
            neighbour[axis] += 1
            u, v = index(coord), index(tuple(neighbour))
            h.add(_coefficient(rng), "XX", (u, v))
            h.add(_coefficient(rng), "YY", (u, v))
            h.add(_coefficient(rng), "ZZ", (u, v))
    return h


MODEL_BUILDERS = {
    "NNN_Ising": nnn_ising,
    "NNN_XY": nnn_xy,
    "NNN_Heisenberg": nnn_heisenberg,
}
