"""Product-formula (Trotter) circuit construction (paper Section II-A).

One Trotter step of ``H = sum_j h_j H_j`` is ``prod_j exp(i t h_j H_j)``.
Each exponential of a 2-local term is a two-qubit unitary; these
:class:`TwoQubitOperator` blocks (plus a layer of single-qubit
exponentials) are the unit the 2QAN compiler manipulates: their order may
be permuted freely -- even for anti-commuting terms -- because any
ordering is an equally valid product-formula approximant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hamiltonians.hamiltonian import Term, TwoLocalHamiltonian
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.params import Param, PauliExponential, SymbolicUnitary


def _factor_parameters(factors: tuple[PauliExponential, ...]) -> frozenset[str]:
    names: frozenset[str] = frozenset()
    for factor in factors:
        names |= factor.parameters
    return names


def _bind_factors(factors: tuple[PauliExponential, ...],
                  binding: dict[str, float]) -> tuple:
    """Fold the factor matrices (earliest first, each new one on the left)
    and resolve the factor angles.

    The left-multiplied fold reproduces the association order of the
    incremental unify merges (``other.unitary @ acc.unitary``), so binding
    a merged symbolic operator is bit-identical to merging the bound
    concrete operators.
    """
    resolved = tuple(f.resolved(binding) for f in factors)
    unitary = resolved[0].matrix()
    for factor in resolved[1:]:
        unitary = factor.matrix() @ unitary
    return unitary, resolved


@dataclass(frozen=True)
class TwoQubitOperator:
    """One two-qubit block ``exp(i angle * P_uv)`` (or a product of such).

    ``qubits`` is ordered ``(min, max)``; ``unitary`` is the 4x4 matrix in
    that qubit order, or ``None`` for a symbolic operator whose matrix is
    the fold of ``factors`` under a later binding.  ``label`` records
    provenance for verification.
    """

    qubits: tuple[int, int]
    unitary: np.ndarray | None = field(compare=False)
    label: str = ""
    factors: tuple[PauliExponential, ...] = field(
        default=(), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.qubits[0] >= self.qubits[1]:
            raise ValueError(f"qubits must be ordered, got {self.qubits}")
        if self.unitary is None:
            if not self.factors:
                raise ValueError(
                    "symbolic two-qubit operator needs exponential factors"
                )
        elif self.unitary.shape != (4, 4):
            raise ValueError("two-qubit operator needs a 4x4 unitary")

    @property
    def pair(self) -> tuple[int, int]:
        return self.qubits

    @property
    def is_symbolic(self) -> bool:
        return self.unitary is None

    @property
    def parameters(self) -> frozenset[str]:
        return _factor_parameters(self.factors)

    def merged_with(self, other: "TwoQubitOperator") -> "TwoQubitOperator":
        """Product ``other . self`` (self applied first) on the same pair."""
        if other.qubits != self.qubits:
            raise ValueError("cannot merge operators on different pairs")
        if self.unitary is None or other.unitary is None:
            if not (self.factors and other.factors):
                raise ValueError(
                    "cannot merge a symbolic operator without factors"
                )
            return TwoQubitOperator(
                self.qubits,
                None,
                label=f"{other.label}*{self.label}",
                factors=self.factors + other.factors,
            )
        factors = (
            self.factors + other.factors
            if self.factors and other.factors else ()
        )
        return TwoQubitOperator(
            self.qubits,
            other.unitary @ self.unitary,
            label=f"{other.label}*{self.label}",
            factors=factors,
        )

    def bind(self, binding: dict[str, float]) -> "TwoQubitOperator":
        """A concrete operator with every symbolic angle resolved."""
        if self.unitary is not None:
            return self
        unitary, resolved = _bind_factors(self.factors, binding)
        return TwoQubitOperator(self.qubits, unitary, self.label,
                                factors=resolved)

    def to_gate(self) -> Gate:
        if self.unitary is None:
            return Gate("APP2Q", self.qubits,
                        symbolic=SymbolicUnitary(self.factors),
                        meta={"label": self.label})
        return Gate("APP2Q", self.qubits, matrix=self.unitary,
                    meta={"label": self.label})


@dataclass(frozen=True)
class OneQubitOperator:
    """A single-qubit exponential ``exp(i angle * P_k)``."""

    qubit: int
    unitary: np.ndarray | None = field(compare=False)
    label: str = ""
    factors: tuple[PauliExponential, ...] = field(
        default=(), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.unitary is None and not self.factors:
            raise ValueError(
                "symbolic one-qubit operator needs exponential factors"
            )

    @property
    def is_symbolic(self) -> bool:
        return self.unitary is None

    @property
    def parameters(self) -> frozenset[str]:
        return _factor_parameters(self.factors)

    def bind(self, binding: dict[str, float]) -> "OneQubitOperator":
        if self.unitary is not None:
            return self
        unitary, resolved = _bind_factors(self.factors, binding)
        return OneQubitOperator(self.qubit, unitary, self.label,
                                factors=resolved)

    def to_gate(self) -> Gate:
        if self.unitary is None:
            return Gate("APP1Q", (self.qubit,),
                        symbolic=SymbolicUnitary(self.factors),
                        meta={"label": self.label})
        return Gate("APP1Q", (self.qubit,), matrix=self.unitary,
                    meta={"label": self.label})


@dataclass
class TrotterStep:
    """The order-flexible content of one Trotter step."""

    n_qubits: int
    two_qubit_ops: list[TwoQubitOperator]
    one_qubit_ops: list[OneQubitOperator] = field(default_factory=list)

    def circuit(self) -> Circuit:
        """Naive circuit in the given operator order (baseline input)."""
        circuit = Circuit(self.n_qubits)
        for op in self.two_qubit_ops:
            circuit.append(op.to_gate())
        for op in self.one_qubit_ops:
            circuit.append(op.to_gate())
        return circuit

    def pairs(self) -> list[tuple[int, int]]:
        return [op.pair for op in self.two_qubit_ops]

    def interaction_counts(self) -> dict[tuple[int, int], int]:
        counts: dict[tuple[int, int], int] = {}
        for op in self.two_qubit_ops:
            counts[op.pair] = counts.get(op.pair, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # symbolic parameters
    # ------------------------------------------------------------------
    def parameters(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for op in self.two_qubit_ops:
            names |= op.parameters
        for op in self.one_qubit_ops:
            names |= op.parameters
        return names

    @property
    def is_symbolic(self) -> bool:
        return any(op.is_symbolic for op in self.two_qubit_ops) or \
            any(op.is_symbolic for op in self.one_qubit_ops)

    def bind(self, binding: dict[str, float]) -> "TrotterStep":
        """A concrete step with every symbolic angle resolved.

        Operators shared by identity (e.g. the reversed half of a
        second-order step) bind to the same concrete object.
        """
        memo: dict[int, object] = {}

        def _bound(op):
            key = id(op)
            if key not in memo:
                memo[key] = op.bind(binding)
            return memo[key]

        return TrotterStep(
            self.n_qubits,
            [_bound(op) for op in self.two_qubit_ops],
            [_bound(op) for op in self.one_qubit_ops],
        )


def _term_exponential(term: Term, t: float) -> np.ndarray:
    """``exp(i t c P)`` on the term's support qubits (sorted order)."""
    return term.pauli.exp(t * term.coefficient)


def _term_factor(term: Term, t) -> PauliExponential:
    """The exponential factor of one term: compact label + angle.

    ``PauliString.from_label(compact).exp(angle)`` runs the byte-for-byte
    identical code path as ``term.pauli.exp(angle)`` (``exp`` compacts the
    label internally), so binding the factor reproduces the concrete
    ``_term_exponential`` bits exactly.
    """
    compact = "".join(p for _, p in term.pauli.paulis)
    return PauliExponential("pauli", compact, t * term.coefficient)


def trotter_step(hamiltonian: TwoLocalHamiltonian, t: float | Param = 1.0,
                 ) -> TrotterStep:
    """Build one first-order Trotter step, one operator per term.

    ``t`` may be a :class:`~repro.quantum.params.Param`, producing a
    symbolic step whose operators carry exponential factors instead of
    matrices; the structural compiler passes run on it unchanged and
    ``TrotterStep.bind`` (or the pipeline's bind pass) materialises the
    unitaries later.

    Operators are emitted in the Hamiltonian's term order; merging of
    same-pair operators (circuit unitary unifying) is a compiler pre-pass,
    see :mod:`repro.core.unify`.
    """
    symbolic = isinstance(t, Param)
    two_q: list[TwoQubitOperator] = []
    one_q: list[OneQubitOperator] = []
    for idx, term in enumerate(hamiltonian.terms):
        factors = (_term_factor(term, t),)
        matrix = None if symbolic else _term_exponential(term, t)
        label = f"T{idx}:{term.pauli}"
        if term.weight == 2:
            a, b = term.qubits
            two_q.append(TwoQubitOperator((min(a, b), max(a, b)), matrix,
                                          label, factors=factors))
        elif term.weight == 1:
            one_q.append(OneQubitOperator(term.qubits[0], matrix, label,
                                          factors=factors))
        # weight-0 terms contribute only a global phase; dropped.
    return TrotterStep(hamiltonian.n_qubits, two_q, one_q)


def second_order_step(hamiltonian: TwoLocalHamiltonian,
                      t: float | Param = 1.0,
                      ) -> tuple[TrotterStep, TrotterStep]:
    """Second-order (symmetric) Trotter: forward and reversed half-steps.

    The paper implements even-numbered steps by reversing the two-qubit
    gate order of the compiled first step (Section V-D); this helper
    provides the two half-step operator lists for that scheme.
    """
    forward = trotter_step(hamiltonian, t / 2)
    backward = TrotterStep(
        forward.n_qubits,
        list(reversed(forward.two_qubit_ops)),
        list(forward.one_qubit_ops),
    )
    return forward, backward
