"""Product-formula (Trotter) circuit construction (paper Section II-A).

One Trotter step of ``H = sum_j h_j H_j`` is ``prod_j exp(i t h_j H_j)``.
Each exponential of a 2-local term is a two-qubit unitary; these
:class:`TwoQubitOperator` blocks (plus a layer of single-qubit
exponentials) are the unit the 2QAN compiler manipulates: their order may
be permuted freely -- even for anti-commuting terms -- because any
ordering is an equally valid product-formula approximant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hamiltonians.hamiltonian import Term, TwoLocalHamiltonian
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate


@dataclass(frozen=True)
class TwoQubitOperator:
    """One two-qubit block ``exp(i angle * P_uv)`` (or a product of such).

    ``qubits`` is ordered ``(min, max)``; ``unitary`` is the 4x4 matrix in
    that qubit order.  ``label`` records provenance for verification.
    """

    qubits: tuple[int, int]
    unitary: np.ndarray = field(compare=False)
    label: str = ""

    def __post_init__(self) -> None:
        if self.qubits[0] >= self.qubits[1]:
            raise ValueError(f"qubits must be ordered, got {self.qubits}")
        if self.unitary.shape != (4, 4):
            raise ValueError("two-qubit operator needs a 4x4 unitary")

    @property
    def pair(self) -> tuple[int, int]:
        return self.qubits

    def merged_with(self, other: "TwoQubitOperator") -> "TwoQubitOperator":
        """Product ``other . self`` (self applied first) on the same pair."""
        if other.qubits != self.qubits:
            raise ValueError("cannot merge operators on different pairs")
        return TwoQubitOperator(
            self.qubits,
            other.unitary @ self.unitary,
            label=f"{other.label}*{self.label}",
        )

    def to_gate(self) -> Gate:
        return Gate("APP2Q", self.qubits, matrix=self.unitary,
                    meta={"label": self.label})


@dataclass(frozen=True)
class OneQubitOperator:
    """A single-qubit exponential ``exp(i angle * P_k)``."""

    qubit: int
    unitary: np.ndarray = field(compare=False)
    label: str = ""

    def to_gate(self) -> Gate:
        return Gate("APP1Q", (self.qubit,), matrix=self.unitary,
                    meta={"label": self.label})


@dataclass
class TrotterStep:
    """The order-flexible content of one Trotter step."""

    n_qubits: int
    two_qubit_ops: list[TwoQubitOperator]
    one_qubit_ops: list[OneQubitOperator] = field(default_factory=list)

    def circuit(self) -> Circuit:
        """Naive circuit in the given operator order (baseline input)."""
        circuit = Circuit(self.n_qubits)
        for op in self.two_qubit_ops:
            circuit.append(op.to_gate())
        for op in self.one_qubit_ops:
            circuit.append(op.to_gate())
        return circuit

    def pairs(self) -> list[tuple[int, int]]:
        return [op.pair for op in self.two_qubit_ops]

    def interaction_counts(self) -> dict[tuple[int, int], int]:
        counts: dict[tuple[int, int], int] = {}
        for op in self.two_qubit_ops:
            counts[op.pair] = counts.get(op.pair, 0) + 1
        return counts


def _term_exponential(term: Term, t: float) -> np.ndarray:
    """``exp(i t c P)`` on the term's support qubits (sorted order)."""
    return term.pauli.exp(t * term.coefficient)


def trotter_step(hamiltonian: TwoLocalHamiltonian, t: float = 1.0,
                 ) -> TrotterStep:
    """Build one first-order Trotter step, one operator per term.

    Operators are emitted in the Hamiltonian's term order; merging of
    same-pair operators (circuit unitary unifying) is a compiler pre-pass,
    see :mod:`repro.core.unify`.
    """
    two_q: list[TwoQubitOperator] = []
    one_q: list[OneQubitOperator] = []
    for idx, term in enumerate(hamiltonian.terms):
        matrix = _term_exponential(term, t)
        label = f"T{idx}:{term.pauli}"
        if term.weight == 2:
            a, b = term.qubits
            two_q.append(TwoQubitOperator((min(a, b), max(a, b)), matrix, label))
        elif term.weight == 1:
            one_q.append(OneQubitOperator(term.qubits[0], matrix, label))
        # weight-0 terms contribute only a global phase; dropped.
    return TrotterStep(hamiltonian.n_qubits, two_q, one_q)


def second_order_step(hamiltonian: TwoLocalHamiltonian, t: float = 1.0,
                      ) -> tuple[TrotterStep, TrotterStep]:
    """Second-order (symmetric) Trotter: forward and reversed half-steps.

    The paper implements even-numbered steps by reversing the two-qubit
    gate order of the compiled first step (Section V-D); this helper
    provides the two half-step operator lists for that scheme.
    """
    forward = trotter_step(hamiltonian, t / 2)
    backward = TrotterStep(
        forward.n_qubits,
        list(reversed(forward.two_qubit_ops)),
        list(forward.one_qubit_ops),
    )
    return forward, backward
