"""Semantic verification of compiled circuits.

A 2QAN-compiled circuit is *not* unitarily equal to its input circuit --
the whole point is that operator order may change.  Correctness means:

    C . Perm(map_0) = Perm(map_final) . U_sigma     (up to global phase)

where ``Perm(map)`` embeds logical qubits at their physical positions and
``U_sigma`` is the product of the term exponentials *in the order the
compiler executed them* (any order is a valid product-formula
approximant).  For Hamiltonians whose terms all commute (Ising cost
layers, QAOA), ``U_sigma`` equals the original-order unitary, so compiled
circuits are checked against the untouched input as well.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import CompilationResult
from repro.core.scheduling import ScheduledCircuit
from repro.hamiltonians.trotter import TrotterStep
from repro.quantum.circuit import Circuit
from repro.quantum.unitaries import allclose_up_to_global_phase


def permutation_unitary(mapping: dict[int, int], n_qubits: int) -> np.ndarray:
    """Unitary sending logical basis bits to their physical positions.

    ``mapping[l] = p`` means logical qubit ``l``'s bit appears at physical
    position ``p``.  Qubit 0 is the most significant index bit.
    """
    dim = 2**n_qubits
    matrix = np.zeros((dim, dim))
    for logical_index in range(dim):
        physical_index = 0
        for lq in range(n_qubits):
            bit = (logical_index >> (n_qubits - 1 - lq)) & 1
            p = mapping[lq]
            physical_index |= bit << (n_qubits - 1 - p)
        matrix[physical_index, logical_index] = 1.0
    return matrix


def executed_order_circuit(scheduled: ScheduledCircuit,
                           n_logical: int) -> Circuit:
    """The logical-qubit circuit in the exact order the schedule executes.

    Dressed SWAPs contribute their absorbed operator at the SWAP's
    position; bare SWAPs contribute nothing (they only move qubits).
    """
    circuit = Circuit(n_logical)
    ordered = sorted(scheduled.items, key=lambda i: (i.cycle, i.physical_pair))
    for item in ordered:
        if item.kind == "op":
            circuit.append(item.operator.to_gate())
        elif item.kind == "dressed":
            circuit.append(item.swap.dressed_with.to_gate())
    for op in scheduled.one_qubit_ops:
        circuit.append(op.to_gate())
    return circuit


def verify_compilation(result: CompilationResult, step: TrotterStep,
                       atol: float = 2e-5) -> bool:
    """Full unitary check of a compiled circuit (small problems only).

    Requires the compilation to have used ``solve_angles=True`` (exact
    decomposition) and a device with exactly ``step.n_qubits`` qubits.
    """
    n = step.n_qubits
    if result.circuit.n_qubits != n:
        raise ValueError(
            "unitary verification needs n_physical == n_logical; compile "
            "onto a device with exactly the problem size"
        )
    compiled = result.circuit.unitary()
    logical = executed_order_circuit(result.scheduled, n).unitary()
    p_initial = permutation_unitary(
        result.initial_map.logical_to_physical, n
    )
    p_final = permutation_unitary(result.final_map.logical_to_physical, n)
    lhs = compiled @ p_initial
    rhs = p_final @ logical
    return allclose_up_to_global_phase(lhs, rhs, atol=atol)


def verify_operator_conservation(result: CompilationResult,
                                 step: TrotterStep) -> bool:
    """Every two-qubit operator of the input appears exactly once.

    Cheap structural check that works at any problem size (used in the
    large-scale tests where unitaries are intractable).
    """
    expected = sorted(
        op.label for op in step.two_qubit_ops
    )
    executed: list[str] = []
    for item in result.scheduled.items:
        if item.kind == "op":
            executed.append(item.operator.label)
        elif item.kind == "dressed":
            executed.append(item.swap.dressed_with.label)
    return sorted(executed) == expected


def verify_commuting_equivalence(result: CompilationResult,
                                 step: TrotterStep,
                                 atol: float = 2e-5) -> bool:
    """For all-commuting Hamiltonians the compiled unitary must equal the
    *original-order* unitary exactly (up to mapping permutations)."""
    n = step.n_qubits
    compiled = result.circuit.unitary()
    original = step.circuit().unitary()
    p_initial = permutation_unitary(result.initial_map.logical_to_physical, n)
    p_final = permutation_unitary(result.final_map.logical_to_physical, n)
    lhs = compiled @ p_initial
    rhs = p_final @ original
    return allclose_up_to_global_phase(lhs, rhs, atol=atol)
