"""Device model: qubit connectivity graph plus shortest-path distances.

The distance matrix (computed once with Floyd--Warshall, as in the paper's
Equation 7) drives both the QAP mapping objective and the routing
heuristic's shortest-distance gate selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Largest accepted power-of-two scale for exact integer distances.
#: Float64 weights always have power-of-two denominators, but a weight
#: like 0.1 carries a 2**55 denominator; beyond this cap the scaled
#: integers would dwarf the float mantissa and the exactness check
#: below could not hold anyway.
_MAX_WEIGHT_SCALE = 1 << 40


@dataclass
class Device:
    """A quantum device: ``n_qubits`` nodes and undirected coupling edges.

    ``edge_errors`` optionally carries per-edge two-qubit gate error
    rates (keyed by the normalised ``(min, max)`` pair); the noise-aware
    routing criterion and the edge-aware fidelity estimator consume it.
    """

    name: str
    n_qubits: int
    edges: tuple[tuple[int, int], ...]
    edge_errors: dict[tuple[int, int], float] | None = None
    edge_weights: dict[tuple[int, int], float] | None = None
    _distance: np.ndarray | None = field(default=None, repr=False)
    _adjacency: list[set[int]] | None = field(default=None, repr=False)
    _integer_distances: bool | None = field(default=None, repr=False)
    _adjacency_matrix: np.ndarray | None = field(default=None, repr=False)
    # Memoised scaled_integer_distances, boxed in a 1-tuple so ``None``
    # can mean "not computed yet" (the computed value may itself be
    # None) and the cache survives pickling into worker processes.
    _scaled_distances: tuple | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        seen = set()
        for a, b in self.edges:
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            if not (0 <= a < self.n_qubits and 0 <= b < self.n_qubits):
                raise ValueError(f"edge ({a},{b}) outside device")
            key = (min(a, b), max(a, b))
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
        normalized = tuple(sorted(seen))
        object.__setattr__(self, "edges", normalized)
        if self.edge_errors is not None:
            cleaned = {}
            for (a, b), rate in self.edge_errors.items():
                key = (min(a, b), max(a, b))
                if key not in seen:
                    raise ValueError(f"error rate for non-edge {key}")
                cleaned[key] = float(rate)
            object.__setattr__(self, "edge_errors", cleaned)

    def edge_error(self, a: int, b: int, default: float = 0.0) -> float:
        """Two-qubit error rate of an edge (``default`` if uncalibrated)."""
        if self.edge_errors is None:
            return default
        return self.edge_errors.get((min(a, b), max(a, b)), default)

    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> list[set[int]]:
        if self._adjacency is None:
            adj: list[set[int]] = [set() for _ in range(self.n_qubits)]
            for a, b in self.edges:
                adj[a].add(b)
                adj[b].add(a)
            self._adjacency = adj
        return self._adjacency

    def neighbors(self, qubit: int) -> set[int]:
        return self.adjacency[qubit]

    def are_neighbors(self, a: int, b: int) -> bool:
        return b in self.adjacency[a]

    @property
    def adjacency_matrix(self) -> np.ndarray:
        """Boolean coupling matrix: ``A[p, q]`` iff ``p``-``q`` is an edge.

        Lets hot loops (the router's NN-absorption sweep) test whole
        batches of pairs with one fancy-indexed read.
        """
        if self._adjacency_matrix is None:
            mat = np.zeros((self.n_qubits, self.n_qubits), dtype=bool)
            for a, b in self.edges:
                mat[a, b] = mat[b, a] = True
            self._adjacency_matrix = mat
        return self._adjacency_matrix

    @property
    def distance(self) -> np.ndarray:
        """All-pairs shortest-path distances (Floyd--Warshall).

        Hop counts by default; with ``edge_weights`` set, weighted path
        lengths (used by noise-aware mapping/routing, where a weight
        reflects an edge's error rate).
        """
        if self._distance is None:
            n = self.n_qubits
            dist = np.full((n, n), np.inf)
            np.fill_diagonal(dist, 0.0)
            for a, b in self.edges:
                weight = 1.0
                if self.edge_weights is not None:
                    weight = self.edge_weights.get((a, b), 1.0)
                dist[a, b] = dist[b, a] = weight
            for k in range(n):
                # vectorized relaxation over intermediate node k
                dist = np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :])
            if np.isinf(dist).any():
                raise ValueError(f"device {self.name} is disconnected")
            self._distance = dist
        return self._distance

    @property
    def integer_distances(self) -> bool:
        """True when every pairwise distance is integer-valued.

        Hop-count distances (no ``edge_weights``) always are; the
        incremental routing engine relies on this to keep float64 delta
        updates exact (and therefore bit-identical to a full rescan).
        """
        if self._integer_distances is None:
            dist = self.distance
            self._integer_distances = bool(
                np.array_equal(dist, np.rint(dist)))
        return self._integer_distances

    @property
    def scaled_integer_distances(
            self) -> tuple[list[list[int]], int] | None:
        """Exact integer rows of the distance matrix, plus their scale.

        Returns ``(rows, scale)`` with ``rows[a][b] * (1 / scale) ==
        distance[a, b]`` *bit-exactly* for every pair, or ``None`` when
        no such representation exists.  Hop-count devices scale by 1.
        Weighted devices scale by the largest power-of-two denominator
        of their edge weights (every float64 is a dyadic rational, so
        ``float.as_integer_ratio`` yields one exactly) and re-run
        Floyd--Warshall in arbitrary-precision integers; the result is
        accepted only if it reproduces the float matrix exactly, so a
        weight set whose float path sums round returns ``None``.

        The incremental routing engine keys on this: integer cost
        totals admit exact delta updates, so the engine extends to
        ``edge_weights``-weighted devices without the ulp drift that
        used to force the scalar-rescan fallback.
        """
        if self._scaled_distances is None:
            self._scaled_distances = (self._compute_scaled_distances(),)
        return self._scaled_distances[0]

    def _compute_scaled_distances(
            self) -> tuple[list[list[int]], int] | None:
        dist = self.distance
        if self.integer_distances:
            return [[int(x) for x in row] for row in dist.tolist()], 1
        weights = {}
        scale = 1
        for a, b in self.edges:
            weight = 1.0
            if self.edge_weights is not None:
                weight = float(self.edge_weights.get((a, b), 1.0))
            if not weight > 0.0 or not np.isfinite(weight):
                return None
            numerator, denominator = weight.as_integer_ratio()
            weights[(a, b)] = (numerator, denominator)
            scale = max(scale, denominator)
        if scale > _MAX_WEIGHT_SCALE:
            return None
        n = self.n_qubits
        inf = None
        rows: list[list[int | None]] = [
            [0 if i == j else inf for j in range(n)] for i in range(n)
        ]
        for (a, b), (numerator, denominator) in weights.items():
            scaled = numerator * (scale // denominator)
            current = rows[a][b]
            if current is None or scaled < current:
                rows[a][b] = rows[b][a] = scaled
        for k in range(n):
            row_k = rows[k]
            for i in range(n):
                via = rows[i][k]
                if via is None:
                    continue
                row_i = rows[i]
                for j in range(n):
                    leg = row_k[j]
                    if leg is None:
                        continue
                    candidate = via + leg
                    if row_i[j] is None or candidate < row_i[j]:
                        row_i[j] = candidate
        # exactness gate: the integer matrix must reproduce the float
        # one bit-for-bit, otherwise the two cost domains disagree and
        # the caller must keep the float path
        for i in range(n):
            for j in range(n):
                # Python-float comparison against the big int is exact;
                # the multiply is a pure exponent shift (scale is a
                # power of two), so the gate really is bit-level
                if rows[i][j] is None or \
                        float(dist[i, j]) * scale != rows[i][j]:
                    return None
        return rows, scale

    @property
    def max_degree(self) -> int:
        return max(len(s) for s in self.adjacency)

    @property
    def diameter(self) -> int:
        return int(self.distance.max())

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.n_qubits} qubits, {len(self.edges)} edges, "
            f"diameter {self.diameter}"
        )
