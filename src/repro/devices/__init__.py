"""Device topologies: coupling graphs and distance matrices."""

from repro.devices.topology import Device
from repro.devices.library import (
    all_to_all,
    aspen,
    grid,
    line,
    manhattan,
    montreal,
    sycamore,
)

__all__ = [
    "Device",
    "all_to_all",
    "aspen",
    "grid",
    "line",
    "manhattan",
    "montreal",
    "sycamore",
]
