"""The device topologies used in the paper's evaluation.

* :func:`montreal` -- IBMQ Montreal, the exact 27-qubit heavy-hex (Falcon)
  coupling map.
* :func:`sycamore` -- Google Sycamore; modelled as a 54-qubit degree-<=4
  grid (6 x 9).  The real device is a 45-degree-rotated grid with the same
  qubit count and degree; routing cost depends on the graph only through
  shortest-path distances, which agree closely (documented substitution in
  DESIGN.md).
* :func:`aspen` -- Rigetti Aspen, 16 qubits: two octagonal rings bridged
  by two edges, matching the paper's Figure 1(c).
* :func:`manhattan` -- IBMQ Manhattan-like 65-qubit heavy-hex lattice
  (used for the Paulihedral comparison, Table III).
* :func:`grid`, :func:`line`, :func:`all_to_all` -- generic topologies;
  ``grid(2, 3)`` is the worked example of Figure 3, ``all_to_all`` is the
  "NoMap" baseline device.
"""

from __future__ import annotations

from repro.devices.topology import Device


def grid(rows: int, cols: int) -> Device:
    """Rectangular grid with nearest-neighbour couplings."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return Device(f"grid-{rows}x{cols}", rows * cols, tuple(edges))


def line(n_qubits: int) -> Device:
    """A 1-D chain."""
    edges = tuple((i, i + 1) for i in range(n_qubits - 1))
    return Device(f"line-{n_qubits}", n_qubits, edges)


def all_to_all(n_qubits: int) -> Device:
    """Fully connected device -- the paper's 'NoMap' baseline."""
    edges = tuple(
        (i, j) for i in range(n_qubits) for j in range(i + 1, n_qubits)
    )
    return Device(f"all-to-all-{n_qubits}", n_qubits, edges)


def sycamore() -> Device:
    """Google Sycamore modelled as a 54-qubit 6x9 grid (see module doc)."""
    base = grid(6, 9)
    return Device("sycamore-54", base.n_qubits, base.edges)


# The standard IBM Falcon (27-qubit heavy-hex) coupling list, shared by
# Montreal / Toronto / Mumbai.
_MONTREAL_EDGES = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
)


def montreal() -> Device:
    """IBMQ Montreal: 27-qubit heavy-hex lattice, CNOT native gate."""
    return Device("montreal-27", 27, _MONTREAL_EDGES)


def aspen() -> Device:
    """Rigetti Aspen: two octagons (0-7 and 8-15) bridged by two edges."""
    ring_a = tuple((i, (i + 1) % 8) for i in range(8))
    ring_b = tuple((8 + i, 8 + (i + 1) % 8) for i in range(8))
    bridges = ((1, 14), (2, 13))
    return Device("aspen-16", 16, ring_a + ring_b + bridges)


def heavy_hex(unit_rows: int, unit_cols: int) -> Device:
    """IBM-style heavy-hex lattice generator.

    Built from ``unit_rows`` horizontal rails of ``unit_cols`` qubits,
    with bridge qubits connecting consecutive rails every second column,
    alternating offset per rail pair -- the hexagon pattern of IBM's
    Falcon/Hummingbird devices.
    """
    rail_len = unit_cols
    qubit = 0
    rails: list[list[int]] = []
    edges: list[tuple[int, int]] = []
    for _ in range(unit_rows):
        rail = list(range(qubit, qubit + rail_len))
        qubit += rail_len
        rails.append(rail)
        edges.extend((rail[i], rail[i + 1]) for i in range(rail_len - 1))
    for r in range(unit_rows - 1):
        offset = 0 if r % 2 == 0 else 2
        for c in range(offset, rail_len, 4):
            bridge = qubit
            qubit += 1
            edges.append((rails[r][c], bridge))
            edges.append((bridge, rails[r + 1][c]))
    return Device(f"heavy-hex-{qubit}", qubit, tuple(edges))


def manhattan() -> Device:
    """IBMQ Manhattan-like 65-qubit heavy-hex device (Table III).

    Five horizontal rails (lengths 10, 11, 11, 11, 10) joined by three
    bridge qubits per rail pair, with the bridge columns alternating
    between offsets 0 and 2 -- the IBM Hummingbird hexagon pattern.
    """
    rail_lengths = (10, 11, 11, 11, 10)
    rails: list[list[int]] = []
    edges: list[tuple[int, int]] = []
    qubit = 0
    for length in rail_lengths:
        rail = list(range(qubit, qubit + length))
        qubit += length
        rails.append(rail)
        edges.extend((rail[i], rail[i + 1]) for i in range(length - 1))
    for r in range(len(rail_lengths) - 1):
        offset = 0 if r % 2 == 0 else 2
        upper, lower = rails[r], rails[r + 1]
        for c in range(offset, len(upper), 4):
            bridge = qubit
            qubit += 1
            edges.append((upper[c], bridge))
            # Clamp for the short corner rail (the device's bottom-right
            # hexagon closes on the rail end).
            edges.append((bridge, lower[min(c, len(lower) - 1)]))
    if qubit != 65:
        raise RuntimeError(f"manhattan construction produced {qubit} qubits")
    return Device("manhattan-65", qubit, tuple(edges))


_BY_NAME = {
    "sycamore": sycamore,
    "montreal": montreal,
    "aspen": aspen,
    "manhattan": manhattan,
}


def by_name(name: str) -> Device:
    """Look up one of the paper's devices by name."""
    try:
        return _BY_NAME[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
