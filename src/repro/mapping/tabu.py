"""Tabu search for the QAP (the paper's mapping heuristic, refs [52, 53]).

Standard recency-based Tabu search over the swap neighbourhood:

* a move swaps the physical locations of two logical qubits (when the
  device has spare qubits, a move may also relocate one logical qubit to
  a free physical qubit);
* after a move, re-assigning qubit ``i`` to its old location is tabu for
  ``tenure`` iterations;
* the aspiration criterion admits tabu moves that beat the incumbent.

Costs are updated incrementally via :meth:`QAPInstance.swap_delta`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.qap import QAPInstance


@dataclass
class TabuResult:
    """Best assignment found and its objective value."""

    assignment: np.ndarray
    cost: float
    iterations: int


def tabu_search(instance: QAPInstance, seed: int = 0,
                max_iterations: int | None = None,
                tenure: int | None = None,
                initial: np.ndarray | None = None) -> TabuResult:
    """Minimise the QAP objective; returns the best assignment found."""
    rng = np.random.default_rng(seed)
    n = instance.n_logical
    m = instance.n_physical
    if max_iterations is None:
        max_iterations = max(200, 20 * n)
    if tenure is None:
        tenure = max(5, n // 2)

    if initial is None:
        current = np.array(rng.permutation(m)[:n])
    else:
        current = np.array(initial, dtype=int)
        if len(set(current.tolist())) != n:
            raise ValueError("initial assignment must be injective")
    cost = instance.cost(current)
    best = current.copy()
    best_cost = cost

    # tabu[i, loc] = iteration until which assigning logical i to physical
    # loc is forbidden.
    tabu = np.zeros((n, m), dtype=int)

    free = sorted(set(range(m)) - set(current.tolist()))

    for iteration in range(max_iterations):
        best_move = None
        best_delta = np.inf
        # swap moves between logical qubits
        for i in range(n):
            for j in range(i + 1, n):
                delta = instance.swap_delta(current, i, j)
                is_tabu = (
                    tabu[i, current[j]] > iteration
                    or tabu[j, current[i]] > iteration
                )
                if is_tabu and cost + delta >= best_cost:
                    continue
                if delta < best_delta:
                    best_delta = delta
                    best_move = ("swap", i, j)
        # relocation moves to free physical qubits (devices larger than
        # the problem)
        if free:
            for i in range(n):
                for loc_idx, loc in enumerate(free):
                    delta = _relocate_delta(instance, current, i, loc)
                    is_tabu = tabu[i, loc] > iteration
                    if is_tabu and cost + delta >= best_cost:
                        continue
                    if delta < best_delta:
                        best_delta = delta
                        best_move = ("move", i, loc_idx)
        if best_move is None:
            break
        if best_move[0] == "swap":
            _, i, j = best_move
            tabu[i, current[i]] = iteration + tenure
            tabu[j, current[j]] = iteration + tenure
            current[i], current[j] = current[j], current[i]
        else:
            _, i, loc_idx = best_move
            tabu[i, current[i]] = iteration + tenure
            old = int(current[i])
            current[i] = free[loc_idx]
            free[loc_idx] = old
            free.sort()
        cost += best_delta
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = current.copy()
        # occasional diversification when stuck at zero-delta plateaus
        if best_delta >= 0 and iteration % (4 * tenure) == 4 * tenure - 1:
            i, j = rng.choice(n, size=2, replace=False)
            cost += instance.swap_delta(current, int(i), int(j))
            current[int(i)], current[int(j)] = current[int(j)], current[int(i)]
    return TabuResult(best, float(best_cost), max_iterations)


def _relocate_delta(instance: QAPInstance, assignment: np.ndarray,
                    i: int, new_loc: int) -> float:
    """Cost change from moving logical ``i`` to the free ``new_loc``."""
    old = assignment[i]
    delta = 0.0
    for k in range(instance.n_logical):
        if k == i:
            continue
        c = assignment[k]
        delta += 2 * instance.flow[i, k] * (
            instance.distance[new_loc, c] - instance.distance[old, c]
        )
    return float(delta)
