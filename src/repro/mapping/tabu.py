"""Tabu search for the QAP (the paper's mapping heuristic, refs [52, 53]).

Standard recency-based Tabu search over the swap neighbourhood:

* a move swaps the physical locations of two logical qubits (when the
  device has spare qubits, a move may also relocate one logical qubit to
  a free physical qubit);
* after a move, re-assigning qubit ``i`` to its old location is tabu for
  ``tenure`` iterations;
* the aspiration criterion admits tabu moves that beat the incumbent.

The neighbourhood is evaluated on the vectorized delta table
(:meth:`QAPInstance.swap_delta_matrix`), refreshed in O(n^2) per
iteration via the Taillard-style incremental updates instead of O(n^2)
scalar probes of O(n) each.  Tabu/aspiration filtering is a boolean
mask and best-move selection a masked argmin that scans the strict
upper triangle in the same ``(i, j)`` lexicographic order as the old
scalar loops, so for integer-valued instances (interaction-count flows,
hop-count distances) the search trajectory -- and therefore the
returned assignment and cost -- is bit-identical, only faster.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

import numpy as np

from repro.mapping.qap import QAPInstance


@dataclass
class TabuResult:
    """Best assignment found and its objective value.

    ``iterations`` counts the search iterations actually performed --
    fewer than ``max_iterations`` when the neighbourhood is exhausted
    (every move tabu with no aspiration) and the search stops early.
    """

    assignment: np.ndarray
    cost: float
    iterations: int


def tabu_search(instance: QAPInstance, seed: int = 0,
                max_iterations: int | None = None,
                tenure: int | None = None,
                initial: np.ndarray | None = None) -> TabuResult:
    """Minimise the QAP objective; returns the best assignment found."""
    rng = np.random.default_rng(seed)
    n = instance.n_logical
    m = instance.n_physical
    if max_iterations is None:
        max_iterations = max(200, 20 * n)
    if tenure is None:
        tenure = max(5, n // 2)

    if initial is None:
        current = np.array(rng.permutation(m)[:n])
    else:
        current = np.array(initial, dtype=int)
        if len(set(current.tolist())) != n:
            raise ValueError("initial assignment must be injective")
    cost = instance.cost(current)
    best = current.copy()
    best_cost = cost

    # tabu[i, loc] = iteration until which assigning logical i to physical
    # loc is forbidden.
    tabu = np.zeros((n, m), dtype=int)

    free = sorted(set(range(m)) - set(current.tolist()))

    deltas = instance.swap_delta_matrix(current)
    logical = np.arange(n)
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)

    performed = max_iterations
    for iteration in range(max_iterations):
        # swap moves between logical qubits: mask out the lower triangle
        # plus tabu moves that fail aspiration, then take the first
        # strict minimum in (i, j) lexicographic order (np.argmin
        # returns the first occurrence, matching the old scalar scan)
        tabu_hit = tabu[logical[:, None], current[None, :]] > iteration
        blocked = (tabu_hit | tabu_hit.T) & (cost + deltas >= best_cost)
        candidates = np.where(upper & ~blocked, deltas, np.inf)
        flat = int(np.argmin(candidates))
        best_delta = candidates.flat[flat]
        best_move = None
        if best_delta < np.inf:
            best_move = ("swap", flat // n, flat % n)
        # relocation moves to free physical qubits (devices larger than
        # the problem); a relocation wins only on a strictly smaller
        # delta, as in the scalar scan order (swaps probed first)
        if free:
            free_arr = np.array(free)
            relocations = instance.relocate_delta_matrix(current, free_arr)
            reloc_tabu = tabu[logical[:, None], free_arr[None, :]] > iteration
            reloc_blocked = reloc_tabu & (cost + relocations >= best_cost)
            reloc_candidates = np.where(reloc_blocked, np.inf, relocations)
            reloc_flat = int(np.argmin(reloc_candidates))
            reloc_delta = reloc_candidates.flat[reloc_flat]
            if reloc_delta < best_delta:
                best_delta = reloc_delta
                best_move = ("move", reloc_flat // len(free),
                             reloc_flat % len(free))
        if best_move is None:
            performed = iteration + 1
            break
        if best_move[0] == "swap":
            _, i, j = best_move
            tabu[i, current[i]] = iteration + tenure
            tabu[j, current[j]] = iteration + tenure
            current[i], current[j] = current[j], current[i]
            instance.update_deltas_after_swap(deltas, current, i, j)
        else:
            _, i, loc_idx = best_move
            tabu[i, current[i]] = iteration + tenure
            old = int(current[i])
            current[i] = free[loc_idx]
            # order-preserving insert instead of re-sorting the whole list
            del free[loc_idx]
            insort(free, old)
            instance.update_deltas_after_relocate(deltas, current, i, old)
        cost += float(best_delta)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = current.copy()
        # occasional diversification when stuck at zero-delta plateaus
        if best_delta >= 0 and iteration % (4 * tenure) == 4 * tenure - 1:
            i, j = rng.choice(n, size=2, replace=False)
            i, j = int(i), int(j)
            cost += float(deltas[i, j])
            current[i], current[j] = current[j], current[i]
            instance.update_deltas_after_swap(deltas, current, i, j)
    return TabuResult(best, float(best_cost), performed)


def _relocate_delta(instance: QAPInstance, assignment: np.ndarray,
                    i: int, new_loc: int) -> float:
    """Cost change from moving logical ``i`` to the free ``new_loc``.

    Deprecated alias for :meth:`QAPInstance.relocate_delta_reference`,
    kept for callers of the old module-level helper.
    """
    return instance.relocate_delta_reference(assignment, i, new_loc)
