"""Mapping perf smoke: vectorized kernel vs the scalar reference.

Run as ``python -m repro.mapping.perf_smoke``.  Builds a fixed n = 16
Heisenberg instance on sycamore, evaluates the full swap neighbourhood
both ways -- one :meth:`QAPInstance.swap_delta_matrix` call against
O(n^2) scalar :meth:`QAPInstance.swap_delta_reference` probes -- and
asserts the vectorized path is at least ``MIN_RATIO`` times faster.
The check is *relative* (both sides run in the same process on the same
machine), so it is robust to slow CI runners; it also re-asserts
bit-identical deltas, because a fast wrong kernel is worse than a slow
right one.
"""

from __future__ import annotations

import sys
import time

import numpy as np

MIN_RATIO = 3.0
N_QUBITS = 16
ROUNDS = 5


def build_instance():
    """The fixed smoke instance: unified n=16 Heisenberg on sycamore."""
    from repro.core.unify import unify_circuit_operators
    from repro.devices import sycamore
    from repro.hamiltonians.models import nnn_heisenberg
    from repro.hamiltonians.trotter import trotter_step
    from repro.mapping.qap import qap_from_problem

    step = unify_circuit_operators(
        trotter_step(nnn_heisenberg(N_QUBITS, seed=0)))
    return qap_from_problem(step, sycamore())


def measure(rounds: int = ROUNDS) -> tuple[float, float, bool]:
    """(vectorized seconds, scalar seconds, deltas identical) for one
    full swap-neighbourhood evaluation, best of ``rounds``."""
    instance = build_instance()
    n = instance.n_logical
    rng = np.random.default_rng(0)
    assignment = np.array(rng.permutation(instance.n_physical)[:n])

    def scalar_matrix() -> np.ndarray:
        deltas = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                deltas[i, j] = instance.swap_delta_reference(assignment, i, j)
        return deltas

    vectorized_s = min(_timed(instance.swap_delta_matrix, assignment)
                       for _ in range(rounds))
    scalar_s = min(_timed(scalar_matrix) for _ in range(rounds))
    fast = instance.swap_delta_matrix(assignment)
    slow = scalar_matrix()
    identical = bool(np.array_equal(np.triu(fast, k=1), slow))
    return vectorized_s, scalar_s, identical


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def main() -> int:
    vectorized_s, scalar_s, identical = measure()
    ratio = scalar_s / vectorized_s if vectorized_s > 0 else float("inf")
    print(f"mapping perf smoke (n={N_QUBITS}): "
          f"vectorized {vectorized_s * 1e6:.0f}us, "
          f"scalar reference {scalar_s * 1e6:.0f}us, "
          f"ratio {ratio:.1f}x (need >= {MIN_RATIO}x), "
          f"bit-identical: {identical}")
    if not identical:
        print("FAIL: vectorized deltas differ from the scalar reference")
        return 1
    if ratio < MIN_RATIO:
        print(f"FAIL: vectorized kernel only {ratio:.1f}x faster")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
