"""GRASP for the QAP (the paper's reference [55] alternative heuristic).

Greedy Randomised Adaptive Search Procedure: each iteration builds a
solution with a randomised greedy construction (place the heaviest
remaining flow pair on the closest available location pair, choosing
among the best few candidates at random), then improves it with a
first-improvement 2-swap local search.  Kept deliberately simple -- it
exists to ablate the mapping heuristic choice, not to beat Tabu.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.qap import QAPInstance
from repro.mapping.tabu import TabuResult


def grasp_search(instance: QAPInstance, seed: int = 0,
                 iterations: int = 20, candidate_pool: int = 3,
                 ) -> TabuResult:
    """Minimise the QAP objective with GRASP restarts."""
    rng = np.random.default_rng(seed)
    best: np.ndarray | None = None
    best_cost = np.inf
    for _ in range(iterations):
        assignment = _greedy_randomized_construction(
            instance, rng, candidate_pool
        )
        assignment, cost = _local_search(instance, assignment)
        if cost < best_cost:
            best_cost, best = cost, assignment
    assert best is not None
    return TabuResult(best, float(best_cost), iterations)


def _greedy_randomized_construction(instance: QAPInstance,
                                    rng: np.random.Generator,
                                    pool: int) -> np.ndarray:
    n, m = instance.n_logical, instance.n_physical
    flow, dist = instance.flow, instance.distance
    assignment = np.full(n, -1, dtype=int)
    used: set[int] = set()
    # order logical qubits by total flow (heaviest first)
    order = np.argsort(-flow.sum(axis=1))
    for logical in order:
        placed_partners = [
            k for k in range(n)
            if assignment[k] >= 0 and flow[logical, k] > 0
        ]
        candidates = [loc for loc in range(m) if loc not in used]
        if placed_partners:
            def score(loc: int) -> float:
                return sum(
                    flow[logical, k] * dist[loc, assignment[k]]
                    for k in placed_partners
                )
            candidates.sort(key=score)
        else:
            rng.shuffle(candidates)
        take = min(pool, len(candidates))
        chosen = candidates[int(rng.integers(take))]
        assignment[logical] = chosen
        used.add(chosen)
    return assignment


def _local_search(instance: QAPInstance,
                  assignment: np.ndarray) -> tuple[np.ndarray, float]:
    n = instance.n_logical
    cost = instance.cost(assignment)
    improved = True
    while improved:
        improved = False
        for i in range(n):
            for j in range(i + 1, n):
                delta = instance.swap_delta(assignment, i, j)
                if delta < -1e-12:
                    assignment[i], assignment[j] = (
                        assignment[j], assignment[i]
                    )
                    cost += delta
                    improved = True
    return assignment, float(cost)
