"""GRASP for the QAP (the paper's reference [55] alternative heuristic).

Greedy Randomised Adaptive Search Procedure: each iteration builds a
solution with a randomised greedy construction (place the heaviest
remaining flow pair on the closest available location pair, choosing
among the best few candidates at random), then improves it with a
first-improvement 2-swap local search.  Kept deliberately simple -- it
exists to ablate the mapping heuristic choice, not to beat Tabu.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.qap import QAPInstance
from repro.mapping.tabu import TabuResult


def grasp_search(instance: QAPInstance, seed: int = 0,
                 iterations: int = 20, candidate_pool: int = 3,
                 ) -> TabuResult:
    """Minimise the QAP objective with GRASP restarts."""
    rng = np.random.default_rng(seed)
    best: np.ndarray | None = None
    best_cost = np.inf
    for _ in range(iterations):
        assignment = _greedy_randomized_construction(
            instance, rng, candidate_pool
        )
        assignment, cost = _local_search(instance, assignment)
        if cost < best_cost:
            best_cost, best = cost, assignment
    assert best is not None
    return TabuResult(best, float(best_cost), iterations)


def _greedy_randomized_construction(instance: QAPInstance,
                                    rng: np.random.Generator,
                                    pool: int) -> np.ndarray:
    n, m = instance.n_logical, instance.n_physical
    flow, dist = instance.flow, instance.distance
    assignment = np.full(n, -1, dtype=int)
    used: set[int] = set()
    # order logical qubits by total flow (heaviest first)
    order = np.argsort(-flow.sum(axis=1))
    for logical in order:
        placed_partners = [
            k for k in range(n)
            if assignment[k] >= 0 and flow[logical, k] > 0
        ]
        candidates = [loc for loc in range(m) if loc not in used]
        if placed_partners:
            # bind the per-iteration values as defaults: the closure is
            # consumed inside this iteration, but late binding is the
            # classic loop-closure trap (flake8-bugbear B023)
            def score(loc: int, logical: int = logical,
                      partners: tuple[int, ...] = tuple(placed_partners),
                      ) -> float:
                return sum(
                    flow[logical, k] * dist[loc, assignment[k]]
                    for k in partners
                )
            candidates.sort(key=score)
        else:
            rng.shuffle(candidates)
        take = min(pool, len(candidates))
        chosen = candidates[int(rng.integers(take))]
        assignment[logical] = chosen
        used.add(chosen)
    return assignment


def _local_search(instance: QAPInstance,
                  assignment: np.ndarray) -> tuple[np.ndarray, float]:
    """First-improvement 2-swap descent on the vectorized delta table.

    Replays the old scalar scan exactly: probe pairs in ``(i, j)``
    lexicographic order, apply the first improving swap immediately,
    resume scanning from the next pair, and stop after a full pass with
    no improvement.  The delta table replaces the O(n) scalar probe per
    pair and is refreshed in O(n^2) after each applied swap, so for
    integer-valued instances the descent path is bit-identical.
    """
    n = instance.n_logical
    cost = instance.cost(assignment)
    deltas = instance.swap_delta_matrix(assignment)
    improving = np.triu(deltas < -1e-12, k=1)
    improved = True
    while improved:
        improved = False
        scan_from = 0
        while True:
            rest = improving.flat[scan_from:]
            if not rest.any():
                break
            flat = scan_from + int(np.argmax(rest))
            i, j = flat // n, flat % n
            assignment[i], assignment[j] = assignment[j], assignment[i]
            cost += float(deltas[i, j])
            instance.update_deltas_after_swap(deltas, assignment, i, j)
            improving = np.triu(deltas < -1e-12, k=1)
            improved = True
            scan_from = flat + 1
    return assignment, float(cost)
