"""Simulated annealing for the QAP (the paper's suggested alternative,
reference [54]).  Used in the mapping ablation benchmark.

Each candidate move is scored with the vectorized
:meth:`QAPInstance.swap_delta` probe (an O(n) numpy expression rather
than a Python loop); annealing probes one random move per iteration, so
the single-move kernel is the right granularity here -- the full delta
table the Tabu search maintains would cost O(n^2) per accepted move for
no benefit."""

from __future__ import annotations

import math

import numpy as np

from repro.mapping.qap import QAPInstance
from repro.mapping.tabu import TabuResult


def simulated_annealing(instance: QAPInstance, seed: int = 0,
                        max_iterations: int | None = None,
                        start_temperature: float | None = None,
                        ) -> TabuResult:
    """Minimise the QAP objective by annealing over swap moves."""
    rng = np.random.default_rng(seed)
    n = instance.n_logical
    m = instance.n_physical
    if max_iterations is None:
        max_iterations = max(2000, 200 * n)
    current = np.array(rng.permutation(m)[:n])
    cost = instance.cost(current)
    best, best_cost = current.copy(), cost
    if start_temperature is None:
        start_temperature = max(1.0, instance.flow.sum() / max(1, n))
    for iteration in range(max_iterations):
        temperature = start_temperature * (1 - iteration / max_iterations)
        i, j = rng.choice(n, size=2, replace=False)
        delta = instance.swap_delta(current, int(i), int(j))
        accept = delta <= 0 or (
            temperature > 1e-12
            and rng.random() < math.exp(-delta / temperature)
        )
        if accept:
            current[int(i)], current[int(j)] = current[int(j)], current[int(i)]
            cost += delta
            if cost < best_cost - 1e-12:
                best_cost, best = cost, current.copy()
    return TabuResult(best, float(best_cost), max_iterations)
