"""The quadratic assignment formulation of qubit mapping (Equation 7).

Circuit qubits are *facilities*, hardware qubits are *locations*, the
*flow* between two circuit qubits is their interaction count (number of
two-qubit operators on that pair in one Trotter step), and the *distance*
is the hardware shortest-path hop count.  The objective ::

    min_phi  sum_ij  f_ij * d_{phi(i), phi(j)}

counts (twice) the SWAP-distance work an ideal router would need, so a
good assignment directly reduces inserted SWAPs.  The paper argues this
formulation works *better* for 2-local Hamiltonian simulation than for
generic circuits because any NN operator can be scheduled in any map,
making gate order irrelevant to the objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep


@dataclass
class QAPInstance:
    """Flow/distance matrices for one mapping problem.

    ``flow`` is ``n_logical x n_logical``; ``distance`` is
    ``n_physical x n_physical`` with ``n_physical >= n_logical``.
    An assignment maps logical index ``i`` to ``assignment[i]``.
    """

    flow: np.ndarray
    distance: np.ndarray

    def __post_init__(self) -> None:
        if self.flow.shape[0] != self.flow.shape[1]:
            raise ValueError("flow matrix must be square")
        if self.distance.shape[0] != self.distance.shape[1]:
            raise ValueError("distance matrix must be square")
        if self.flow.shape[0] > self.distance.shape[0]:
            raise ValueError("more logical qubits than physical qubits")
        if not np.allclose(self.flow, self.flow.T):
            raise ValueError("flow matrix must be symmetric")

    @property
    def n_logical(self) -> int:
        return self.flow.shape[0]

    @property
    def n_physical(self) -> int:
        return self.distance.shape[0]

    def cost(self, assignment: np.ndarray) -> float:
        """Objective value of a logical->physical assignment."""
        sub = self.distance[np.ix_(assignment, assignment)]
        return float((self.flow * sub).sum())

    def swap_delta(self, assignment: np.ndarray, i: int, j: int) -> float:
        """Cost change from swapping the locations of logical i and j.

        O(n) incremental evaluation -- the standard QAP neighbourhood
        trick that makes Tabu search fast.
        """
        a, b = assignment[i], assignment[j]
        if a == b:
            return 0.0
        delta = 0.0
        for k in range(self.n_logical):
            if k == i or k == j:
                continue
            c = assignment[k]
            delta += 2 * (self.flow[i, k] - self.flow[j, k]) * (
                self.distance[b, c] - self.distance[a, c]
            )
        return float(delta)


def qap_from_problem(step: TrotterStep, device: Device) -> QAPInstance:
    """Build the QAP instance for a Trotter step on a device."""
    n = step.n_qubits
    if n > device.n_qubits:
        raise ValueError(
            f"problem needs {n} qubits but device has {device.n_qubits}"
        )
    flow = np.zeros((n, n))
    for (u, v), count in step.interaction_counts().items():
        flow[u, v] += count
        flow[v, u] += count
    return QAPInstance(flow, device.distance)


def qap_cost(step: TrotterStep, device: Device,
             assignment: np.ndarray) -> float:
    """Convenience: Equation-7 cost of an assignment."""
    return qap_from_problem(step, device).cost(assignment)
