"""The quadratic assignment formulation of qubit mapping (Equation 7).

Circuit qubits are *facilities*, hardware qubits are *locations*, the
*flow* between two circuit qubits is their interaction count (number of
two-qubit operators on that pair in one Trotter step), and the *distance*
is the hardware shortest-path hop count.  The objective ::

    min_phi  sum_ij  f_ij * d_{phi(i), phi(j)}

counts (twice) the SWAP-distance work an ideal router would need, so a
good assignment directly reduces inserted SWAPs.  The paper argues this
formulation works *better* for 2-local Hamiltonian simulation than for
generic circuits because any NN operator can be scheduled in any map,
making gate order irrelevant to the objective.

Neighbourhood evaluation is vectorized (the Taillard robust-taboo-search
delta-table scheme, the paper's refs [52, 53]):
:meth:`QAPInstance.swap_delta_matrix` scores *every* swap move at once,
:meth:`QAPInstance.relocate_delta_matrix` every relocation to a free
location, and :meth:`QAPInstance.update_deltas_after_swap` /
:meth:`QAPInstance.update_deltas_after_relocate` refresh the table in
O(n^2) after a move instead of recomputing from scratch.  Because both
``flow`` (interaction counts) and ``distance`` (hop counts) are
integer-valued, every vectorized float64 sum is a sum of exactly
representable integers and therefore *exact*, independent of summation
order -- the vectorized kernels return bit-identical values to the
retained scalar references (:meth:`QAPInstance.swap_delta_reference`,
:meth:`QAPInstance.relocate_delta_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep


@dataclass
class QAPInstance:
    """Flow/distance matrices for one mapping problem.

    ``flow`` is ``n_logical x n_logical``; ``distance`` is
    ``n_physical x n_physical`` with ``n_physical >= n_logical``.
    An assignment maps logical index ``i`` to ``assignment[i]``.
    """

    flow: np.ndarray
    distance: np.ndarray

    def __post_init__(self) -> None:
        if self.flow.shape[0] != self.flow.shape[1]:
            raise ValueError("flow matrix must be square")
        if self.distance.shape[0] != self.distance.shape[1]:
            raise ValueError("distance matrix must be square")
        if self.flow.shape[0] > self.distance.shape[0]:
            raise ValueError("more logical qubits than physical qubits")
        if not np.allclose(self.flow, self.flow.T):
            raise ValueError("flow matrix must be symmetric")

    @property
    def n_logical(self) -> int:
        return self.flow.shape[0]

    @property
    def n_physical(self) -> int:
        return self.distance.shape[0]

    def cost(self, assignment: np.ndarray) -> float:
        """Objective value of a logical->physical assignment."""
        sub = self.distance[np.ix_(assignment, assignment)]
        return float((self.flow * sub).sum())

    # ------------------------------------------------------------------
    # Single-move probes
    # ------------------------------------------------------------------
    def swap_delta(self, assignment: np.ndarray, i: int, j: int) -> float:
        """Cost change from swapping the locations of logical i and j.

        Vectorized O(n) evaluation; for integer-valued instances the
        result is bit-identical to :meth:`swap_delta_reference`.
        """
        a, b = assignment[i], assignment[j]
        if a == b:
            return 0.0
        terms = (self.flow[i] - self.flow[j]) * (
            self.distance[b, assignment] - self.distance[a, assignment]
        )
        return float(2.0 * (terms.sum() - terms[i] - terms[j]))

    def swap_delta_reference(self, assignment: np.ndarray,
                             i: int, j: int) -> float:
        """Scalar reference for :meth:`swap_delta` (kept for equivalence
        tests and the CI perf smoke; not used on the compile path)."""
        a, b = assignment[i], assignment[j]
        if a == b:
            return 0.0
        delta = 0.0
        for k in range(self.n_logical):
            if k == i or k == j:
                continue
            c = assignment[k]
            delta += 2 * (self.flow[i, k] - self.flow[j, k]) * (
                self.distance[b, c] - self.distance[a, c]
            )
        return float(delta)

    def relocate_delta_reference(self, assignment: np.ndarray,
                                 i: int, new_loc: int) -> float:
        """Scalar reference: cost change from moving logical ``i`` to the
        free location ``new_loc``."""
        old = assignment[i]
        delta = 0.0
        for k in range(self.n_logical):
            if k == i:
                continue
            c = assignment[k]
            delta += 2 * self.flow[i, k] * (
                self.distance[new_loc, c] - self.distance[old, c]
            )
        return float(delta)

    # ------------------------------------------------------------------
    # Full-neighbourhood kernels
    # ------------------------------------------------------------------
    def swap_delta_matrix(self, assignment: np.ndarray) -> np.ndarray:
        """All swap-move deltas at once: ``delta[i, j]`` is the cost
        change of swapping logical ``i`` and ``j``.

        Symmetric with a zero diagonal; one matmul instead of O(n^2)
        scalar probes.  Exact for integer-valued instances.
        """
        flow = self.flow
        sub = self.distance[np.ix_(assignment, assignment)]
        cross = flow @ sub.T                    # cross[i, j] = sum_k F[i,k] S[j,k]
        diag_sum = np.einsum("ik,ik->i", flow, sub)
        flow_diag = np.diagonal(flow)
        sub_diag = np.diagonal(sub)
        # full-sum expansion minus the k=i and k=j terms the move excludes
        k_is_i = (flow_diag[:, None] - flow.T) * (sub.T - sub_diag[:, None])
        k_is_j = (flow - flow_diag[None, :]) * (sub_diag[None, :] - sub)
        delta = 2.0 * (cross + cross.T
                       - diag_sum[:, None] - diag_sum[None, :]
                       - k_is_i - k_is_j)
        np.fill_diagonal(delta, 0.0)
        return delta

    def relocate_delta_matrix(self, assignment: np.ndarray,
                              free: np.ndarray) -> np.ndarray:
        """All relocation deltas at once: ``delta[i, l]`` is the cost
        change of moving logical ``i`` to the free location ``free[l]``.
        """
        free = np.asarray(free, dtype=int)
        flow = self.flow
        sub = self.distance[np.ix_(assignment, assignment)]
        to_free = self.distance[np.ix_(free, assignment)]
        cross = flow @ to_free.T                # cross[i, l] = sum_k F[i,k] D[free_l, a_k]
        diag_sum = np.einsum("ik,ik->i", flow, sub)
        k_is_i = np.diagonal(flow)[:, None] * (
            to_free.T - np.diagonal(sub)[:, None]
        )
        return 2.0 * (cross - diag_sum[:, None] - k_is_i)

    def swap_delta_row(self, assignment: np.ndarray, i: int) -> np.ndarray:
        """One row of :meth:`swap_delta_matrix`: deltas of swapping ``i``
        with every other logical qubit, under ``assignment``."""
        flow = self.flow
        sub = self.distance[np.ix_(assignment, assignment)]
        terms = (flow[i][None, :] - flow) * (sub - sub[i][None, :])
        row = 2.0 * (terms.sum(axis=1) - terms[:, i] - np.diagonal(terms))
        row[i] = 0.0
        return row

    # ------------------------------------------------------------------
    # Taillard-style O(n^2) incremental updates
    # ------------------------------------------------------------------
    def update_deltas_after_swap(self, delta: np.ndarray,
                                 assignment: np.ndarray,
                                 i: int, j: int) -> np.ndarray:
        """Refresh a delta table in place after swapping ``i`` and ``j``.

        ``assignment`` is the assignment *after* the swap.  Entries not
        involving ``i``/``j`` pick up only the two changed summation
        terms (Taillard's update); rows/columns ``i`` and ``j`` are
        recomputed.  O(n^2) total, and exact for integer-valued
        instances -- the updated table equals a fresh
        :meth:`swap_delta_matrix` bit for bit.
        """
        flow_diff = self.flow[:, i] - self.flow[:, j]
        # pre-swap location of i is assignment[j] and vice versa; rows
        # i/j of these vectors are wrong but overwritten just below
        dist_diff = (self.distance[assignment[i], assignment]
                     - self.distance[assignment[j], assignment])
        delta -= 2.0 * np.subtract.outer(flow_diff, flow_diff) \
            * np.subtract.outer(dist_diff, dist_diff)
        for moved in (i, j):
            row = self.swap_delta_row(assignment, moved)
            delta[moved, :] = row
            delta[:, moved] = row
        return delta

    def update_deltas_after_relocate(self, delta: np.ndarray,
                                     assignment: np.ndarray,
                                     i: int, old_loc: int) -> np.ndarray:
        """Refresh a delta table in place after relocating ``i``.

        ``assignment`` is the assignment *after* the move (``i`` now
        sits on its new location) and ``old_loc`` the location it
        vacated.  Only the ``k = i`` summation term of each entry
        changes; row/column ``i`` are recomputed.  O(n^2), exact for
        integer-valued instances.
        """
        flow_i = self.flow[:, i]
        shift = (self.distance[assignment[i], assignment]
                 - self.distance[old_loc, assignment])
        delta -= 2.0 * np.subtract.outer(flow_i, flow_i) \
            * np.subtract.outer(shift, shift)
        row = self.swap_delta_row(assignment, i)
        delta[i, :] = row
        delta[:, i] = row
        return delta


def qap_from_problem(step: TrotterStep, device: Device) -> QAPInstance:
    """Build the QAP instance for a Trotter step on a device."""
    n = step.n_qubits
    if n > device.n_qubits:
        raise ValueError(
            f"problem needs {n} qubits but device has {device.n_qubits}"
        )
    flow = np.zeros((n, n))
    for (u, v), count in step.interaction_counts().items():
        flow[u, v] += count
        flow[v, u] += count
    return QAPInstance(flow, device.distance)


def qap_cost(step: TrotterStep, device: Device,
             assignment: np.ndarray) -> float:
    """Convenience: Equation-7 cost of an assignment."""
    return qap_from_problem(step, device).cost(assignment)
