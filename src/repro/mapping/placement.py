"""Simple placement strategies and the best-of-k wrapper.

The paper runs randomized mapping five times and keeps the best result
(Section IV, "Quantum compilers"); :func:`best_of_k_mapping` implements
that protocol around any QAP solver.  ``line_placement`` mirrors t|ket>'s
LinePlacement fallback used for large circuits.

All bundled solvers (:func:`~repro.mapping.tabu.tabu_search`,
:func:`~repro.mapping.annealing.simulated_annealing`,
:func:`~repro.mapping.grasp.grasp_search`) probe moves through the
vectorized :class:`~repro.mapping.qap.QAPInstance` delta kernels, so a
best-of-k wrapper around any of them inherits the vectorized speed with
bit-identical trial outcomes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.devices.topology import Device
from repro.mapping.qap import QAPInstance
from repro.mapping.tabu import TabuResult, tabu_search


def identity_mapping(n_logical: int, device: Device) -> np.ndarray:
    """Logical qubit i on physical qubit i."""
    if n_logical > device.n_qubits:
        raise ValueError("not enough physical qubits")
    return np.arange(n_logical)


def random_mapping(n_logical: int, device: Device, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.array(rng.permutation(device.n_qubits)[:n_logical])


def line_placement(n_logical: int, device: Device) -> np.ndarray:
    """Place logical qubits along a long simple path of the device.

    Greedy DFS-based longest-path heuristic: start from a minimum-degree
    qubit and extend to the least-connected unvisited neighbour; restart
    from the path's other end when stuck.
    """
    if n_logical > device.n_qubits:
        raise ValueError("not enough physical qubits")
    degree = [len(device.neighbors(q)) for q in range(device.n_qubits)]
    start = int(np.argmin(degree))
    path = [start]
    used = {start}
    while len(path) < n_logical:
        extended = False
        for endpoint_idx in (-1, 0):
            tip = path[endpoint_idx]
            candidates = sorted(
                (q for q in device.neighbors(tip) if q not in used),
                key=lambda q: degree[q],
            )
            if candidates:
                nxt = candidates[0]
                used.add(nxt)
                if endpoint_idx == -1:
                    path.append(nxt)
                else:
                    path.insert(0, nxt)
                extended = True
                break
        if not extended:
            # path is stuck; append the closest unused qubit
            remaining = [q for q in range(device.n_qubits) if q not in used]
            dist = device.distance
            tip = path[-1]
            nxt = min(remaining, key=lambda q: dist[tip, q])
            used.add(nxt)
            path.append(nxt)
    return np.array(path[:n_logical])


def _solve_trial(job: tuple) -> TabuResult:
    """Process-pool entry point for one mapping trial."""
    solver, instance, trial_seed, solver_kwargs = job
    return solver(instance, seed=trial_seed, **solver_kwargs)


def best_of_k_mapping(instance: QAPInstance, k: int = 5, seed: int = 0,
                      solver: Callable[..., TabuResult] = tabu_search,
                      jobs: int = 1, **solver_kwargs) -> TabuResult:
    """Run the solver ``k`` times with different seeds; keep the best.

    ``jobs > 1`` fans the trials out over a process pool.  Each trial's
    seed is derived exactly as in the serial loop and the best-result
    selection scans trials in order with a strict ``<``, so the chosen
    mapping is bit-identical for every ``jobs`` value -- parallelism
    changes wall time only.
    """
    trial_seeds = [seed + 1000 * trial for trial in range(k)]
    if jobs > 1 and k > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, k)) as pool:
            results = list(pool.map(
                _solve_trial,
                [(solver, instance, s, solver_kwargs) for s in trial_seeds],
            ))
    else:
        results = [solver(instance, seed=s, **solver_kwargs)
                   for s in trial_seeds]
    best: TabuResult | None = None
    for result in results:
        if best is None or result.cost < best.cost:
            best = result
    assert best is not None
    return best
