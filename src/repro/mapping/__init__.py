"""Qubit initial placement as a quadratic assignment problem (QAP)."""

from repro.mapping.qap import QAPInstance, qap_cost, qap_from_problem
from repro.mapping.tabu import tabu_search
from repro.mapping.annealing import simulated_annealing
from repro.mapping.grasp import grasp_search
from repro.mapping.placement import (
    best_of_k_mapping,
    identity_mapping,
    line_placement,
    random_mapping,
)

__all__ = [
    "QAPInstance",
    "qap_cost",
    "qap_from_problem",
    "tabu_search",
    "simulated_annealing",
    "grasp_search",
    "identity_mapping",
    "random_mapping",
    "line_placement",
    "best_of_k_mapping",
]
