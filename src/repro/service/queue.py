"""The compile server's priority job queue.

A :class:`Job` is one pending compilation: the request, its dedupe key
(computed once by the submitter and threaded through), a priority, an
optional timeout and a ``concurrent.futures.Future`` that every waiter
-- including waiters *coalesced* onto the job after submission -- blocks
on.  The :class:`JobQueue` orders jobs by priority (higher first, FIFO
within a priority level), bounds its depth so the server can return
backpressure instead of buffering unboundedly, and supports a drain-or-
discard close for graceful shutdown.

The queue is thread-safe: the asyncio front end submits from the event
loop, worker threads pop concurrently, and tests pause/resume it to
freeze scheduling deterministically.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.cancel import CancelToken
from repro.service.batch import CompileRequest


class QueueFullError(RuntimeError):
    """The queue is at capacity; the caller should apply backpressure."""


class QueueClosedError(RuntimeError):
    """The queue no longer accepts jobs (the server is shutting down)."""


@dataclass(eq=False)
class Job:
    """One queued compilation and the future its waiters share.

    ``cancel_token`` rides into the pipeline (checked at every pass
    boundary), so :meth:`cancel` stops a *running* compile at its next
    boundary, not just a queued one.  ``waiters`` counts the clients
    blocked on the shared future -- submission and coalescing each add
    one -- so a disconnecting or timing-out client only cancels the
    compile when it was the last one interested (:meth:`release_waiter`).
    ``attempts`` counts executions for the process-worker supervisor's
    bounded retry / poison-quarantine policy.
    """

    request: CompileRequest
    key: str
    tenant: str = ""
    priority: int = 0
    timeout_s: float | None = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    cancelled: bool = False
    started: bool = False
    attempts: int = 0
    cancel_token: CancelToken = field(default_factory=CancelToken, repr=False)
    waiters: int = 0
    _waiter_lock: threading.Lock = field(default_factory=threading.Lock,
                                         repr=False)

    def __post_init__(self) -> None:
        if self.timeout_s is not None:
            self.cancel_token.deadline = self.enqueued_at + self.timeout_s

    @property
    def deadline(self) -> float | None:
        """Monotonic instant after which the job must not start."""
        if self.timeout_s is None:
            return None
        return self.enqueued_at + self.timeout_s

    @property
    def expired(self) -> bool:
        deadline = self.deadline
        return deadline is not None and time.monotonic() > deadline

    def cancel(self) -> None:
        """Stop the job: dead-on-arrival if still queued (a worker
        popping it resolves the shared future without compiling), and
        the cancel token aborts a running compile at its next pass
        boundary."""
        self.cancelled = True
        self.cancel_token.cancel()

    def add_waiter(self) -> None:
        with self._waiter_lock:
            self.waiters += 1

    def release_waiter(self) -> bool:
        """Drop one waiter; True when nobody is left listening (the
        caller should then :meth:`cancel` the now-abandoned job)."""
        with self._waiter_lock:
            self.waiters -= 1
            return self.waiters <= 0

    def resolve(self, response) -> None:
        """Complete the shared future exactly once (later calls no-op)."""
        if not self.future.done():
            self.future.set_result(response)


class JobQueue:
    """Bounded, thread-safe priority queue of :class:`Job` values.

    Higher ``priority`` pops first; jobs of equal priority pop in
    submission order.  ``put`` never blocks: a full queue raises
    :class:`QueueFullError` immediately (the server turns that into an
    HTTP 429) and a closed queue raises :class:`QueueClosedError` (503).
    ``get`` blocks until a job is available; after :meth:`close` it
    drains the remaining jobs and then returns ``None``, the worker
    exit sentinel.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False
        self._paused = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, job: Job) -> None:
        with self._cond:
            if self._closed:
                raise QueueClosedError("job queue is closed")
            if len(self._heap) >= self.maxsize:
                raise QueueFullError(
                    f"job queue is full ({self.maxsize} pending jobs)")
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority job; ``None`` means shut down.

        Blocks while the queue is empty or paused (closing overrides a
        pause, so shutdown always drains).  With ``timeout`` set, raises
        :class:`TimeoutError` if nothing became available in time.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while True:
                if self._heap and (not self._paused or self._closed):
                    return heapq.heappop(self._heap)[2]
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("no job within the timeout")
                self._cond.wait(remaining)

    def close(self) -> list[Job]:
        """Stop accepting jobs; wake every waiter.  Idempotent.

        Pending jobs stay queued for workers to drain (the graceful
        path).  Use :meth:`drain` first for a hard stop that hands the
        pending jobs back instead of running them.
        """
        with self._cond:
            self._closed = True
            self._paused = False
            self._cond.notify_all()
            return [entry[2] for entry in self._heap]

    def drain(self) -> list[Job]:
        """Remove and return every pending job (hard-stop path)."""
        with self._cond:
            jobs = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            self._cond.notify_all()
            return jobs

    def pause(self) -> None:
        """Hold jobs back from ``get`` (tests freeze scheduling here)."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()
