"""Fault injection for the serving stack.

Production hardening is only as good as its tests, and the failure
modes worth testing -- a worker segfaulting mid-compile, the journal
disk filling up, a client vanishing while its job runs -- do not occur
naturally in CI.  This module makes them injectable:

* :class:`FaultPlan` describes *which* faults to inject.  It serialises
  to the ``REPRO_SERVICE_FAULTS`` environment variable, so a plan set in
  a test (or in a CI driver script) is visible to pool children and to
  ``repro serve`` subprocesses alike.
* Counted faults ("crash the first N executions") coordinate across
  processes through *marker files* claimed with ``O_CREAT | O_EXCL``:
  each injection atomically claims one marker, so exactly N faults fire
  no matter how many workers race for them and no shared counter is
  needed.
* The hooks are no-ops when no plan is active; the production code
  paths call them unconditionally.

Hooks and where the serving stack calls them:

* :func:`maybe_crash` -- worker entry points.  In a process child
  (``hard=True``) the injected crash is ``os._exit``, indistinguishable
  from a segfault to the supervisor; in a thread worker it raises
  :class:`InjectedWorkerCrash`.
* :func:`instrument` -- ``execute_request`` hooks the cancel token's
  ``on_checkpoint`` so a named pass boundary stalls for
  ``slow_seconds`` (giving disconnect/cancellation tests a window).
* :func:`journal_should_fail` -- :meth:`JobJournal.append
  <repro.service.journal.JobJournal.append>` turns a claimed marker
  into an ``OSError``, exercising the degrade-gracefully path.
* :func:`drop_connection` -- a client-side helper that sends a request
  and slams the socket shut, for disconnect-detection tests.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import asdict, dataclass
from pathlib import Path

ENV_VAR = "REPRO_SERVICE_FAULTS"

_PLAN: "FaultPlan | None" = None


class InjectedWorkerCrash(RuntimeError):
    """The thread-mode stand-in for a worker process dying."""


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject, serialisable across process boundaries.

    ``marker_dir`` hosts the claim markers for every counted fault; it
    must be shared by all participating processes (a tmp dir in tests).
    Counted faults with no ``marker_dir`` never fire.
    """

    marker_dir: str | None = None
    crash_times: int = 0            # first N executions die
    slow_pass: str | None = None    # stall at the boundary before this pass
    slow_seconds: float = 0.0
    journal_fail_times: int = 0     # first N journal appends raise OSError

    def to_env(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_env(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


def install(plan: FaultPlan | None) -> None:
    """Activate ``plan`` in this process (tests; ``None`` clears it)."""
    global _PLAN
    _PLAN = plan


def active() -> FaultPlan | None:
    """The in-process plan, else the one in the environment, else None."""
    if _PLAN is not None:
        return _PLAN
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    try:
        return FaultPlan.from_env(text)
    except (json.JSONDecodeError, TypeError, ValueError):
        return None


def _claim(plan: FaultPlan, prefix: str, times: int) -> bool:
    """Atomically claim one of ``times`` markers; True exactly N times
    across every process sharing ``marker_dir``."""
    if times <= 0 or plan.marker_dir is None:
        return False
    directory = Path(plan.marker_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for index in range(times):
        try:
            fd = os.open(directory / f"{prefix}-{index}",
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def maybe_crash(*, hard: bool) -> None:
    """Die here if the active plan still owes a worker crash.

    ``hard=True`` (process children) exits the interpreter without
    cleanup -- to the parent this is exactly a native crash.
    ``hard=False`` (thread workers) raises instead, since ``os._exit``
    would take the whole server down.
    """
    plan = active()
    if plan is None or not _claim(plan, "crash", plan.crash_times):
        return
    if hard:
        os._exit(3)
    raise InjectedWorkerCrash("injected worker crash")


def instrument(token) -> None:
    """Attach the plan's slow-pass stall to a cancel token, if any."""
    plan = active()
    if plan is None or not plan.slow_pass or plan.slow_seconds <= 0:
        return
    target, seconds = plan.slow_pass, plan.slow_seconds
    previous = token.on_checkpoint

    def _stall(where: str) -> None:
        if previous is not None:
            previous(where)
        if where == target:
            time.sleep(seconds)

    token.on_checkpoint = _stall


def journal_should_fail() -> bool:
    """True if the active plan still owes a journal write failure."""
    plan = active()
    return plan is not None and _claim(plan, "journal",
                                       plan.journal_fail_times)


def drop_connection(host: str, port: int, payload: dict,
                    path: str = "/compile") -> None:
    """POST a request and close the socket without reading the response.

    Simulates a client that gives up (or dies) while its compile runs;
    the server's disconnect monitor should observe EOF and cancel the
    job on behalf of its last waiter.
    """
    body = json.dumps(payload).encode()
    head = (f"POST {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode()
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(head + body)
    # context exit closes the socket: the server sees EOF immediately
