"""The batch compilation front end.

A :class:`CompileRequest` is a plain-values description of one
compilation (benchmark, size, compiler, device, gate set, seed), a
:class:`CompileResponse` the metrics it produced.  The
:class:`BatchCompiler` serves a list of requests the way a compilation
service would:

* *deduplication* -- identical requests (after canonicalising compiler
  aliases and dropping device/gate-set fields the compiler ignores) are
  compiled once;
* *shared cache* -- one :class:`~repro.cache.ArtifactCache` spans the
  batch, so requests that share a pipeline prefix (same problem for
  several compilers, same compiler for several gate sets) reuse each
  other's stage artifacts, and a ``cache_dir`` persists artifacts
  across batches and processes;
* *fan-out* -- with ``jobs > 1`` unique requests spread over a
  ``ProcessPoolExecutor`` whose workers share the disk cache layer;
* *structural coalescing* -- requests that carry ``parameters`` and
  differ only in angle values share one structural compilation
  (everything before the pipeline's binding pass); each request then
  binds its own angles, bit-identical to a from-scratch compile.

Responses come back in request order, duplicates marked
``deduplicated=True``.  Failures are isolated per request: a compilation
that raises becomes an error-carrying response (``error`` set, metrics
zeroed) while the rest of the batch is served normally -- completed work
is drained, never discarded, mirroring ``run_engine``.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache.store import ArtifactCache
from repro.core.cancel import CancelToken
from repro.service import faults

_REQUEST_DEFAULTS = {
    "compiler": "2qan",
    "benchmark": "NNN_Heisenberg",
    "n_qubits": 8,
    "device": "montreal",
    "gateset": "CNOT",
    "seed": 0,
    "qaoa_degree": 3,
    "parameters": (),
}

#: Benchmark families that consume ``qaoa_degree``.
_DEGREE_FAMILIES = ("QAOA-REG", "QAOA-WR")


@dataclass(frozen=True)
class CompileRequest:
    """One compilation, described entirely by plain values.

    ``parameters`` optionally carries angle bindings as sorted
    ``(name, value)`` pairs (JSON form: an object such as
    ``{"gamma": 0.4, "beta": 1.1}``).  A request with parameters is
    served through the structure/parameter split: the benchmark's
    *symbolic* step is compiled structurally once per
    :meth:`structural_key` and each request's angles are bound at the
    end -- bit-identical to compiling the concrete circuit.
    """

    compiler: str = _REQUEST_DEFAULTS["compiler"]
    benchmark: str = _REQUEST_DEFAULTS["benchmark"]
    n_qubits: int = _REQUEST_DEFAULTS["n_qubits"]
    device: str = _REQUEST_DEFAULTS["device"]
    gateset: str = _REQUEST_DEFAULTS["gateset"]
    seed: int = _REQUEST_DEFAULTS["seed"]
    qaoa_degree: int = _REQUEST_DEFAULTS["qaoa_degree"]
    parameters: tuple[tuple[str, float], ...] = ()

    def binding(self) -> dict[str, float]:
        """The angle binding this request carries (empty = concrete)."""
        return {name: value for name, value in self.parameters}

    def _key_payload(self) -> dict:
        from repro.core.registry import resolve_spec

        spec = resolve_spec(self.compiler)
        return {
            "compiler": spec.name,
            "benchmark": self.benchmark,
            "n_qubits": self.n_qubits,
            "device": (self.device.lower() if spec.requires_device
                       else None),
            "gateset": (self.gateset.upper() if spec.uses_gateset
                        else None),
            "seed": self.seed,
            "qaoa_degree": (self.qaoa_degree
                            if self.benchmark.startswith(_DEGREE_FAMILIES)
                            else None),
        }

    def key(self) -> str:
        """Dedupe key: the request after canonicalisation.

        Everything the execution path normalises is normalised here
        too, so semantically identical requests are one compile:
        compiler aliases resolve to their canonical name, the device /
        gate set collapse for compilers that ignore them (and device
        names are case-folded as ``by_name`` folds them), and
        ``qaoa_degree`` collapses for non-QAOA benchmarks (only
        ``QAOA-REG*``/``QAOA-WR*`` problems consume it).  The
        ``parameters`` field joins the key only when set, so concrete
        requests keep their historical keys byte-for-byte.
        """
        from repro.analysis.store import config_fingerprint

        payload = self._key_payload()
        if self.parameters:
            payload["parameters"] = {name: value
                                     for name, value in self.parameters}
        return config_fingerprint(payload)

    def structural_key(self) -> str:
        """Coalescing key of the angle-free structural compilation.

        Requests that differ only in their ``parameters`` values share
        one structural compile; the batch compiler fans their bindings
        out over it.
        """
        from repro.analysis.store import config_fingerprint

        payload = self._key_payload()
        payload["structural"] = True
        return config_fingerprint(payload)

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        if self.parameters:
            payload["parameters"] = self.binding()
        else:
            del payload["parameters"]
        return payload


def request_from_dict(payload: dict) -> CompileRequest:
    """Build a request from a JSON object.

    Unknown keys and wrong-typed values are rejected here, so a bad
    requests file fails with one clear message before any compilation
    starts (rather than a traceback from deep inside a worker).
    """
    unknown = sorted(set(payload) - set(_REQUEST_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown request field(s) {unknown}; expected a subset of "
            f"{sorted(_REQUEST_DEFAULTS)}"
        )
    payload = dict(payload)
    parameters = payload.pop("parameters", None)
    for key, value in payload.items():
        want = type(_REQUEST_DEFAULTS[key])
        if not isinstance(value, want) or isinstance(value, bool):
            raise ValueError(
                f"request field {key!r} must be {want.__name__}, "
                f"got {type(value).__name__} {value!r}"
            )
    if parameters is not None:
        payload["parameters"] = normalize_parameters(parameters)
    return CompileRequest(**payload)


def normalize_parameters(parameters) -> tuple[tuple[str, float], ...]:
    """Canonicalise a JSON ``parameters`` object to sorted name/value pairs.

    Accepts a ``{"gamma": 0.4, ...}`` mapping (ints are fine as values);
    anything else is rejected with the same style of message as the
    scalar request fields.
    """
    if not isinstance(parameters, dict):
        raise ValueError(
            f"request field 'parameters' must be an object mapping "
            f"parameter names to numbers, got "
            f"{type(parameters).__name__} {parameters!r}"
        )
    pairs = []
    for name, value in parameters.items():
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"parameter names must be non-empty strings, got {name!r}"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"parameter {name!r} must be a number, "
                f"got {type(value).__name__} {value!r}"
            )
        pairs.append((name, float(value)))
    return tuple(sorted(pairs))


def load_requests(path: str | Path) -> list[CompileRequest]:
    """Read a JSON file holding a list of request objects."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError("requests file must hold a JSON list of objects")
    requests = []
    for index, item in enumerate(payload):
        if not isinstance(item, dict):
            raise ValueError(
                f"request #{index} must be a JSON object, "
                f"got {type(item).__name__} {item!r}"
            )
        requests.append(request_from_dict(item))
    return requests


@dataclass(frozen=True)
class CompileResponse:
    """Metrics of one served request.

    The metric fields are deterministic (stable across runs, cache
    states and worker counts); ``seconds``/``timings``/``cache_events``
    are informational.  :meth:`to_dict` returns only the deterministic
    part, so serialised batch output is byte-identical between a cold
    and a warm run -- the cache-smoke CI job asserts exactly that.

    A request whose compilation failed is served as an error-carrying
    response: ``error`` holds the exception text, ``failed`` is true and
    every metric field sits at its zero/None placeholder.  Successful
    responses keep ``error = None`` and an unchanged ``to_dict`` shape.
    """

    request: CompileRequest
    n_swaps: int
    n_dressed: int
    n_two_qubit_gates: int
    two_qubit_depth: int
    total_depth: int
    qap_cost: float | None
    seconds: float
    timings: dict[str, float] = field(default_factory=dict)
    cache_events: dict[str, str] = field(default_factory=dict)
    deduplicated: bool = False
    error: str | None = None
    #: The request's dedupe key, computed once by the serving layer and
    #: threaded through (``None`` only when the key itself is
    #: uncomputable, e.g. an unknown compiler name).  Clients correlate
    #: coalesced/deduplicated responses on this field instead of
    #: recomputing ``key()`` themselves.
    request_key: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def cache_hits(self) -> int:
        from repro.cache.cached import count_cache_hits

        return count_cache_hits(self.cache_events)

    def to_dict(self) -> dict:
        """Deterministic JSON form (request + metrics, no wall times).

        Error responses additionally carry the ``error`` message (which
        is deterministic: the same bad request fails the same way).
        ``request_key`` is stable too -- it is a content fingerprint of
        the canonicalised request -- so it survives the cold-vs-warm
        byte-identity check; a response built outside the batch walk
        (``request_key`` not threaded in) derives it here once.
        """
        key = self.request_key
        if key is None:
            try:
                key = self.request.key()
            except Exception:
                key = None      # uncomputable (e.g. unknown compiler)
        payload = {
            **self.request.to_dict(),
            "request_key": key,
            "n_swaps": self.n_swaps,
            "n_dressed": self.n_dressed,
            "n_two_qubit_gates": self.n_two_qubit_gates,
            "two_qubit_depth": self.two_qubit_depth,
            "total_depth": self.total_depth,
            "qap_cost": self.qap_cost,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


def error_response(request: CompileRequest, exc: BaseException,
                   request_key: str | None = None) -> CompileResponse:
    """An error-carrying response for a request that failed to compile."""
    return CompileResponse(
        request=request,
        n_swaps=0,
        n_dressed=0,
        n_two_qubit_gates=0,
        two_qubit_depth=0,
        total_depth=0,
        qap_cost=None,
        seconds=0.0,
        error=f"{type(exc).__name__}: {exc}",
        request_key=request_key,
    )


def compute_request_keys(requests: list[CompileRequest],
                         ) -> tuple[list[str | None],
                                    dict[int, CompileResponse]]:
    """Phase 1 of the batch walk: one ``key()`` computation per request.

    Mirrors the two-phase ``decompose_circuit`` cleanup: the key is
    computed exactly once here and threaded through dedupe, execution
    and the response (``CompileResponse.request_key``).  A request whose
    key cannot be computed (e.g. an unknown compiler name) is already a
    per-request failure: its slot holds ``None`` and an error response
    is returned alongside, indexed by position.
    """
    keys: list[str | None] = []
    pre_failed: dict[int, CompileResponse] = {}
    for index, request in enumerate(requests):
        try:
            keys.append(request.key())
        except Exception as exc:
            keys.append(None)
            pre_failed[index] = error_response(request, exc)
    return keys, pre_failed


def assemble_responses(requests: list[CompileRequest],
                       keys: list[str | None],
                       computed: dict[str, CompileResponse],
                       pre_failed: dict[int, CompileResponse],
                       ) -> list[CompileResponse]:
    """Phase 3 of the batch walk: responses in request order.

    ``computed`` maps each unique key to its served response; repeats
    are marked ``deduplicated`` and echo the request as written (an
    alias-spelled duplicate keeps its own spelling).  Shared between
    :meth:`BatchCompiler.run` and the server's ``/batch`` route so both
    produce byte-identical output for the same request list.
    """
    responses: list[CompileResponse] = []
    served: set[str] = set()
    for index, (request, key) in enumerate(zip(requests, keys)):
        if key is None:
            responses.append(pre_failed[index])
            continue
        response = computed[key]
        if key in served:
            response = dataclasses.replace(response, request=request,
                                           deduplicated=True)
        served.add(key)
        responses.append(response)
    return responses


def execute_request(request: CompileRequest,
                    cache: ArtifactCache | None = None,
                    structurals: dict | None = None, *,
                    request_key: str | None = None,
                    cancel: CancelToken | None = None) -> CompileResponse:
    """Serve one request: resolve, build, compile (through the cache).

    A request carrying ``parameters`` compiles the benchmark's *symbolic*
    step and binds the angles at the end.  With ``structurals`` (a
    mutable mapping the caller keeps across requests) the structural
    prefix is compiled once per :meth:`CompileRequest.structural_key`
    and reused -- the batch compiler's coalescing path.  Without it the
    binding still flows through the cache-aware pipeline, so requests
    sharing a structural prefix reuse it through the artifact cache.
    ``request_key`` threads the dedupe key the serving layer already
    computed into the response (so it is never recomputed downstream).
    ``cancel`` rides into the pipeline context and is checked at every
    pass boundary; a fired token raises
    :class:`~repro.core.cancel.CompilationCancelled` out of this call.
    """
    from repro.analysis.harness import build_step, build_symbolic_step
    from repro.cache.cached import compile_cached
    from repro.core.bind import bind_structural, compile_structural
    from repro.core.registry import get_compiler, resolve_spec
    from repro.devices.library import all_to_all, by_name

    spec = resolve_spec(request.compiler)
    if spec.requires_device and request.device.lower() != "all-to-all":
        device = by_name(request.device)
        if request.n_qubits > device.n_qubits:
            raise ValueError(
                f"{request.n_qubits} qubits exceed {device.name}"
            )
    else:
        # all-to-all is sized to the problem, exactly as 'repro compile'
        # resolves it; device-free compilers get it regardless of name
        device = all_to_all(request.n_qubits)
    binding = request.binding()
    if binding:
        step = build_symbolic_step(request.benchmark, request.n_qubits,
                                   request.seed, request.qaoa_degree)
    else:
        step = build_step(request.benchmark, request.n_qubits, request.seed,
                          request.qaoa_degree)
    compiler = get_compiler(spec.name, device=device,
                            gateset=request.gateset, seed=request.seed)
    if cancel is not None:
        faults.instrument(cancel)
    start = time.perf_counter()
    if binding and structurals is not None:
        skey = request.structural_key()
        structural = structurals.get(skey)
        if structural is None:
            structural = compile_structural(compiler, step, cancel=cancel)
            structurals[skey] = structural
        result = bind_structural(structural, binding, cancel=cancel)
    elif cache is not None:
        result = compile_cached(compiler, step, cache,
                                binding=binding or None, cancel=cancel)
    else:
        result = compiler.compile(step, binding=binding or None,
                                  cancel=cancel)
    elapsed = time.perf_counter() - start
    metrics = result.metrics
    return CompileResponse(
        request=request,
        n_swaps=metrics.n_swaps,
        n_dressed=metrics.n_dressed,
        n_two_qubit_gates=metrics.n_two_qubit_gates,
        two_qubit_depth=metrics.two_qubit_depth,
        total_depth=metrics.total_depth,
        qap_cost=(None if math.isnan(result.qap_cost)
                  else float(result.qap_cost)),
        seconds=elapsed,
        timings=dict(result.timings),
        cache_events=dict(result.cache_events),
        request_key=request_key,
    )


_WORKER_MEMORY_CACHE: ArtifactCache | None = None


def _execute_in_worker(job: tuple[CompileRequest, str, str | None, int,
                                  float | None],
                       ) -> CompileResponse:
    """Pool entry point: workers share one per-process cache per dir.

    Without a directory each worker process still keeps a private
    in-memory cache, so requests served by the same worker reuse each
    other's artifacts across the whole pool lifetime.

    The last tuple slot is the seconds remaining until the request's
    deadline (``None`` = unbounded): cancel tokens do not cross the
    process boundary, so the child rebuilds one from the relative
    budget and enforces the deadline at its own pass boundaries.
    """
    global _WORKER_MEMORY_CACHE
    from repro.cache.store import process_cache

    request, request_key, cache_dir, memory_limit, remaining_s = job
    faults.maybe_crash(hard=True)
    cache = process_cache(cache_dir, memory_limit=memory_limit)
    if cache is None:
        if _WORKER_MEMORY_CACHE is None:
            _WORKER_MEMORY_CACHE = ArtifactCache(
                memory_limit=memory_limit)
        cache = _WORKER_MEMORY_CACHE
    cancel = CancelToken(deadline=None if remaining_s is None
                         else time.monotonic() + remaining_s)
    return execute_request(request, cache, request_key=request_key,
                           cancel=cancel)


@dataclass(frozen=True)
class BatchSummary:
    """What one batch run did, for reports and the CLI summary line."""

    n_requests: int
    n_unique: int
    artifact_hits: int
    artifact_misses: int
    seconds: float
    n_failed: int = 0

    def line(self) -> str:
        failed = f", {self.n_failed} failed" if self.n_failed else ""
        return (f"batch: {self.n_requests} requests "
                f"({self.n_unique} unique), "
                f"artifact hits: {self.artifact_hits}, "
                f"misses: {self.artifact_misses}, "
                f"{self.seconds:.2f}s{failed}")


@dataclass
class BatchCompiler:
    """Serve batches of compile requests with dedupe, cache and fan-out.

    ``cache_dir=None`` with serial serving (``jobs=1``) caches in
    memory within and across batches served by this instance; a
    directory makes artifacts persistent and shareable across
    processes.  Persistent directories are nested under a source digest
    (:func:`repro.cache.store.salted_directory`) at construction,
    enforcing the documented invalidation rule: a source change starts
    a fresh cache instead of replaying artifacts the old code produced.
    With ``jobs > 1`` the pool lives only for one ``run()``: workers
    share the disk layer when a ``cache_dir`` is set, and without one
    each worker keeps a private memory cache (intra-batch reuse and
    dedupe still apply, but cross-batch reuse needs a ``cache_dir``).
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    memory_limit: int = 1024
    _cache: ArtifactCache | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            from repro.cache.store import salted_directory

            self.cache_dir = salted_directory(self.cache_dir)
        if self._cache is None:
            self._cache = ArtifactCache(self.cache_dir,
                                        memory_limit=self.memory_limit)

    @property
    def cache(self) -> ArtifactCache:
        return self._cache

    def run(self, requests: list[CompileRequest],
            ) -> tuple[list[CompileResponse], BatchSummary]:
        """Serve one batch; responses come back in request order.

        Failures are isolated per request: a compilation that raises
        yields an error-carrying :class:`CompileResponse` (see
        :func:`error_response`) while every other request is still
        served.  In parallel mode all futures are drained the way
        :func:`repro.analysis.engine.run_engine` drains its pool, so
        completed work is never discarded because a sibling failed.
        """
        from repro.cache.store import stats_delta

        start = time.perf_counter()
        stats_before = self._cache.stats()
        # phase 1: one key() per request; uncomputable keys (e.g. an
        # unknown compiler name) become per-request failures up front
        keys, pre_failed = compute_request_keys(requests)
        unique: list[tuple[CompileRequest, str]] = []
        seen: set[str] = set()
        for request, key in zip(requests, keys):
            if key is not None and key not in seen:
                seen.add(key)
                unique.append((request, key))

        computed: dict[str, CompileResponse] = {}
        if self.jobs > 1 and len(unique) > 1:
            cache_dir = (str(self.cache_dir)
                         if self.cache_dir is not None else None)
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(unique))) as pool:
                futures = {
                    pool.submit(_execute_in_worker,
                                (request, key, cache_dir,
                                 self.memory_limit, None)): (request, key)
                    for request, key in unique
                }
                # drain every future even after a failure, so responses
                # that did complete are served alongside the error ones
                for future in as_completed(futures):
                    request, key = futures[future]
                    try:
                        computed[key] = future.result()
                    except Exception as exc:
                        computed[key] = error_response(request, exc,
                                                       request_key=key)
            # worker counters stay in the workers; report what is
            # visible batch-wide instead: per-response events
            hits = sum(r.cache_hits for r in computed.values())
            misses = (sum(len(r.cache_events) for r in computed.values())
                      - hits)
        else:
            # serial mode coalesces parameterised requests: one
            # structural compile per structural_key, one bind per request
            structurals: dict = {}
            for request, key in unique:
                try:
                    computed[key] = execute_request(request, self._cache,
                                                    structurals,
                                                    request_key=key)
                except Exception as exc:
                    computed[key] = error_response(request, exc,
                                                   request_key=key)
            delta = stats_delta(stats_before, self._cache.stats())
            hits = delta["hits"]
            misses = delta["misses"]

        responses = assemble_responses(requests, keys, computed, pre_failed)
        summary = BatchSummary(
            n_requests=len(requests),
            n_unique=len(unique),
            artifact_hits=hits,
            artifact_misses=misses,
            seconds=time.perf_counter() - start,
            n_failed=sum(1 for response in responses if response.failed),
        )
        return responses, summary
