"""Client SDK for the compile service.

:class:`CompileClient` speaks the server's JSON-over-HTTP protocol with
stdlib ``http.client`` only.  Connections are kept alive and reused
across calls (one persistent connection per thread; a stale socket is
retried once on a fresh one).  Transient failures -- connection errors,
429 backpressure from a full queue, 503 from a draining server -- are
retried; when the server supplies a ``Retry-After`` header the client
sleeps exactly that long, otherwise it falls back to exponential
backoff.  Anything else raises :class:`ServiceError` with the server's
status and message.

    client = CompileClient(port=8000)
    response = client.compile(CompileRequest(benchmark="NNN_Ising", ...))
    responses = client.compile_batch(requests, tenant="team-a")
    client.close()          # or: with CompileClient(...) as client: ...
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Callable, Iterable, Sequence

from repro.service.batch import CompileRequest

#: HTTP statuses that signal a transient condition worth retrying.
RETRYABLE_STATUSES = (429, 503)


class ServiceError(RuntimeError):
    """A non-retryable (or retry-exhausted) server response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class CompileClient:
    """Retrying keep-alive HTTP client for a compile server.

    ``retries`` counts *additional* attempts after the first; attempt
    ``n`` sleeps the server's ``Retry-After`` when the previous answer
    carried one, else ``backoff_s * 2**(n-1)``.  ``sleep`` is injectable
    so tests assert the backoff schedule without waiting.

    One ``http.client.HTTPConnection`` persists per calling thread, so
    a client shared across threads never interleaves two exchanges on
    one socket.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout_s: float = 60.0, retries: int = 3,
                 backoff_s: float = 0.1,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = sleep
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: list[http.client.HTTPConnection] = []

    # ------------------------------------------------------------------
    # transport (the test seam: scripted fakes override _send)
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout_s)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._conns_lock:
            if conn in self._conns:
                self._conns.remove(conn)
        try:
            conn.close()
        except Exception:
            pass

    def close(self) -> None:
        """Close every pooled connection (all threads)."""
        with self._conns_lock:
            conns, self._conns = list(self._conns), []
        self._local.conn = None
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass

    def __enter__(self) -> "CompileClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, method: str, path: str, payload: object | None = None,
              ) -> tuple[int, bytes, dict[str, str]]:
        """One HTTP exchange; returns ``(status, body, headers)``.

        The thread's connection is reused across calls; a keep-alive
        socket the server has since closed (idle timeout, restart)
        surfaces as ``OSError``/``BadStatusLine`` -- retried exactly
        once on a fresh connection before the error propagates.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        fresh = getattr(self._local, "conn", None) is None
        for _ in range(2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                response_headers = {name.lower(): value
                                    for name, value in
                                    response.getheaders()}
                if response.will_close:
                    self._drop_connection()
                return response.status, data, response_headers
            except (OSError, http.client.HTTPException):
                self._drop_connection()
                if fresh:
                    raise       # a brand-new socket failing is real
                fresh = True    # reused socket went stale: one more try
        raise AssertionError("unreachable")

    @staticmethod
    def _retry_after(headers: dict[str, str]) -> float | None:
        """Parse a ``Retry-After`` delay in seconds, if usable."""
        value = headers.get("retry-after")
        if value is None:
            return None
        try:
            delay = float(value)
        except ValueError:
            return None       # HTTP-date form: fall back to backoff
        return delay if delay >= 0 else None

    def _call(self, method: str, path: str,
              payload: object | None = None, *,
              retry: bool = True) -> object:
        attempts = 1 + (self.retries if retry else 0)
        last_error: Exception | None = None
        retry_after: float | None = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                if retry_after is not None:
                    self._sleep(retry_after)
                else:
                    self._sleep(self.backoff_s * 2 ** (attempt - 2))
            retry_after = None
            try:
                status, body, headers = self._send(method, path, payload)
            except (OSError, http.client.HTTPException) as exc:
                # connection refused/reset/timeout, or a socket that died
                # mid-response (e.g. a crashing server)
                last_error = exc
                continue
            if status == 200:
                return json.loads(body)
            message = body.decode(errors="replace")
            try:
                decoded = json.loads(body)
                if isinstance(decoded, dict) and "error" in decoded:
                    message = str(decoded["error"])
            except ValueError:
                pass
            if status in RETRYABLE_STATUSES:
                last_error = ServiceError(status, message)
                retry_after = self._retry_after(headers)
                continue
            raise ServiceError(status, message)
        assert last_error is not None
        if isinstance(last_error, ServiceError):
            raise last_error
        raise ServiceError(0, f"cannot reach {self.host}:{self.port} "
                              f"after {attempts} attempts: {last_error}")

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    @staticmethod
    def _envelope(payload: dict, tenant: str | None, priority: int | None,
                  timeout_s: float | None) -> dict:
        if tenant is not None:
            payload["tenant"] = tenant
        if priority is not None:
            payload["priority"] = priority
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return payload

    def compile(self, request: CompileRequest | dict, *,
                tenant: str | None = None, priority: int | None = None,
                timeout_s: float | None = None) -> dict:
        """Compile one request; returns the ``CompileResponse`` dict."""
        payload = (request.to_dict() if isinstance(request, CompileRequest)
                   else dict(request))
        payload = self._envelope(payload, tenant, priority, timeout_s)
        return self._call("POST", "/compile", payload)

    def compile_batch(self, requests: Sequence[CompileRequest | dict], *,
                      tenant: str | None = None,
                      priority: int | None = None,
                      timeout_s: float | None = None,
                      chunk_size: int | None = None) -> list[dict]:
        """Compile many requests; returns response dicts in order.

        ``chunk_size`` splits a large batch into several ``/batch``
        calls so no single batch can occupy the whole server queue;
        responses are concatenated back into request order.
        """
        items = [r.to_dict() if isinstance(r, CompileRequest) else dict(r)
                 for r in requests]
        responses: list[dict] = []
        for chunk in _chunks(items, chunk_size):
            payload = self._envelope({"requests": chunk}, tenant, priority,
                                     timeout_s)
            result = self._call("POST", "/batch", payload)
            responses.extend(result)
        return responses

    def metrics(self) -> dict:
        """The server's ``/metrics`` snapshot."""
        return self._call("GET", "/metrics")

    def healthz(self) -> dict:
        return self._call("GET", "/healthz")

    def shutdown(self, drain: bool = True, *, retry: bool = False) -> dict:
        """Ask the server to exit (gracefully by default)."""
        return self._call("POST", "/shutdown", {"drain": drain},
                          retry=retry)


def _chunks(items: list, size: int | None) -> Iterable[list]:
    if size is None or size >= len(items):
        yield items
        return
    if size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield items[start:start + size]
