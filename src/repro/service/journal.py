"""Durable job journal: a write-ahead log for accepted compile jobs.

The serving guarantee this file backs: **an accepted job is never
silently lost**.  `CompileService` appends an ``accepted`` record the
moment a job is enqueued and a ``completed`` record the moment its
future resolves (success, typed error, or timeout -- anything that sent
the client a response).  On restart, ``accepted`` records with no
matching ``completed`` are replayed into the queue, so a crash between
acceptance and response costs a re-execution, not the job.

Format and crash discipline mirror :class:`repro.analysis.store
.ResultStore`: an append-only JSON-lines file where

* appends repair a torn tail first (a writer killed mid-record leaves a
  partial line; the next append inserts a newline so the two records
  never fuse),
* reads skip unparseable lines instead of failing,
* :meth:`compact` rewrites the file atomically (tmp + ``os.replace``),
  keeping only still-pending ``accepted`` records.

Pending-ness is *order-aware*: one key may legitimately cycle through
``accepted``/``completed`` several times in one file (a client
resubmitting yesterday's request), so replay state is the last
unmatched ``accepted`` per key, not a set difference.  Duplicate
``accepted`` records for one key (journal replayed twice, client
retried) collapse to a single pending entry, which is what makes
replay idempotent end to end: the replayed submit coalesces on the
same ``request_key`` the journal deduped on.

The journal lives at an explicit path (default: ``journal.jsonl`` at
the cache-dir root), deliberately *not* salted by the source digest the
per-tenant artifact caches use: accepted work must survive a code
deploy -- the replay recomputes results with the new code, which is the
point of replaying rather than restoring cached responses.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.service import faults


class JobJournal:
    """Append-only accepted/completed log with torn-tail tolerance.

    Thread-safe: the service appends from worker threads and the
    asyncio thread concurrently.  Append failures (disk full, injected)
    raise ``OSError`` to the caller -- the service degrades to serving
    without durability rather than refusing traffic.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------
    def record_accepted(self, key: str, request_payload: dict, *,
                        tenant: str = "", priority: int = 0,
                        timeout_s: float | None = None) -> None:
        """Journal a job the service has committed to answering."""
        self._append({
            "event": "accepted",
            "key": key,
            "tenant": tenant,
            "priority": priority,
            "timeout_s": timeout_s,
            "request": request_payload,
        })

    def record_completed(self, key: str, *, failed: bool = False) -> None:
        """Journal that ``key``'s waiters got a response (of any kind)."""
        self._append({"event": "completed", "key": key, "failed": failed})

    def _append(self, entry: dict) -> None:
        if faults.journal_should_fail():
            raise OSError("injected journal write failure")
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            needs_newline = False
            try:
                with self.path.open("rb") as handle:
                    handle.seek(-1, 2)
                    needs_newline = handle.read(1) != b"\n"
            except (OSError, ValueError):
                pass                     # missing or empty file
            with self.path.open("a") as handle:
                if needs_newline:
                    handle.write("\n")
                handle.write(line + "\n")
                handle.flush()

    # -- reading -------------------------------------------------------
    def load(self) -> list[dict]:
        """Every parseable record, in file order; torn lines skipped."""
        entries: list[dict] = []
        if not self.path.exists():
            return entries
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and "event" in entry and \
                        "key" in entry:
                    entries.append(entry)
        return entries

    def pending(self) -> list[dict]:
        """Accepted records not yet completed, one per key, file order.

        The replay set: walking the file, a ``completed`` record
        retires the key's open ``accepted``; a re-``accepted`` key
        replaces its earlier open record (last spelling wins).
        """
        return self._pending_of(self.load())

    # -- maintenance ---------------------------------------------------
    def compact(self) -> int:
        """Rewrite the file with only pending records; returns the
        number of records dropped.  Atomic: readers of the old path see
        either the full file or the compacted one, never a partial."""
        with self._lock:
            if not self.path.exists():
                return 0
            entries = self.load()
            keep = self._pending_of(entries)
            dropped = len(entries) - len(keep)
            if dropped <= 0:
                return 0
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("w") as handle:
                for entry in keep:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
            os.replace(tmp, self.path)
            return dropped

    @staticmethod
    def _pending_of(entries: list[dict]) -> list[dict]:
        open_by_key: dict[str, dict] = {}
        for entry in entries:
            key = entry["key"]
            if entry["event"] == "accepted" and "request" in entry:
                open_by_key.pop(key, None)
                open_by_key[key] = entry
            elif entry["event"] == "completed":
                open_by_key.pop(key, None)
        return list(open_by_key.values())
