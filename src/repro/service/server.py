"""Compilation-as-a-service: an asyncio HTTP front end over a job queue.

Two layers:

* :class:`CompileService` -- the protocol-free core: a bounded priority
  :class:`~repro.service.queue.JobQueue`, a pool of worker threads
  reusing the batch executor (:func:`repro.service.batch
  .execute_request`), in-flight *coalescing* (concurrent identical
  requests -- same ``CompileRequest.key()``, same tenant -- share one
  compilation), *structural coalescing* (parameterised requests that
  differ only in angle values share one structural compile and bind
  per-request), per-tenant salted artifact caches, and a
  :class:`~repro.service.metrics.ServiceMetrics` aggregate.

* :class:`CompileServer` -- a minimal HTTP/1.1 handler on
  ``asyncio.start_server`` (stdlib only) routing::

      POST /compile   one CompileRequest JSON -> CompileResponse JSON
      POST /batch     a request list -> response list, byte-identical
                      to ``python -m repro batch --json``
      GET  /metrics   cache hit/miss, per-pass timings, queue depth,
                      latency histograms (``?format=prometheus`` for
                      text exposition)
      GET  /healthz   liveness + drain state
      POST /shutdown  graceful drain-and-exit

Backpressure: a full queue answers 429, a draining server 503, both
with a ``Retry-After`` estimated from queue depth -- the client SDK
(:mod:`repro.service.client`) honours it (falling back to exponential
backoff).  Connections are keep-alive by default (HTTP/1.1 semantics,
with an idle timeout); while a compile is in flight the handler watches
the socket, so a client that disconnects releases its job -- the last
waiter's departure cancels the running compile at its next pass
boundary.

Fault tolerance (see ``docs/architecture.md``, "Failure modes &
recovery"): ``worker_mode="process"`` executes compiles in a supervised
``ProcessPoolExecutor`` -- a dying child restarts the pool and requeues
the job up to ``max_retries`` before quarantining it as a poison job --
and ``journal_path`` arms a write-ahead log replayed on startup, so a
server crash never silently drops an accepted job.

Request JSON carries the :class:`CompileRequest` fields plus an optional
*envelope*: ``tenant`` (isolates the artifact cache under
``cache_dir/<tenant>`` composed through ``salted_directory``),
``priority`` (higher pops first) and ``timeout_s`` (the job is cancelled
with an error response if it cannot start in time).
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.cache.store import (
    ArtifactCache,
    LockingArtifactCache,
    salted_directory,
)
from repro.core.cancel import CompilationCancelled
from repro.service.batch import (
    CompileRequest,
    CompileResponse,
    _execute_in_worker,
    assemble_responses,
    compute_request_keys,
    error_response,
    execute_request,
    request_from_dict,
)
from repro.service.journal import JobJournal
from repro.service.metrics import ServiceMetrics, prometheus_text
from repro.service.queue import (
    Job,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{0,64}$")
_MAX_BODY_BYTES = 16 * 1024 * 1024
_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}
#: Envelope fields the service consumes before request parsing.
ENVELOPE_FIELDS = ("tenant", "priority", "timeout_s")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one compile service instance.

    ``worker_mode`` selects where compiles execute: ``"thread"`` (the
    default; cheap, shares the GIL) or ``"process"`` (a supervised
    ``ProcessPoolExecutor``: crash isolation plus real parallelism for
    concurrent cold compiles).  ``max_retries`` bounds how many times a
    crashed job is re-run before it is quarantined as a poison job.
    ``journal_path`` arms the accepted-job write-ahead log (replayed by
    :meth:`CompileService.recover` on startup).  ``idle_timeout_s`` is
    how long the HTTP front end keeps an idle keep-alive connection.
    """

    jobs: int = 2
    queue_depth: int = 64
    cache_dir: str | Path | None = None
    memory_limit: int = 1024
    default_timeout_s: float | None = None
    max_structurals: int = 128
    worker_mode: str = "thread"
    max_retries: int = 2
    journal_path: str | Path | None = None
    idle_timeout_s: float = 60.0


class PoisonJobError(RuntimeError):
    """A job that crashed its worker on every allowed attempt."""


@dataclass(frozen=True)
class Envelope:
    """Service-level request fields, split off before request parsing."""

    tenant: str = ""
    priority: int = 0
    timeout_s: float | None = None


def split_envelope(payload: dict, defaults: Envelope | None = None,
                   ) -> tuple[dict, Envelope]:
    """Separate envelope fields from the request payload, validating.

    Returns the remaining request fields (for ``request_from_dict``) and
    the envelope; unset fields inherit ``defaults`` (the batch-level
    envelope, or the server defaults).
    """
    if defaults is None:
        defaults = Envelope()
    payload = dict(payload)
    tenant = payload.pop("tenant", defaults.tenant)
    priority = payload.pop("priority", defaults.priority)
    timeout_s = payload.pop("timeout_s", defaults.timeout_s)
    if not isinstance(tenant, str) or not _TENANT_RE.fullmatch(tenant) \
            or ".." in tenant:
        raise ValueError(
            f"field 'tenant' must be a short name of letters, digits, "
            f"'.', '_' or '-', got {tenant!r}")
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ValueError(f"field 'priority' must be an integer, "
                         f"got {priority!r}")
    if timeout_s is not None and (
            isinstance(timeout_s, bool)
            or not isinstance(timeout_s, (int, float))
            or timeout_s <= 0):
        raise ValueError(f"field 'timeout_s' must be a positive number, "
                         f"got {timeout_s!r}")
    envelope = Envelope(tenant=tenant, priority=priority,
                        timeout_s=None if timeout_s is None
                        else float(timeout_s))
    return payload, envelope


class CompileService:
    """Queue + worker pool + coalescing + tenant caches (no HTTP)."""

    #: How many quarantined keys the poison set remembers.
    MAX_POISONED = 256

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', "
                f"got {self.config.worker_mode!r}")
        self.queue = JobQueue(self.config.queue_depth)
        self.metrics = ServiceMetrics()
        self.journal = (JobJournal(self.config.journal_path)
                        if self.config.journal_path is not None else None)
        self._lock = threading.Lock()
        self._caches: dict[str, ArtifactCache] = {}
        self._structurals: dict[str, dict] = {}
        self._structural_locks: dict[tuple[str, str], threading.Lock] = {}
        self._inflight: dict[tuple[str, str], Job] = {}
        self._workers: list[threading.Thread] = []
        self._running = 0
        self._draining = False
        self._poisoned: OrderedDict[str, str] = OrderedDict()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._workers:
            raise RuntimeError("service already started")
        for index in range(self.config.jobs):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"compile-worker-{index}",
                                      daemon=True)
            worker.start()
            self._workers.append(worker)
        if self.journal is not None:
            self.recover()

    @property
    def draining(self) -> bool:
        return self._draining

    def shutdown(self, drain: bool = True) -> int:
        """Stop accepting work; returns the number of pending jobs.

        ``drain=True`` (graceful) leaves queued jobs for the workers to
        finish; ``drain=False`` resolves them immediately with error
        responses.  Idempotent.
        """
        with self._lock:
            self._draining = True
        if not drain:
            for job in self.queue.drain():
                self.metrics.increment("cancelled")
                job.resolve(error_response(
                    job.request,
                    QueueClosedError("server stopped before the job ran"),
                    request_key=job.key))
        return len(self.queue.close())

    def join(self, timeout: float | None = None) -> None:
        """Wait for the workers to drain the queue and exit."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for worker in self._workers:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            worker.join(remaining)
        if all(not worker.is_alive() for worker in self._workers):
            with self._pool_lock:
                pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------
    def cache_for(self, tenant: str = "") -> ArtifactCache:
        """The tenant's shared (thread-safe) artifact cache.

        With a ``cache_dir``, each tenant's artifacts live under
        ``cache_dir/<tenant>`` composed through ``salted_directory`` --
        so tenants never read each other's artifacts and a source change
        starts every tenant on a fresh cache.  Without one, each tenant
        keeps a private in-memory cache.
        """
        with self._lock:
            cache = self._caches.get(tenant)
            if cache is None:
                directory = None
                if self.config.cache_dir is not None:
                    root = Path(self.config.cache_dir)
                    directory = salted_directory(root / tenant if tenant
                                                 else root)
                cache = LockingArtifactCache(
                    directory, memory_limit=self.config.memory_limit)
                self._caches[tenant] = cache
            return cache

    def _structurals_for(self, tenant: str) -> dict:
        with self._lock:
            return self._structurals.setdefault(tenant, {})

    def _structural_lock(self, tenant: str, skey: str) -> threading.Lock:
        with self._lock:
            return self._structural_locks.setdefault(
                (tenant, skey), threading.Lock())

    # ------------------------------------------------------------------
    # submission & coalescing
    # ------------------------------------------------------------------
    def submit(self, request: CompileRequest, key: str, *,
               tenant: str = "", priority: int = 0,
               timeout_s: float | None = None,
               record: bool = True) -> tuple[Job, bool]:
        """Enqueue a request, coalescing onto an in-flight twin.

        Returns ``(job, coalesced)``: when an identical request (same
        key, same tenant) is already queued or running, the caller
        attaches to its job -- one compilation serves every waiter.
        Raises :class:`QueueFullError` (backpressure) or
        :class:`QueueClosedError` (draining).

        Every call adds one waiter to the job; callers that stop
        listening early (timeout, disconnect) must balance it with
        :meth:`Job.release_waiter`.  ``record=False`` skips the journal
        ``accepted`` entry (the replay path: the record already exists).
        """
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        slot = (tenant, key)
        with self._lock:
            if self._draining:
                raise QueueClosedError("server is draining")
            poisoned = self._poisoned.get(key)
            if poisoned is not None:
                self.metrics.increment("poison_rejected")
                job = Job(request=request, key=key, tenant=tenant,
                          priority=priority, timeout_s=timeout_s)
                job.add_waiter()
                job.resolve(error_response(
                    request, PoisonJobError(poisoned), request_key=key))
                return job, False
            job = self._inflight.get(slot)
            if job is not None and not job.future.done():
                self.metrics.increment("coalesced")
                job.add_waiter()
                return job, True
            job = Job(request=request, key=key, tenant=tenant,
                      priority=priority, timeout_s=timeout_s)
            job.add_waiter()
            self._inflight[slot] = job
            job.future.add_done_callback(
                lambda _future, slot=slot, job=job: self._forget(slot, job))
            try:
                self.queue.put(job)
            except Exception:
                self._inflight.pop(slot, None)
                raise
            self.metrics.increment("submitted")
        if record:
            self._journal_accepted(job)
        return job, False

    def _forget(self, slot: tuple[str, str], job: Job) -> None:
        with self._lock:
            if self._inflight.get(slot) is job:
                del self._inflight[slot]
        self._journal_completed(job)

    # ------------------------------------------------------------------
    # durability (the accepted-job write-ahead log)
    # ------------------------------------------------------------------
    def _journal_accepted(self, job: Job) -> None:
        if self.journal is None:
            return
        try:
            self.journal.record_accepted(
                job.key, job.request.to_dict(), tenant=job.tenant,
                priority=job.priority, timeout_s=job.timeout_s)
        except OSError:
            # durability degrades, serving does not
            self.metrics.increment("journal_write_errors")

    def _journal_completed(self, job: Job) -> None:
        if self.journal is None:
            return
        response = job.future.result() if job.future.done() else None
        failed = bool(getattr(response, "failed", False))
        try:
            self.journal.record_completed(job.key, failed=failed)
        except OSError:
            self.metrics.increment("journal_write_errors")

    def recover(self) -> int:
        """Replay journal records accepted but never answered.

        Called by :meth:`start` when a journal is armed: compacts the
        file (dropping answered pairs), then resubmits every still-open
        ``accepted`` record.  Replayed jobs re-execute with the current
        code -- the artifact cache absorbs whatever is still valid.
        Returns the number of jobs resubmitted.
        """
        if self.journal is None:
            return 0
        try:
            self.journal.compact()
            pending = self.journal.pending()
        except OSError:
            self.metrics.increment("journal_write_errors")
            return 0
        replayed = 0
        for entry in pending:
            try:
                request = request_from_dict(entry["request"])
                key = request.key()
                if key != entry["key"]:
                    # the key algorithm changed underneath the record:
                    # retire the stale spelling so it never re-replays,
                    # and journal the job afresh under its current key
                    self.journal.record_completed(entry["key"])
                record = key != entry["key"]
                _job, coalesced = self.submit(
                    request, key,
                    tenant=entry.get("tenant", "") or "",
                    priority=int(entry.get("priority", 0) or 0),
                    timeout_s=entry.get("timeout_s"),
                    record=record)
            except (QueueFullError, QueueClosedError):
                # still journalled as accepted; the next restart retries
                self.metrics.increment("journal_replay_skipped")
                continue
            except Exception:
                # unreadable record (old schema, corrupt values): count
                # it, retire it, keep replaying the rest
                self.metrics.increment("journal_replay_skipped")
                try:
                    self.journal.record_completed(entry["key"], failed=True)
                except OSError:
                    self.metrics.increment("journal_write_errors")
                continue
            if not coalesced:
                replayed += 1
        if replayed:
            self.metrics.increment("journal_replayed", replayed)
        return replayed

    def timeout_response(self, job: Job) -> CompileResponse:
        limit = job.timeout_s
        message = ("cancelled before the job could run" if limit is None
                   else f"request timed out after {limit:g}s in the queue")
        return error_response(job.request, TimeoutError(message),
                              request_key=job.key)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                return
            with self._lock:
                self._running += 1
            try:
                self._serve_job(job)
            finally:
                with self._lock:
                    self._running -= 1

    def _serve_job(self, job: Job) -> None:
        if job.cancelled:
            # whoever cancelled already counted the timeout/disconnect
            job.resolve(self.timeout_response(job))
            return
        if job.expired:
            self.metrics.increment("timed_out")
            job.resolve(self.timeout_response(job))
            return
        job.started = True
        job.attempts += 1
        queue_wait = time.monotonic() - job.enqueued_at
        start = time.perf_counter()
        try:
            response = self._execute(job)
        except CompilationCancelled as exc:
            # the compile stopped at a pass boundary (cancel/deadline);
            # the worker is free well before pipeline completion
            self.metrics.increment("cancelled_running")
            response = error_response(job.request, exc, request_key=job.key)
        except Exception as exc:
            response = error_response(job.request, exc, request_key=job.key)
        if response is None:
            return      # the supervisor requeued the job; not done yet
        # record before resolving: a waiter that reads /metrics right
        # after its response must already see this job counted
        self.metrics.observe_response(response, queue_wait,
                                      time.perf_counter() - start)
        job.resolve(response)

    def _execute(self, job: Job) -> CompileResponse | None:
        if self.config.worker_mode == "process":
            return self._execute_in_pool(job)
        from repro.service import faults

        faults.maybe_crash(hard=False)
        cache = self.cache_for(job.tenant)
        if not job.request.parameters:
            return execute_request(job.request, cache, request_key=job.key,
                                   cancel=job.cancel_token)
        # structural coalescing: requests differing only in angle values
        # share one structural compile; the per-structure lock makes
        # concurrent first arrivals compile it exactly once
        skey = job.request.structural_key()
        structurals = self._structurals_for(job.tenant)
        with self._structural_lock(job.tenant, skey):
            known = skey in structurals
            response = execute_request(job.request, cache, structurals,
                                       request_key=job.key,
                                       cancel=job.cancel_token)
            if not known and skey in structurals:
                self.metrics.increment("structural_compiles")
            while len(structurals) > self.config.max_structurals:
                structurals.pop(next(iter(structurals)), None)
        self.metrics.increment("structural_binds")
        return response

    # ------------------------------------------------------------------
    # process-isolated execution (the supervisor)
    # ------------------------------------------------------------------
    def _current_pool(self) -> tuple[ProcessPoolExecutor, int]:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.jobs)
            return self._pool, self._pool_generation

    def _restart_pool(self, generation: int) -> None:
        """Replace a broken pool; generation-guarded so concurrent
        workers observing the same crash restart it exactly once."""
        stale = None
        with self._pool_lock:
            if generation == self._pool_generation:
                stale, self._pool = self._pool, None
                self._pool_generation += 1
                self.metrics.increment("pool_restarts")
        if stale is not None:
            stale.shutdown(wait=False)

    def _execute_in_pool(self, job: Job) -> CompileResponse | None:
        """Run one job in the supervised process pool.

        A child dying mid-compile surfaces as ``BrokenProcessPool``:
        the supervisor restarts the pool and requeues the job until its
        ``attempts`` exhaust ``max_retries``, then quarantines the key
        (poison job) and answers with a typed error.  Returns ``None``
        when the job went back to the queue (no response yet).

        Only the *deadline* crosses the process boundary (as a relative
        budget); a disconnect-driven cancel cannot reach a busy child,
        so thread mode is where mid-compile disconnect cancellation is
        exact.
        """
        cache = self.cache_for(job.tenant)
        cache_dir = (str(cache.directory)
                     if getattr(cache, "directory", None) is not None
                     else None)
        deadline = job.deadline
        remaining = (None if deadline is None
                     else max(0.01, deadline - time.monotonic()))
        payload = (job.request, job.key, cache_dir,
                   self.config.memory_limit, remaining)
        while True:
            pool, generation = self._current_pool()
            try:
                future = pool.submit(_execute_in_worker, payload)
            except RuntimeError:
                # a sibling worker replaced the pool under us; not a
                # crash of *this* job -- grab the fresh pool and resubmit
                continue
            try:
                return future.result()
            except BrokenProcessPool:
                self.metrics.increment("worker_crashes")
                self._restart_pool(generation)
                if job.cancelled or job.expired:
                    return self.timeout_response(job)
                if job.attempts > self.config.max_retries:
                    message = (f"job crashed its worker "
                               f"{job.attempts} time(s); quarantined")
                    self._quarantine(job.key, message)
                    self.metrics.increment("poisoned")
                    return error_response(job.request,
                                          PoisonJobError(message),
                                          request_key=job.key)
                try:
                    self.queue.put(job)
                except (QueueFullError, QueueClosedError):
                    # no room to requeue: retry inline instead; this is
                    # a fresh attempt, so count it like a re-pop would
                    job.attempts += 1
                    continue
                self.metrics.increment("requeued")
                return None

    def _quarantine(self, key: str, message: str) -> None:
        with self._lock:
            self._poisoned[key] = message
            while len(self._poisoned) > self.MAX_POISONED:
                self._poisoned.popitem(last=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "queue_depth": len(self.queue),
            "workers": len(self._workers),
            "worker_mode": self.config.worker_mode,
            "journal": self.journal is not None,
        }

    def metrics_payload(self) -> dict:
        payload = self.metrics.snapshot()
        with self._lock:
            caches = dict(self._caches)
            running = self._running
        payload["queue"] = {
            "depth": len(self.queue),
            "capacity": self.queue.maxsize,
            "workers": len(self._workers),
            "worker_mode": self.config.worker_mode,
            "running": running,
            "draining": self._draining,
        }
        payload["cache"] = {tenant or "default": cache.stats()
                            for tenant, cache in sorted(caches.items())}
        return payload

    def retry_after_s(self) -> float:
        """How long a backpressured client should wait before retrying.

        Queue depth times the observed mean request latency, spread
        over the workers; clamped to [0.1s, 30s].  Before any request
        has completed the estimate falls back to one second.
        """
        mean = self.metrics.mean_request_s()
        if mean is None:
            return 1.0
        depth = max(1, len(self.queue))
        workers = max(1, len(self._workers) or self.config.jobs)
        return min(30.0, max(0.1, depth * mean / workers))


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _BadRequest(ValueError):
    pass


class _ConnectionReader:
    """A buffered reader that can *watch* the socket between requests.

    Disconnect detection needs someone reading the socket while a
    compile runs; a plain ``StreamReader`` cannot serve both that
    monitor and the next pipelined request without the two corrupting
    each other's view of the stream.  This wrapper owns a single buffer:
    :meth:`wait_disconnect` pulls bytes into it until EOF (anything a
    pipelining client sent early is kept, in order, for the next
    :meth:`readline`), and the parsing methods consume from the buffer
    first.  The monitor and the parser never run concurrently -- the
    handler reads requests between dispatches and watches only during
    them.
    """

    #: Stop buffering a misbehaving client beyond one max-size request.
    MAX_BUFFER = _MAX_BODY_BYTES + 65536

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buffer = b""
        self._eof = False

    async def _fill(self) -> None:
        chunk = await self._reader.read(65536)
        if not chunk:
            self._eof = True
        else:
            self._buffer += chunk

    async def readline(self) -> bytes:
        while b"\n" not in self._buffer and not self._eof:
            await self._fill()
        index = self._buffer.find(b"\n")
        if index < 0:
            line, self._buffer = self._buffer, b""
            return line
        line = self._buffer[:index + 1]
        self._buffer = self._buffer[index + 1:]
        return line

    async def readexactly(self, n: int) -> bytes:
        while len(self._buffer) < n and not self._eof:
            await self._fill()
        if len(self._buffer) < n:
            raise asyncio.IncompleteReadError(self._buffer, n)
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    async def wait_disconnect(self) -> None:
        """Return when the peer closes (or floods) the connection."""
        while not self._eof and len(self._buffer) < self.MAX_BUFFER:
            await self._fill()


async def _read_request(conn: _ConnectionReader,
                        ) -> tuple[str, str, str, dict, bytes]:
    line = await conn.readline()
    if not line:
        raise ConnectionResetError("client closed the connection")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line {line!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    while True:
        line = await conn.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length header") from None
    if length > _MAX_BODY_BYTES:
        raise _BadRequest(f"body exceeds {_MAX_BODY_BYTES} bytes")
    body = await conn.readexactly(length) if length else b""
    return method, target, version, headers, body


def _wants_keep_alive(version: str, headers: dict[str, str]) -> bool:
    """HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close."""
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload: object, *, keep_alive: bool = False,
                          extra_headers: dict[str, str] | None = None,
                          ) -> None:
    if isinstance(payload, str):          # pre-rendered (e.g. prometheus)
        body = payload.encode()
        content_type = "text/plain; charset=utf-8"
    else:
        # indent=2 keeps /batch output byte-identical to the CLI's stdout
        body = json.dumps(payload, indent=2).encode()
        content_type = "application/json"
    headers = {"Content-Type": content_type, **(extra_headers or {})}
    reason = _STATUS_REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    head.append(f"Content-Length: {len(body)}")
    head.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


class CompileServer:
    """Asyncio HTTP/1.1 front end around a :class:`CompileService`."""

    def __init__(self, service: CompileService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self._shutdown_started = False

    async def start(self) -> None:
        """Bind the listener (port 0 picks an ephemeral port) and start
        the service workers."""
        self._loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        if not self.service._workers:
            self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown (signal or ``POST /shutdown``) drains."""
        await self._closed.wait()

    def begin_shutdown(self, drain: bool = True) -> None:
        """Start the graceful exit; safe to call from the loop thread
        (signal handlers, the /shutdown route).  Idempotent."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._loop.create_task(self._shutdown_task(drain))

    def begin_shutdown_threadsafe(self, drain: bool = True) -> None:
        """Like :meth:`begin_shutdown`, callable from any thread."""
        try:
            self._loop.call_soon_threadsafe(self.begin_shutdown, drain)
        except RuntimeError:
            pass    # loop already closed: shutdown has happened

    async def _shutdown_task(self, drain: bool) -> None:
        loop = asyncio.get_running_loop()
        self.service.shutdown(drain=drain)
        # the queue drains on worker threads; don't block the loop --
        # in-flight handlers still need it to deliver their responses
        await loop.run_in_executor(None, self.service.join)
        current = asyncio.current_task()
        # keep-alive connections waiting for their *next* request would
        # stall the drain; only handlers mid-request deserve the grace
        for task in list(self._conn_tasks):
            if task is not current and not task.done() \
                    and task not in self._busy:
                task.cancel()
        pending = [task for task in self._conn_tasks
                   if task is not current and not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        self._server.close()
        await self._server.wait_closed()
        self._closed.set()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn = _ConnectionReader(reader)
        try:
            while True:     # one iteration per request on the connection
                try:
                    method, target, version, headers, body = \
                        await asyncio.wait_for(
                            _read_request(conn),
                            self.service.config.idle_timeout_s)
                except asyncio.TimeoutError:
                    return                 # idle keep-alive connection
                except _BadRequest as exc:
                    await _write_response(writer, 400, {"error": str(exc)})
                    return
                except (ConnectionError, asyncio.IncompleteReadError):
                    return
                keep_alive = _wants_keep_alive(version, headers)
                self._busy.add(task)
                path = target.split("?", 1)[0]
                # watch the socket while a compile is in flight: a
                # vanishing client should free its worker, not burn it
                monitor = (asyncio.ensure_future(conn.wait_disconnect())
                           if path in ("/compile", "/batch") else None)
                try:
                    try:
                        status, payload, extra = await self._dispatch(
                            method, target, body, monitor)
                    except Exception as exc:  # one broken handler must
                        status = 500          # not take the server down
                        payload = {"error": f"{type(exc).__name__}: {exc}"}
                        extra = {}
                    if monitor is not None and not monitor.done():
                        monitor.cancel()
                        try:
                            await monitor
                        except asyncio.CancelledError:
                            pass
                    elif monitor is not None:
                        return  # client gone; nothing to answer to
                    if status is None:
                        return  # route observed the disconnect itself
                    await _write_response(writer, status, payload,
                                          keep_alive=keep_alive,
                                          extra_headers=extra)
                finally:
                    self._busy.discard(task)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._busy.discard(task)
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, method: str, target: str, body: bytes,
                        monitor: "asyncio.Future | None" = None,
                        ) -> tuple[int | None, object, dict[str, str]]:
        """Route one request; ``(None, ...)`` means "client gone, write
        nothing".  The third element is extra response headers."""
        path, _, query = target.partition("?")
        routes = {"/healthz": "GET", "/metrics": "GET", "/compile": "POST",
                  "/batch": "POST", "/shutdown": "POST"}
        expected = routes.get(path)
        if expected is None:
            return 404, {"error": f"no route {path}"}, {}
        if method != expected:
            return 405, {"error": f"{path} expects {expected}"}, {}
        if path == "/healthz":
            return 200, self.service.health_payload(), {}
        if path == "/metrics":
            return self._metrics_route(query)
        if path == "/shutdown":
            status, payload = self._shutdown_route(body)
            return status, payload, {}
        if path == "/compile":
            return await self._compile_route(body, monitor)
        return await self._batch_route(body, monitor)

    def _metrics_route(self, query: str,
                       ) -> tuple[int, object, dict[str, str]]:
        payload = self.service.metrics_payload()
        params = dict(
            pair.partition("=")[::2] for pair in query.split("&") if pair)
        if params.get("format") == "prometheus":
            return 200, prometheus_text(payload), {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"}
        if "format" in params and params["format"] != "json":
            return 400, {"error": f"unknown metrics format "
                                  f"{params['format']!r}"}, {}
        return 200, payload, {}

    def _backpressure_headers(self) -> dict[str, str]:
        return {"Retry-After": f"{self.service.retry_after_s():.2f}"}

    def _shutdown_route(self, body: bytes) -> tuple[int, object]:
        drain = True
        if body:
            try:
                payload = json.loads(body)
            except ValueError:
                return 400, {"error": "shutdown body must be JSON"}
            if not isinstance(payload, dict) \
                    or not isinstance(payload.get("drain", True), bool):
                return 400, {"error": "shutdown body must be an object "
                                      "with an optional boolean 'drain'"}
            drain = payload.get("drain", True)
        pending = len(self.service.queue)
        self.begin_shutdown(drain=drain)
        return 200, {"status": "draining" if drain else "stopping",
                     "pending": pending}

    # ------------------------------------------------------------------
    def _default_envelope(self) -> Envelope:
        return Envelope(timeout_s=self.service.config.default_timeout_s)

    def _release(self, job: Job) -> None:
        """One waiter stopped listening; the last one out cancels the
        job (dead-on-arrival if queued, pass-boundary stop if running)."""
        if job.release_waiter():
            job.cancel()

    async def _await_job(self, job: Job, timeout_s: float | None,
                         monitor: "asyncio.Future | None" = None,
                         ) -> CompileResponse | None:
        """Wait on the job's shared future; ``None`` = client vanished.

        The future is shielded -- a waiter timing out or disconnecting
        must not cancel the result other coalesced waiters (and the
        cache) still want; it *releases its waiter slot* instead, and
        only the last departure cancels the compile itself.
        """
        future = asyncio.wrap_future(job.future)
        shielded = asyncio.ensure_future(asyncio.shield(future))
        waiting = {shielded} if monitor is None else {shielded, monitor}
        try:
            done, _ = await asyncio.wait(waiting, timeout=timeout_s,
                                         return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            shielded.cancel()
            self._release(job)
            raise
        if shielded in done:
            return shielded.result()
        shielded.cancel()
        if monitor is not None and monitor in done:
            self.service.metrics.increment("disconnected")
            self._release(job)
            return None
        self.service.metrics.increment("timed_out")
        self._release(job)
        return self.service.timeout_response(job)

    async def _compile_route(self, body: bytes,
                             monitor: "asyncio.Future | None" = None,
                             ) -> tuple[int | None, object, dict[str, str]]:
        try:
            payload = json.loads(body)
        except ValueError:
            return 400, {"error": "request body must be JSON"}, {}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}, {}
        try:
            request_payload, envelope = split_envelope(
                payload, self._default_envelope())
            request = request_from_dict(request_payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}, {}
        self.service.metrics.increment("received")
        try:
            key = request.key()
        except Exception as exc:
            self.service.metrics.increment("failed")
            return 200, error_response(request, exc).to_dict(), {}
        try:
            job, _coalesced = self.service.submit(
                request, key, tenant=envelope.tenant,
                priority=envelope.priority, timeout_s=envelope.timeout_s)
        except QueueFullError as exc:
            self.service.metrics.increment("rejected_queue_full")
            return 429, {"error": str(exc),
                         "queue_depth": len(self.service.queue)}, \
                self._backpressure_headers()
        except QueueClosedError as exc:
            return 503, {"error": str(exc)}, self._backpressure_headers()
        response = await self._await_job(job, envelope.timeout_s, monitor)
        if response is None:
            return None, None, {}
        return 200, response.to_dict(), {}

    async def _batch_route(self, body: bytes,
                           monitor: "asyncio.Future | None" = None,
                           ) -> tuple[int | None, object, dict[str, str]]:
        try:
            payload = json.loads(body)
        except ValueError:
            return 400, {"error": "request body must be JSON"}, {}
        defaults = self._default_envelope()
        if isinstance(payload, dict):
            items = payload.get("requests")
            extra = set(payload) - {"requests", *ENVELOPE_FIELDS}
            if not isinstance(items, list) or extra:
                return 400, {"error": "batch object must hold 'requests' "
                                      "(a list) plus optional "
                                      f"{sorted(ENVELOPE_FIELDS)}"}, {}
            try:
                _, defaults = split_envelope(
                    {k: v for k, v in payload.items() if k != "requests"},
                    defaults)
            except ValueError as exc:
                return 400, {"error": str(exc)}, {}
        elif isinstance(payload, list):
            items = payload
        else:
            return 400, {"error": "batch body must be a JSON list or an "
                                  "object with a 'requests' list"}, {}
        requests: list[CompileRequest] = []
        envelopes: list[Envelope] = []
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                return 400, {"error": f"request #{index} must be a JSON "
                                      f"object"}, {}
            try:
                request_payload, envelope = split_envelope(item, defaults)
                requests.append(request_from_dict(request_payload))
            except ValueError as exc:
                return 400, {"error": f"request #{index}: {exc}"}, {}
            envelopes.append(envelope)
        self.service.metrics.increment("received", len(requests))
        keys, pre_failed = compute_request_keys(requests)
        if pre_failed:
            self.service.metrics.increment("failed", len(pre_failed))
        jobs: dict[str, tuple[Job, Envelope]] = {}
        duplicates = 0
        for request, key, envelope in zip(requests, keys, envelopes):
            if key is None:
                continue
            if key in jobs:
                duplicates += 1
                continue
            try:
                job, _coalesced = self.service.submit(
                    request, key, tenant=envelope.tenant,
                    priority=envelope.priority,
                    timeout_s=envelope.timeout_s)
            except QueueFullError as exc:
                # all-or-nothing: the client retries the whole batch;
                # jobs already submitted keep running and warm the cache
                self.service.metrics.increment("rejected_queue_full")
                for pending_job, _envelope in jobs.values():
                    self._release(pending_job)
                return 429, {"error": str(exc),
                             "queue_depth": len(self.service.queue)}, \
                    self._backpressure_headers()
            except QueueClosedError as exc:
                for pending_job, _envelope in jobs.values():
                    self._release(pending_job)
                return 503, {"error": str(exc)}, \
                    self._backpressure_headers()
            jobs[key] = (job, envelope)
        if duplicates:
            self.service.metrics.increment("deduplicated", duplicates)
        results = await asyncio.gather(*(
            self._await_job(job, envelope.timeout_s, monitor)
            for job, envelope in jobs.values()))
        if any(result is None for result in results):
            return None, None, {}  # the client disconnected mid-batch
        computed = dict(zip(jobs.keys(), results))
        responses = assemble_responses(requests, keys, computed, pre_failed)
        return 200, [response.to_dict() for response in responses], {}


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def serve(config: ServiceConfig | None = None, host: str = "127.0.0.1",
          port: int = 8000, *, install_signals: bool = True) -> int:
    """Run a compile server in the foreground (the CLI entry point).

    Prints ``serving on HOST:PORT`` to stderr once the listener is bound
    (with ``--port 0`` this is how callers learn the ephemeral port) and
    blocks until SIGINT/SIGTERM or ``POST /shutdown`` drains the queue.
    """
    service = CompileService(config)
    server = CompileServer(service, host, port)

    async def _main() -> None:
        await server.start()
        print(f"serving on {server.host}:{server.port}", file=sys.stderr,
              flush=True)
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, server.begin_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass   # non-main thread or unsupported platform
        await server.serve_until_shutdown()

    asyncio.run(_main())
    return 0


class ServerThread:
    """A compile server on a background thread (tests and examples).

    Usage::

        with ServerThread(CompileService(config)) as handle:
            client = CompileClient(port=handle.port)
            ...

    The context exit performs a graceful drain.
    """

    def __init__(self, service: CompileService | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service or CompileService()
        self.server = CompileServer(self.service, host, port)
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="compile-server", daemon=True)

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        async def _main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(_main())
        except BaseException as exc:
            self._error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(10.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain; idempotent (a /shutdown-stopped server is
        already gone)."""
        if self._thread.is_alive():
            self.server.begin_shutdown_threadsafe()
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
